"""OpenMP data-race detector (rules OMP001-OMP004).

Interprets the shared-variable classification of
:mod:`repro.cir.dataflow` for every ``#pragma omp parallel for``
region: shared scalars written by the loop body are races (OMP001),
shared arrays written without an induction-indexed subscript are
flagged (OMP002), and pragmas that control nothing analyzable are
surfaced so the silence is not mistaken for a clean bill (OMP003/4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES
from repro.cir import ast
from repro.cir.dataflow import (
    Access,
    SharingReport,
    classify_sharing,
    parallel_regions,
    references_variable,
)
from repro.cir.printer import SourceMap

_REDUCTION_OPS = {"+=": "+", "-=": "-", "*=": "*", "++": "+", "--": "-"}


def _line(lines: Optional[SourceMap], node: ast.Node) -> Optional[int]:
    return lines.line_of(node) if lines is not None else None


def _diagnose(
    rule: str,
    message: str,
    *,
    filename: str,
    function: Optional[str],
    node: ast.Node,
    lines: Optional[SourceMap],
    phase: str,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=RULES[rule].severity,
        message=message,
        file=filename,
        function=function,
        line=_line(lines, node),
        hint=hint,
        phase=phase,
        anchor_id=id(node),
    )


def _scalar_hint(access: Access) -> str:
    """Suggest a fix for a shared-scalar write."""
    name = access.name
    reduction_op = _REDUCTION_OPS.get(access.op)
    if reduction_op is None and access.op == "=" and isinstance(access.node, ast.Assign):
        # `x = x + ...` accumulation written without a compound operator
        if references_variable(access.node.rhs, name):
            reduction_op = "+"
    if reduction_op is not None:
        return (
            f"add reduction({reduction_op}:{name}) to the pragma if the "
            f"writes accumulate, or private({name}) if the value is "
            f"per-iteration scratch"
        )
    return f"add private({name}) to the pragma (or declare it inside the loop body)"


def check_region_races(
    report: SharingReport,
    filename: str,
    lines: Optional[SourceMap] = None,
    phase: str = "pristine",
) -> List[Diagnostic]:
    """Race rules for one classified parallel region."""
    diagnostics: List[Diagnostic] = []
    function = report.region.function.name
    induction = report.induction
    seen_scalars = set()
    seen_arrays = set()
    for access in report.shared_writes:
        if not access.is_array:
            if access.name in seen_scalars:
                continue
            seen_scalars.add(access.name)
            diagnostics.append(
                _diagnose(
                    "OMP001",
                    f"shared scalar {access.name!r} is written inside the "
                    f"parallel loop without a private/reduction clause",
                    filename=filename,
                    function=function,
                    node=access.node,
                    lines=lines,
                    phase=phase,
                    hint=_scalar_hint(access),
                )
            )
            continue
        if induction is not None and any(
            references_variable(index, induction) for index in access.indices
        ):
            continue  # distinct iterations write distinct elements
        if access.name in seen_arrays:
            continue
        seen_arrays.add(access.name)
        diagnostics.append(
            _diagnose(
                "OMP002",
                f"shared array {access.name!r} is written through subscripts "
                f"that never use the parallel induction variable"
                + (f" {induction!r}" if induction else ""),
                filename=filename,
                function=function,
                node=access.node,
                lines=lines,
                phase=phase,
                hint=(
                    f"index the write by the parallel loop variable or "
                    f"privatize {access.name!r}"
                ),
            )
        )
    return diagnostics


def check_function_races(
    func: ast.FunctionDef,
    filename: str,
    lines: Optional[SourceMap] = None,
    phase: str = "pristine",
) -> List[Diagnostic]:
    """All race diagnostics of one function."""
    diagnostics: List[Diagnostic] = []
    for region in parallel_regions(func):
        if region.loop is None:
            diagnostics.append(
                _diagnose(
                    "OMP003",
                    "'#pragma omp parallel for' is not followed by a for loop",
                    filename=filename,
                    function=func.name,
                    node=region.pragma,
                    lines=lines,
                    phase=phase,
                    hint="place the pragma directly above the worksharing loop",
                )
            )
            continue
        report = classify_sharing(region)
        if report is None:
            continue
        if report.induction is None:
            diagnostics.append(
                _diagnose(
                    "OMP004",
                    "cannot identify the induction variable of the parallel "
                    "loop; sharing classification skipped",
                    filename=filename,
                    function=func.name,
                    node=region.loop,
                    lines=lines,
                    phase=phase,
                    hint="use a canonical init like 'i = 0' or 'int i = 0'",
                )
            )
            continue
        diagnostics.extend(check_region_races(report, filename, lines, phase))
    return diagnostics


def check_unit_races(
    unit: ast.TranslationUnit,
    filename: str,
    lines: Optional[SourceMap] = None,
    phase: str = "pristine",
) -> List[Diagnostic]:
    """Race diagnostics for every function of a translation unit."""
    diagnostics: List[Diagnostic] = []
    for func in unit.functions():
        diagnostics.extend(check_function_races(func, filename, lines, phase))
    return diagnostics
