"""`repro.analysis` — the ``socrates check`` static-analysis framework.

Built on the dataflow layer of :mod:`repro.cir.dataflow`, this package
provides:

* the **OpenMP data-race detector** (:mod:`repro.analysis.races`) —
  flags shared scalars/arrays written inside ``parallel for`` bodies
  without a ``private``/``reduction`` clause or an induction-indexed
  subscript (rules ``OMP001``-``OMP004``);
* the **weave verifier** (:mod:`repro.analysis.weavecheck`) — checks
  every :class:`~repro.lara.weaver.Weaver` output against its
  :class:`~repro.lara.weaver.WeavePlan`: dispatch coverage, safe
  default arm, clone pragma consistency, call-site rewriting, control
  variables and the mARGOt weave points (rules ``WV101``-``WV106``);
* structured diagnostics with JSON and SARIF 2.1.0 renderings and the
  0/2/3 exit-code contract (:mod:`repro.analysis.diagnostics`);
* the checker front end (:mod:`repro.analysis.checker`) with
  ``#pragma socrates suppress(RULE, ...)`` support.

The toolflow runs :func:`verify_weave` as a post-weave gate; the
``socrates check`` CLI lints pristine and woven Polybench sources.
The rule catalogue is documented in ``docs/static_analysis.md``.
"""

from repro.analysis.checker import (
    apply_suppressions,
    check_app,
    check_apps,
    check_source_text,
    check_unit,
    collect_suppressions,
    parse_suppress_pragma,
)
from repro.analysis.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    CheckReport,
    Diagnostic,
    Severity,
)
from repro.analysis.races import (
    check_function_races,
    check_region_races,
    check_unit_races,
)
from repro.analysis.rules import RULES, Rule
from repro.analysis.weavecheck import verify_weave

__all__ = [
    "CheckReport",
    "Diagnostic",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "RULES",
    "Rule",
    "Severity",
    "apply_suppressions",
    "check_app",
    "check_apps",
    "check_function_races",
    "check_region_races",
    "check_source_text",
    "check_unit",
    "check_unit_races",
    "collect_suppressions",
    "parse_suppress_pragma",
    "verify_weave",
]
