"""`repro.analysis` — the ``socrates check`` static-analysis framework.

Built on the dataflow layer of :mod:`repro.cir.dataflow`, this package
provides:

* the **OpenMP data-race detector** (:mod:`repro.analysis.races`) —
  flags shared scalars/arrays written inside ``parallel for`` bodies
  without a ``private``/``reduction`` clause or an induction-indexed
  subscript (rules ``OMP001``-``OMP004``);
* the **weave verifier** (:mod:`repro.analysis.weavecheck`) — checks
  every :class:`~repro.lara.weaver.Weaver` output against its
  :class:`~repro.lara.weaver.WeavePlan`: dispatch coverage, safe
  default arm, clone pragma consistency, call-site rewriting, control
  variables and the mARGOt weave points (rules ``WV101``-``WV106``);
* structured diagnostics with JSON and SARIF 2.1.0 renderings and the
  0/2/3 exit-code contract (:mod:`repro.analysis.diagnostics`);
* the checker front end (:mod:`repro.analysis.checker`) with
  ``#pragma socrates suppress(RULE, ...)`` support;
* the **interprocedural layer** — an interval/value-range abstract
  interpreter (:mod:`repro.analysis.intervals`), call-graph
  construction with bottom-up function summaries
  (:mod:`repro.analysis.interproc`), the flag-safety rule family
  ``FPS201``-``FPS204`` (:mod:`repro.analysis.flagsafety`), and the
  static cost oracle + lattice :class:`PrunePlan`
  (:mod:`repro.analysis.cost`) that lets the DSE skip
  statically-dominated points without changing its Pareto fronts.

The toolflow runs :func:`verify_weave` as a post-weave gate; the
``socrates check`` CLI lints pristine and woven Polybench sources.
The rule catalogue is documented in ``docs/static_analysis.md``.
"""

from repro.analysis.checker import (
    apply_suppressions,
    check_app,
    check_apps,
    check_source_text,
    check_unit,
    collect_suppressions,
    parse_suppress_pragma,
)
from repro.analysis.cost import (
    KernelCostReport,
    PrunePlan,
    PrunedPoint,
    RooflinePredictor,
    build_prune_plan,
    cross_validate,
    kernel_cost_report,
)
from repro.analysis.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    CheckReport,
    Diagnostic,
    Severity,
)
from repro.analysis.flagsafety import (
    FlagSafetyVerdict,
    check_unit_flag_safety,
    flag_safety_verdict,
)
from repro.analysis.interproc import (
    CallGraph,
    FunctionSummary,
    build_call_graph,
    summarize_unit,
)
from repro.analysis.intervals import (
    Interval,
    analyze_function,
    array_footprints,
    eval_interval,
)
from repro.analysis.races import (
    check_function_races,
    check_region_races,
    check_unit_races,
)
from repro.analysis.rules import RULES, Rule
from repro.analysis.weavecheck import verify_weave

__all__ = [
    "CallGraph",
    "CheckReport",
    "Diagnostic",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "FlagSafetyVerdict",
    "FunctionSummary",
    "Interval",
    "KernelCostReport",
    "PrunePlan",
    "PrunedPoint",
    "RULES",
    "RooflinePredictor",
    "Rule",
    "Severity",
    "analyze_function",
    "apply_suppressions",
    "array_footprints",
    "build_call_graph",
    "build_prune_plan",
    "check_app",
    "check_apps",
    "check_function_races",
    "check_region_races",
    "check_source_text",
    "check_unit",
    "check_unit_flag_safety",
    "check_unit_races",
    "collect_suppressions",
    "cross_validate",
    "eval_interval",
    "flag_safety_verdict",
    "kernel_cost_report",
    "parse_suppress_pragma",
    "summarize_unit",
    "verify_weave",
]
