"""The static cost oracle and the lattice :class:`PrunePlan`.

Three layers:

* :func:`kernel_cost_report` — per-loop-nest work/footprint estimates
  derived *statically* from the interval + interprocedural analyses
  (:mod:`repro.analysis.intervals`, :mod:`repro.analysis.interproc`):
  trip-weighted operation counts, per-array footprints, operational
  intensity.
* :func:`cross_validate` — relative errors of the oracle against the
  workload profiler and the Milepost feature vector.  Pruning only
  activates when the oracle demonstrably understands the kernel
  (``trusted``); an unanalyzable kernel yields an empty plan, never a
  wrong one.
* :func:`build_prune_plan` — the consumer-facing artifact.  A
  :class:`RooflinePredictor` projects every lattice point onto the
  machine model's noise-free roofline, and points that are
  *margin-dominated* — some other point is predicted faster **and**
  lower-power by at least ``margin`` on both axes — are masked.  The
  margin is many standard deviations of the measurement noise
  (σ≈1.2% per repetition), so a masked point cannot sit on the noisy
  Pareto front: the seeded front of a pruned exploration is
  bit-identical to the full one (enforced by tests and the
  ``static-prune`` CI job).

Flag-safety verdicts (:mod:`repro.analysis.flagsafety`) ride along in
the plan for the COBAYN corpus builder, which may exclude unsafe
fast-math configurations from its iterative-compilation sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.flagsafety import (
    FlagSafetyVerdict,
    flag_safety_verdict,
    unsafe_config_labels,
)
from repro.analysis.interproc import _SummaryWalker, summarize_unit
from repro.analysis.intervals import analyze_function, array_footprints
from repro.cir import ast
from repro.cir.analysis import LoopInfo, collect_loops, eval_const
from repro.polybench.workload import (
    WorkloadProfile,
    _is_floating_type,
    bound_environment,
)

__all__ = [
    "DEFAULT_PRUNE_MARGIN",
    "ORACLE_TOLERANCE",
    "KernelCostReport",
    "LoopNestCost",
    "PrunePlan",
    "PrunedPoint",
    "RooflinePredictor",
    "build_prune_plan",
    "cross_validate",
    "kernel_cost_report",
    "point_key",
    "roofline_classification",
]

#: Minimum mutual predicted advantage (on both time and power) before a
#: lattice point is masked.  Noise factors are lognormal with
#: sigma=0.02 (time) / 0.012 (power); a 12% margin is >5 sigma even at
#: a single repetition, so margin-dominated points stay off the noisy
#: Pareto front.
DEFAULT_PRUNE_MARGIN = 0.12

#: Maximum relative error of the oracle vs. the workload profiler for
#: a kernel to count as understood.
ORACLE_TOLERANCE = 0.35

_FLOAT_BYTES = 8.0
_INT_BYTES = 4.0


@dataclass(frozen=True)
class LoopNestCost:
    """Work and footprint estimate for one top-level loop nest."""

    function: str
    induction: Optional[str]
    depth: int
    iterations: float
    flops: float
    int_ops: float
    loads: float
    stores: float
    footprint_bytes: float

    @property
    def naive_bytes(self) -> float:
        return (self.loads + self.stores) * _FLOAT_BYTES

    @property
    def operational_intensity(self) -> float:
        """Flops per byte of naive traffic (roofline x-axis)."""
        if self.naive_bytes == 0:
            return 0.0
        return self.flops / self.naive_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "induction": self.induction,
            "depth": self.depth,
            "iterations": self.iterations,
            "flops": self.flops,
            "int_ops": self.int_ops,
            "loads": self.loads,
            "stores": self.stores,
            "footprint_bytes": self.footprint_bytes,
            "operational_intensity": self.operational_intensity,
        }


@dataclass(frozen=True)
class KernelCostReport:
    """The oracle's view of one kernel function."""

    kernel: str
    nests: Tuple[LoopNestCost, ...]
    flops: float
    int_ops: float
    loads: float
    stores: float
    footprint_bytes: float
    max_depth: int
    resolved: bool

    @property
    def naive_bytes(self) -> float:
        return (self.loads + self.stores) * _FLOAT_BYTES

    @property
    def operational_intensity(self) -> float:
        if self.naive_bytes == 0:
            return 0.0
        return self.flops / self.naive_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "nests": [nest.as_dict() for nest in self.nests],
            "flops": self.flops,
            "int_ops": self.int_ops,
            "loads": self.loads,
            "stores": self.stores,
            "footprint_bytes": self.footprint_bytes,
            "naive_bytes": self.naive_bytes,
            "operational_intensity": self.operational_intensity,
            "max_depth": self.max_depth,
            "resolved": self.resolved,
        }


def _declared_arrays(
    unit: ast.TranslationUnit, env: Mapping[str, int]
) -> Dict[str, Tuple[Tuple[int, ...], float]]:
    """Global array name -> (dims, element bytes)."""
    arrays: Dict[str, Tuple[Tuple[int, ...], float]] = {}
    for decl in unit.decls:
        if not (isinstance(decl, ast.Decl) and decl.array_dims):
            continue
        dims: List[int] = []
        for dim in decl.array_dims:
            value = eval_const(dim, dict(env))
            if value is None:
                dims = []
                break
            dims.append(value)
        if not dims:
            continue
        element_bytes = (
            _FLOAT_BYTES if _is_floating_type(unit, decl.type.name) else _INT_BYTES
        )
        arrays[decl.name] = (tuple(dims), element_bytes)
    return arrays


def kernel_cost_report(
    unit: ast.TranslationUnit,
    kernel: str,
    env: Optional[Mapping[str, int]] = None,
) -> KernelCostReport:
    """Statically estimate the work and footprint of ``kernel``.

    ``env`` supplies macro/parameter constants (defaults to
    :func:`repro.polybench.workload.bound_environment`).
    """
    if env is None:
        env = bound_environment(unit)
    env = dict(env)
    try:
        func = unit.function(kernel)
    except KeyError:
        raise ValueError(
            f"no function {kernel!r} in unit {unit.name!r}"
        ) from None
    summaries = summarize_unit(unit, env)
    facts = analyze_function(func, env)
    declared = _declared_arrays(unit, env)
    loop_infos = {id(info.node): info for info in collect_loops(func.body)}
    nests: List[LoopNestCost] = []
    resolved = facts.resolved
    array_bytes: Dict[str, float] = {}
    for info in collect_loops(func.body):
        if info.parent is not None:
            continue
        walker = _SummaryWalker(env, facts, loop_infos, summaries)
        walker._visit(info.node, 1.0, dict(env))
        totals = walker.totals
        if not totals.resolved:
            resolved = False
        iterations = _nest_iterations(info, env, facts)
        footprints = array_footprints(
            info.node,
            facts,
            env,
            {name: dims for name, (dims, _) in declared.items()},
        )
        footprint = 0.0
        for name, fp in footprints.items():
            nest_bytes = fp.bytes(declared.get(name, ((), _FLOAT_BYTES))[1])
            footprint += nest_bytes
            # the kernel-level working set counts each array once, at
            # its widest extent over all nests
            array_bytes[name] = max(array_bytes.get(name, 0.0), nest_bytes)
        depth = 1 + child_depth(info)
        nests.append(
            LoopNestCost(
                function=func.name,
                induction=info.induction_variable,
                depth=depth,
                iterations=iterations,
                flops=max(0.0, totals.flops),
                int_ops=max(0.0, totals.int_ops),
                loads=max(0.0, totals.loads),
                stores=max(0.0, totals.stores),
                footprint_bytes=footprint,
            )
        )
    summary = summaries.get(kernel)
    return KernelCostReport(
        kernel=kernel,
        nests=tuple(nests),
        flops=summary.flops if summary else 0.0,
        int_ops=summary.int_ops if summary else 0.0,
        loads=summary.loads if summary else 0.0,
        stores=summary.stores if summary else 0.0,
        footprint_bytes=sum(array_bytes.values()),
        max_depth=summary.max_depth if summary else 0,
        resolved=resolved and (summary.resolved if summary else False),
    )


def child_depth(info: LoopInfo) -> int:
    if not info.children:
        return 0
    return 1 + max(child_depth(child) for child in info.children)


def _nest_iterations(
    info: LoopInfo, env: Mapping[str, int], facts
) -> float:
    """Total innermost iterations of a nest (midpoint convention)."""
    constants = facts.constants_at(info.node)
    local_env = dict(env)
    local_env.update(constants)
    trip = info.trip_count(local_env)
    if trip is None:
        return 0.0
    total = float(max(1, trip))
    midpoint = info.midpoint(local_env)
    iv = info.induction_variable
    if iv is not None and midpoint is not None:
        local_env[iv] = midpoint
    best_child = 0.0
    for child in info.children:
        best_child = max(best_child, _nest_iterations(child, local_env, facts))
    return total * best_child if info.children else total


def cross_validate(
    report: KernelCostReport,
    profile: WorkloadProfile,
    features=None,
) -> Dict[str, float]:
    """Relative errors of the oracle vs. profiler (and Milepost)."""

    def relative(oracle: float, reference: float) -> float:
        return abs(oracle - reference) / max(1.0, abs(reference))

    errors = {
        "flops": relative(report.flops, profile.flops),
        "memory_ops": relative(
            report.loads + report.stores, profile.loads + profile.stores
        ),
        "working_set": relative(report.footprint_bytes, profile.working_set_bytes),
        "intensity": relative(
            report.operational_intensity, profile.arithmetic_intensity
        ),
    }
    if features is not None:
        errors["loop_depth"] = relative(
            float(report.max_depth), float(features["ft17_loop_nest_depth"])
        )
    return errors


def roofline_classification(
    report: KernelCostReport, machine
) -> Dict[str, object]:
    """Where the kernel sits on the machine's naive roofline."""
    cluster = machine.cluster(0)
    peak_flops = (
        cluster.cores * cluster.frequency_hz * getattr(cluster, "flops_per_cycle", 1.0)
    )
    bandwidth = machine.bandwidth_per_socket * machine.sockets
    ridge = peak_flops / bandwidth if bandwidth else math.inf
    intensity = report.operational_intensity
    return {
        "ridge_flops_per_byte": ridge,
        "operational_intensity": intensity,
        "bound": "compute" if intensity >= ridge else "memory",
    }


# ---------------------------------------------------------------------------
# lattice prediction and pruning
# ---------------------------------------------------------------------------


def point_key(point) -> str:
    """Canonical string identity of a design point."""
    cluster = point.cluster if point.cluster is not None else "-"
    return f"{point.compiler.label}|t{point.threads}|{point.binding.value}|{cluster}"


class RooflinePredictor:
    """Noise-free (time, power) prediction for lattice points.

    Runs the same closed-form compiler + machine model the engine's
    truth computation uses — without touching the engine (no counters,
    no caches, no noise stream), so predictions are free of
    measurement side effects.  One compilation per distinct flag
    configuration, one placement per (threads, binding, cluster).
    """

    def __init__(self, executor, omp, compiler=None) -> None:
        from repro.gcc.compiler import Compiler

        self._compiler = compiler or Compiler()
        self._executor = executor
        self._omp = omp
        self._kernels: Dict[str, object] = {}
        self._placements: Dict[Tuple[int, str, Optional[str]], object] = {}

    def predict(self, profile: WorkloadProfile, point) -> Tuple[float, float]:
        from repro.machine.openmp import BindingPolicy

        label = point.compiler.label
        kernel = self._kernels.get(label)
        if kernel is None:
            kernel = self._compiler.compile(profile, point.compiler)
            self._kernels[label] = kernel
        placement_key = (point.threads, point.binding.value, point.cluster)
        placement = self._placements.get(placement_key)
        if placement is None:
            placement = self._omp.place(
                point.threads,
                BindingPolicy(point.binding.value),
                cluster=point.cluster,
            )
            self._placements[placement_key] = placement
        result = self._executor.evaluate(kernel, placement)
        return result.time_s, result.power_w


@dataclass(frozen=True)
class PrunedPoint:
    """One masked lattice point and why it cannot be Pareto-optimal."""

    key: str
    reason: str
    dominated_by: str
    predicted_time_s: float
    predicted_power_w: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "reason": self.reason,
            "dominated_by": self.dominated_by,
            "predicted_time_s": self.predicted_time_s,
            "predicted_power_w": self.predicted_power_w,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PrunedPoint":
        return cls(
            key=str(data["key"]),
            reason=str(data["reason"]),
            dominated_by=str(data.get("dominated_by", "")),
            predicted_time_s=float(data.get("predicted_time_s", 0.0)),
            predicted_power_w=float(data.get("predicted_power_w", 0.0)),
        )


@dataclass
class PrunePlan:
    """Statically-masked lattice points plus flag-safety verdicts.

    Round-trips through JSON (``as_dict``/``from_dict``) so plans can
    be written by ``socrates check --prune-plan`` and consumed later
    by ``socrates dse --prune-plan``.
    """

    app: str
    kernel: str
    margin: float
    trusted: bool
    space_size: int
    masked: Dict[str, PrunedPoint] = field(default_factory=dict)
    validation: Dict[str, float] = field(default_factory=dict)
    flag_safety: FlagSafetyVerdict = field(
        default_factory=lambda: FlagSafetyVerdict((), (), ())
    )

    def is_masked(self, point) -> bool:
        return point_key(point) in self.masked

    def record(self, pruned: PrunedPoint) -> None:
        self.masked[pruned.key] = pruned

    @property
    def masked_count(self) -> int:
        return len(self.masked)

    def masked_fraction(self) -> float:
        if not self.space_size:
            return 0.0
        return self.masked_count / self.space_size

    def excluded_config_labels(self, configs: Sequence) -> Tuple[str, ...]:
        """Flag configurations the safety verdict rules out entirely."""
        return unsafe_config_labels(self.flag_safety, configs)

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": 1,
            "app": self.app,
            "kernel": self.kernel,
            "margin": self.margin,
            "trusted": self.trusted,
            "space_size": self.space_size,
            "validation": dict(sorted(self.validation.items())),
            "flag_safety": self.flag_safety.as_dict(),
            "masked": [
                self.masked[key].as_dict() for key in sorted(self.masked)
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PrunePlan":
        if data.get("format") != 1:
            raise ValueError(
                f"unsupported prune-plan format {data.get('format')!r}"
            )
        plan = cls(
            app=str(data["app"]),
            kernel=str(data["kernel"]),
            margin=float(data["margin"]),
            trusted=bool(data["trusted"]),
            space_size=int(data["space_size"]),
            validation={
                str(name): float(value)
                for name, value in dict(data.get("validation", {})).items()
            },
            flag_safety=FlagSafetyVerdict.from_dict(
                dict(data.get("flag_safety", {}))
            ),
        )
        for entry in data.get("masked", []):  # type: ignore[union-attr]
            plan.record(PrunedPoint.from_dict(entry))
        return plan


def _margin_dominated(
    predictions: List[Tuple[str, float, float]], margin: float
) -> List[Tuple[str, str, float, float]]:
    """(key, dominator, time, power) for every margin-dominated point."""
    dominated: List[Tuple[str, str, float, float]] = []
    # sorted by time: only faster points can margin-dominate on time
    by_time = sorted(predictions, key=lambda item: item[1])
    for key, time_s, power_w in predictions:
        time_limit = time_s * (1.0 - margin)
        power_limit = power_w * (1.0 - margin)
        for other_key, other_time, other_power in by_time:
            if other_time > time_limit:
                break
            if other_key != key and other_power <= power_limit:
                dominated.append((key, other_key, time_s, power_w))
                break
    return dominated


def build_prune_plan(
    app,
    space,
    *,
    kernel: Optional[str] = None,
    unit: Optional[ast.TranslationUnit] = None,
    profile: Optional[WorkloadProfile] = None,
    features=None,
    executor=None,
    omp=None,
    machine=None,
    margin: float = DEFAULT_PRUNE_MARGIN,
    tolerance: float = ORACLE_TOLERANCE,
) -> PrunePlan:
    """Compile the static verdicts for ``app`` over ``space`` into a plan.

    The plan masks a point only when (a) the cost oracle's estimates
    cross-validate against the workload profiler and Milepost features
    within ``tolerance``, and (b) the roofline predictor finds another
    point at least ``margin`` better on *both* time and power.  An
    untrusted oracle yields an empty (but well-formed) plan.
    """
    if not 0.0 < margin < 1.0:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    from repro.machine.executor import MachineExecutor
    from repro.machine.openmp import OpenMPRuntime
    from repro.machine.registry import resolve_machine
    from repro.milepost.features import extract_features
    from repro.polybench.workload import profile_kernel

    if unit is None:
        unit = app.parse()
    kernel_name = kernel or app.kernels[0]
    if profile is None:
        profile = profile_kernel(app, kernel_name, unit=unit)
    if features is None:
        features = extract_features(unit, kernel_name)
    if executor is None or omp is None:
        resolved = resolve_machine(
            machine if machine is not None else getattr(executor, "machine", None)
        )
        executor = executor or MachineExecutor(resolved)
        omp = omp or OpenMPRuntime(executor.machine)

    env = bound_environment(unit)
    report = kernel_cost_report(unit, kernel_name, env)
    errors = cross_validate(report, profile, features)
    trusted = report.resolved and all(
        value <= tolerance for value in errors.values()
    )
    verdict = flag_safety_verdict(unit, kernel_name)
    plan = PrunePlan(
        app=app.name,
        kernel=kernel_name,
        margin=margin,
        trusted=trusted,
        space_size=space.size,
        validation=errors,
        flag_safety=verdict,
    )
    if not trusted:
        return plan
    predictor = RooflinePredictor(executor, omp)
    predictions = [
        (point_key(point),) + predictor.predict(profile, point)
        for point in space.points()
    ]
    for key, dominator, time_s, power_w in _margin_dominated(predictions, margin):
        plan.record(
            PrunedPoint(
                key=key,
                reason=(
                    f"margin-dominated: {dominator} is predicted >="
                    f"{margin:.0%} faster and lower-power"
                ),
                dominated_by=dominator,
                predicted_time_s=time_s,
                predicted_power_w=power_w,
            )
        )
    return plan
