"""The weave verifier (rules WV101-WV106).

Statically checks a woven translation unit against its
:class:`~repro.lara.weaver.WeavePlan`: dispatch coverage and the safe
default arm, per-clone pragma consistency, call-site rewriting,
single declaration of the control variables, and the mARGOt weave
points of :mod:`repro.margot.weavepoints` in their required order.
Every violation is an error-severity diagnostic — a broken weave
silently corrupts every downstream DSE point, so the toolflow treats
these as hard failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES
from repro.cir import ast
from repro.cir.printer import SourceMap
from repro.cir.visitor import walk
from repro.gcc.flags import parse_pragma
from repro.lara.strategies.multiversioning import THREADS_VARIABLE, VERSION_VARIABLE
from repro.margot import weavepoints
from repro.cir.dataflow import is_parallel_for_pragma, parse_omp_clauses


def _diagnose(
    rule: str,
    message: str,
    *,
    filename: str,
    function: Optional[str] = None,
    node: Optional[ast.Node] = None,
    lines: Optional[SourceMap] = None,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=RULES[rule].severity,
        message=message,
        file=filename,
        function=function,
        line=lines.line_of(node) if (lines is not None and node is not None) else None,
        hint=hint,
        phase="woven",
        anchor_id=id(node) if node is not None else None,
    )


def _call_name(stmt: ast.Stmt) -> Optional[str]:
    """Name of the direct call when ``stmt`` is ``f(...);``, else None."""
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call):
        return stmt.expr.name
    return None


def _dispatch_arms(
    wrapper: ast.FunctionDef,
) -> Tuple[List[Tuple[Optional[int], str]], bool, Optional[ast.Node]]:
    """Walk the wrapper's if-else dispatch chain.

    Returns (arms, has_default, offending_node): ``arms`` is a list of
    (matched version index or None for the default, callee name);
    ``has_default`` is True when the chain ends in an unconditional
    call; ``offending_node`` points at the first unrecognized shape.
    """
    arms: List[Tuple[Optional[int], str]] = []
    if len(wrapper.body.stmts) != 1:
        return arms, False, wrapper
    stmt: Optional[ast.Stmt] = wrapper.body.stmts[0]
    while stmt is not None:
        if isinstance(stmt, ast.If):
            cond = stmt.cond
            index: Optional[int] = None
            if (
                isinstance(cond, ast.BinOp)
                and cond.op == "=="
                and isinstance(cond.lhs, ast.Ident)
                and cond.lhs.name == VERSION_VARIABLE
                and isinstance(cond.rhs, ast.IntLit)
            ):
                index = cond.rhs.value
            else:
                return arms, False, stmt
            then = stmt.then
            body_stmts = then.stmts if isinstance(then, ast.Block) else [then]
            if len(body_stmts) != 1:
                return arms, False, stmt
            callee = _call_name(body_stmts[0])
            if callee is None:
                return arms, False, stmt
            arms.append((index, callee))
            stmt = stmt.other
            if stmt is None:
                return arms, False, None  # chain ended without a default arm
            continue
        callee = _call_name(stmt)
        if callee is None:
            return arms, False, stmt
        arms.append((None, callee))
        return arms, True, None
    return arms, False, None


def _check_kernel(
    unit: ast.TranslationUnit,
    result,  # MultiversioningResult
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    kernel = result.kernel
    wrapper_name = result.wrapper
    version_names = list(result.version_names)

    # -- versions exist, with consistent pragmas (WV101 / WV103) --------------
    for name, spec in zip(version_names, result.versions):
        if not unit.has_function(name):
            diagnostics.append(
                _diagnose(
                    "WV101",
                    f"cloned version {name!r} of kernel {kernel!r} is missing",
                    filename=filename,
                    function=kernel,
                    hint="the Multiversioning strategy must emit one clone per VersionSpec",
                )
            )
            continue
        clone = unit.function(name)
        diagnostics.extend(
            _check_clone_pragmas(clone, spec, filename, lines)
        )

    # -- wrapper dispatch (WV101 / WV102) -------------------------------------
    if not unit.has_function(wrapper_name):
        diagnostics.append(
            _diagnose(
                "WV101",
                f"dispatch wrapper {wrapper_name!r} for kernel {kernel!r} is missing",
                filename=filename,
                function=kernel,
            )
        )
    else:
        wrapper = unit.function(wrapper_name)
        diagnostics.extend(
            _check_wrapper(wrapper, version_names, kernel, filename, lines)
        )

    # -- original call sites rewritten (WV104) --------------------------------
    skip = set(version_names) | {wrapper_name, kernel}
    for func in unit.functions():
        if func.name in skip:
            continue
        for node in walk(func.body):
            if isinstance(node, ast.Call) and node.name == kernel:
                diagnostics.append(
                    _diagnose(
                        "WV104",
                        f"call to original kernel {kernel!r} survived weaving",
                        filename=filename,
                        function=func.name,
                        node=node,
                        lines=lines,
                        hint=f"rewrite the call to {wrapper_name!r}",
                    )
                )
    return diagnostics


def _check_clone_pragmas(
    clone: ast.FunctionDef,
    spec,  # VersionSpec
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    configs = []
    for pragma in clone.pragmas:
        if pragma.is_gcc_optimize:
            try:
                configs.append(parse_pragma(pragma.text))
            except ValueError:
                pass
    if spec.compiler not in configs:
        diagnostics.append(
            _diagnose(
                "WV103",
                f"clone {clone.name!r} lacks the '#pragma {spec.compiler.pragma_text}' "
                f"of its VersionSpec",
                filename=filename,
                function=clone.name,
                node=clone,
                lines=lines,
                hint="attach the FlagConfiguration pragma when cloning",
            )
        )
    for node in walk(clone.body):
        if not isinstance(node, ast.Pragma) or not is_parallel_for_pragma(node):
            continue
        clauses = parse_omp_clauses(node.text)
        if clauses.num_threads != THREADS_VARIABLE:
            diagnostics.append(
                _diagnose(
                    "WV103",
                    f"parallel-for pragma of clone {clone.name!r} does not set "
                    f"num_threads({THREADS_VARIABLE})",
                    filename=filename,
                    function=clone.name,
                    node=node,
                    lines=lines,
                    hint="the thread count must stay a runtime control variable",
                )
            )
        if clauses.proc_bind != spec.binding.omp_name:
            diagnostics.append(
                _diagnose(
                    "WV103",
                    f"parallel-for pragma of clone {clone.name!r} has "
                    f"proc_bind({clauses.proc_bind or 'none'}), VersionSpec "
                    f"requires proc_bind({spec.binding.omp_name})",
                    filename=filename,
                    function=clone.name,
                    node=node,
                    lines=lines,
                )
            )
    return diagnostics


def _check_wrapper(
    wrapper: ast.FunctionDef,
    version_names: List[str],
    kernel: str,
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    arms, has_default, offending = _dispatch_arms(wrapper)
    if offending is not None:
        diagnostics.append(
            _diagnose(
                "WV101",
                f"wrapper {wrapper.name!r} has an unrecognized dispatch shape "
                f"(expected an if-else chain on {VERSION_VARIABLE})",
                filename=filename,
                function=wrapper.name,
                node=offending,
                lines=lines,
            )
        )
        return diagnostics
    called = [callee for _, callee in arms]
    if sorted(called) != sorted(version_names) or len(called) != len(version_names):
        missing = sorted(set(version_names) - set(called))
        extra = sorted(set(called) - set(version_names))
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        diagnostics.append(
            _diagnose(
                "WV101",
                f"wrapper {wrapper.name!r} dispatches to {len(called)} version(s), "
                f"plan has {len(version_names)}: " + "; ".join(detail or ["order/arity mismatch"]),
                filename=filename,
                function=wrapper.name,
                node=wrapper,
                lines=lines,
                hint="one dispatch arm per VersionSpec, in index order",
            )
        )
    for arm_index, (matched, callee) in enumerate(arms):
        if matched is not None and matched != arm_index:
            diagnostics.append(
                _diagnose(
                    "WV101",
                    f"wrapper {wrapper.name!r} arm {arm_index} tests "
                    f"{VERSION_VARIABLE} == {matched}",
                    filename=filename,
                    function=wrapper.name,
                    node=wrapper,
                    lines=lines,
                )
            )
    if not has_default:
        diagnostics.append(
            _diagnose(
                "WV102",
                f"wrapper {wrapper.name!r} has no unconditional default arm: "
                f"an out-of-range {VERSION_VARIABLE} would compute nothing",
                filename=filename,
                function=wrapper.name,
                node=wrapper,
                lines=lines,
                hint="make the last version the else arm of the dispatch chain",
            )
        )
    return diagnostics


def _check_control_variables(
    unit: ast.TranslationUnit,
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    counts: Dict[str, int] = {VERSION_VARIABLE: 0, THREADS_VARIABLE: 0}
    for decl in unit.decls:
        if isinstance(decl, ast.Decl) and decl.name in counts:
            counts[decl.name] += 1
    for name, count in counts.items():
        if count != 1:
            diagnostics.append(
                _diagnose(
                    "WV105",
                    f"control variable {name!r} declared {count} time(s) at "
                    f"file scope, expected exactly once",
                    filename=filename,
                    hint="the Multiversioning strategy declares each control "
                    "variable once before the first kernel",
                )
            )
    return diagnostics


def _check_margot_points(
    unit: ast.TranslationUnit,
    plan,
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if not any(
        isinstance(decl, ast.Include) and decl.target == weavepoints.MARGOT_HEADER
        for decl in unit.decls
    ):
        diagnostics.append(
            _diagnose(
                "WV106",
                f"woven unit does not include {weavepoints.MARGOT_HEADER!r}",
                filename=filename,
            )
        )
    # init at the entry of main
    if not unit.has_function(plan.main):
        diagnostics.append(
            _diagnose(
                "WV106",
                f"entry function {plan.main!r} not found; cannot verify "
                f"{weavepoints.INIT_CALL}()",
                filename=filename,
            )
        )
    else:
        main = unit.function(plan.main)
        first = main.body.stmts[0] if main.body.stmts else None
        if first is None or _call_name(first) != weavepoints.INIT_CALL:
            diagnostics.append(
                _diagnose(
                    "WV106",
                    f"{weavepoints.INIT_CALL}() is not the "
                    f"{weavepoints.INIT_POINT.placement}",
                    filename=filename,
                    function=plan.main,
                    node=first or main,
                    lines=lines,
                )
            )
    # update/start/stop/log around every wrapper call
    wrappers = set(plan.wrappers)
    clones = {name for result in plan.kernels for name in result.version_names}
    for func in unit.functions():
        if func.name in wrappers or func.name in clones:
            continue
        for block in (n for n in walk(func.body) if isinstance(n, ast.Block)):
            for index, stmt in enumerate(block.stmts):
                call = _wrapper_call_in(stmt, wrappers)
                if call is None:
                    continue
                diagnostics.extend(
                    _check_call_site(
                        block, index, func.name, call, filename, lines
                    )
                )
    return diagnostics


def _wrapper_call_in(stmt: ast.Stmt, wrappers) -> Optional[str]:
    """The wrapper name when ``stmt``'s subtree calls one, else None."""
    if isinstance(stmt, (ast.Block, ast.If, ast.For, ast.While, ast.DoWhile)):
        return None  # the call site anchor is the direct statement
    for node in walk(stmt):
        if isinstance(node, ast.Call) and node.name in wrappers:
            return node.name
    return None


def _check_call_site(
    block: ast.Block,
    index: int,
    function: str,
    wrapper: str,
    filename: str,
    lines: Optional[SourceMap],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    anchor = block.stmts[index]
    expected_before = list(weavepoints.CALL_SITE_PRELUDE)
    expected_after = list(weavepoints.CALL_SITE_POSTLUDE)
    for offset, point in enumerate(expected_before, start=1):
        neighbor = block.stmts[index - offset] if index - offset >= 0 else None
        actual = _call_name(neighbor) if neighbor is not None else None
        if actual != point.call:
            diagnostics.append(
                _diagnose(
                    "WV106",
                    f"{point.call}() must be the {point.placement} to "
                    f"{wrapper!r} (found {actual or 'nothing'})",
                    filename=filename,
                    function=function,
                    node=anchor,
                    lines=lines,
                    hint=f"required order: "
                    + ", ".join(weavepoints.CALL_SITE_SEQUENCE),
                )
            )
    for offset, point in enumerate(expected_after, start=1):
        position = index + offset
        neighbor = block.stmts[position] if position < len(block.stmts) else None
        actual = _call_name(neighbor) if neighbor is not None else None
        if actual != point.call:
            diagnostics.append(
                _diagnose(
                    "WV106",
                    f"{point.call}() must be the {point.placement} to "
                    f"{wrapper!r} (found {actual or 'nothing'})",
                    filename=filename,
                    function=function,
                    node=anchor,
                    lines=lines,
                    hint=f"required order: "
                    + ", ".join(weavepoints.CALL_SITE_SEQUENCE),
                )
            )
    return diagnostics


def verify_weave(
    unit: ast.TranslationUnit,
    plan,
    filename: str = "<woven>",
    lines: Optional[SourceMap] = None,
) -> List[Diagnostic]:
    """Check a woven unit against its weave plan.

    Returns every structural violation as an error diagnostic; an
    empty list means the weave is structurally sound.
    """
    diagnostics: List[Diagnostic] = []
    for result in plan.kernels:
        diagnostics.extend(_check_kernel(unit, result, filename, lines))
    diagnostics.extend(_check_control_variables(unit, filename, lines))
    diagnostics.extend(_check_margot_points(unit, plan, filename, lines))
    return diagnostics
