"""Value-range (interval) abstract interpretation over CIR.

The domain is the classic integer-interval lattice: an
:class:`Interval` is either BOTTOM (no value), a possibly half-open
range ``[lo, hi]`` (``None`` encodes the respective infinity), or TOP
(``[-inf, +inf]``).  ``join``/``meet`` are the lattice operations and
``widen`` is the standard widening (a bound that grew jumps straight
to its infinity), which terminates in at most three steps per
variable and makes the loop fixpoints below finite.

:func:`analyze_function` runs a flow-sensitive abstract interpreter
over one function body and records, per ``for`` loop:

* the abstract environment at loop entry (after the init clause);
* the *locally-constant facts* — variables whose interval is a
  singleton at loop entry.  These are what
  :meth:`repro.cir.analysis.LoopInfo.trip_count` consumes to resolve
  bounds held in locally-constant variables rather than literals;
* a sound interval for the trip count and for the induction variable
  inside the body.

:func:`array_footprints` then turns the per-loop induction ranges
into per-array accessed-extent estimates — the footprint side of the
static cost oracle (:mod:`repro.analysis.cost`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cir import ast
from repro.cir.analysis import LoopInfo, _step_value, collect_loops
from repro.cir.visitor import walk

__all__ = [
    "Interval",
    "TOP",
    "BOTTOM",
    "Env",
    "LoopFacts",
    "FunctionFacts",
    "ArrayFootprint",
    "analyze_function",
    "array_footprints",
    "eval_interval",
    "join_envs",
    "loop_constant_facts",
    "trip_interval",
    "widen_envs",
]


def _neg(value: Optional[int]) -> Optional[int]:
    return None if value is None else -value


@dataclass(frozen=True)
class Interval:
    """An integer range ``[lo, hi]``; ``None`` bounds are infinite.

    The empty interval (BOTTOM) is canonical: ``lo``/``hi`` are
    ``None`` and ``empty`` is True, so structural equality works for
    the lattice laws.
    """

    lo: Optional[int] = None
    hi: Optional[int] = None
    empty: bool = False

    def __post_init__(self) -> None:
        if self.empty or (
            self.lo is not None and self.hi is not None and self.lo > self.hi
        ):
            object.__setattr__(self, "lo", None)
            object.__setattr__(self, "hi", None)
            object.__setattr__(self, "empty", True)

    # -- constructors --------------------------------------------------------

    @classmethod
    def top(cls) -> "Interval":
        return cls()

    @classmethod
    def bottom(cls) -> "Interval":
        return cls(empty=True)

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(lo=value, hi=value)

    @classmethod
    def range(cls, lo: Optional[int], hi: Optional[int]) -> "Interval":
        return cls(lo=lo, hi=hi)

    # -- predicates ----------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return not self.empty and self.lo is None and self.hi is None

    @property
    def is_constant(self) -> bool:
        return not self.empty and self.lo is not None and self.lo == self.hi

    @property
    def constant(self) -> Optional[int]:
        return self.lo if self.is_constant else None

    @property
    def width(self) -> Optional[int]:
        """Number of integers covered, ``None`` when unbounded."""
        if self.empty:
            return 0
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        if self.empty:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def covers(self, other: "Interval") -> bool:
        """Lattice order: is ``other`` contained in ``self``?"""
        if other.empty:
            return True
        if self.empty:
            return False
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    # -- lattice operations --------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOTTOM
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard widening: a bound that moved jumps to infinity."""
        if self.empty:
            return newer
        if newer.empty:
            return self
        if self.lo is None or newer.lo is None:
            lo = None
        else:
            lo = self.lo if newer.lo >= self.lo else None
        if self.hi is None or newer.hi is None:
            hi = None
        else:
            hi = self.hi if newer.hi <= self.hi else None
        return Interval(lo, hi)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOTTOM
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __neg__(self) -> "Interval":
        if self.empty:
            return BOTTOM
        return Interval(_neg(self.hi), _neg(self.lo))

    def __mul__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOTTOM
        candidates: List[Optional[int]] = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    # inf * 0 contributes nothing; any other infinite
                    # product makes the result unbounded on some side
                    if (a == 0) or (b == 0):
                        candidates.append(0)
                    else:
                        unbounded = True
                else:
                    candidates.append(a * b)
        if unbounded or not candidates:
            return TOP
        finite = [c for c in candidates if c is not None]
        return Interval(min(finite), max(finite))

    def div(self, other: "Interval") -> "Interval":
        """C-semantics (truncating) integer division."""
        if self.empty or other.empty:
            return BOTTOM
        if other.contains(0):
            return TOP  # division by zero is UB: anything goes
        if self.lo is None or self.hi is None or other.lo is None or other.hi is None:
            return TOP
        results = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                quotient = abs(a) // abs(b)
                results.append(quotient if (a < 0) == (b < 0) else -quotient)
        return Interval(min(results), max(results))

    def mod(self, other: "Interval") -> "Interval":
        """C-semantics remainder; precise only for non-negative operands."""
        if self.empty or other.empty:
            return BOTTOM
        if (
            other.lo is not None
            and other.lo > 0
            and other.hi is not None
            and self.lo is not None
            and self.lo >= 0
        ):
            hi = other.hi - 1
            if self.hi is not None:
                hi = min(hi, self.hi)
            return Interval(0, hi)
        return TOP


TOP = Interval()
BOTTOM = Interval(empty=True)

#: Abstract environment: variable name -> interval.  Missing names are TOP.
Env = Dict[str, Interval]


def _env_get(env: Mapping[str, Interval], name: str) -> Interval:
    return env.get(name, TOP)


def _normalize_env(env: Env) -> Env:
    """Drop TOP entries so environments compare structurally."""
    return {name: iv for name, iv in env.items() if not iv.is_top}


def join_envs(a: Mapping[str, Interval], b: Mapping[str, Interval]) -> Env:
    """Pointwise join; a variable missing on one side is TOP there."""
    joined: Env = {}
    for name in set(a) | set(b):
        joined[name] = _env_get(a, name).join(_env_get(b, name))
    return _normalize_env(joined)


def widen_envs(older: Mapping[str, Interval], newer: Mapping[str, Interval]) -> Env:
    """Pointwise widening of ``older`` by ``newer``."""
    widened: Env = {}
    for name in set(older) | set(newer):
        widened[name] = _env_get(older, name).widen(_env_get(newer, name))
    return _normalize_env(widened)


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------

_COMPARISONS = frozenset({"<", "<=", ">", ">=", "==", "!="})
_LOGICAL = frozenset({"&&", "||"})


def eval_interval(expr: Optional[ast.Expr], env: Mapping[str, Interval]) -> Interval:
    """Sound interval of an integer expression under ``env``.

    Anything the domain cannot model (array elements, call results,
    floating arithmetic) evaluates to TOP, never to a wrong range.
    """
    if expr is None:
        return TOP
    if isinstance(expr, ast.IntLit):
        return Interval.const(expr.value)
    if isinstance(expr, ast.Ident):
        return _env_get(env, expr.name)
    if isinstance(expr, ast.Cast):
        return eval_interval(expr.operand, env)
    if isinstance(expr, ast.TernaryOp):
        return eval_interval(expr.then, env).join(eval_interval(expr.other, env))
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "-":
            return -eval_interval(expr.operand, env)
        if expr.op == "+":
            return eval_interval(expr.operand, env)
        if expr.op == "!":
            return Interval(0, 1)
        if expr.op in ("++", "--") and isinstance(expr.operand, ast.Ident):
            base = _env_get(env, expr.operand.name)
            one = Interval.const(1)
            stepped = base + one if expr.op == "++" else base - one
            # postfix yields the old value, prefix the new one
            return base if expr.postfix else stepped
        return TOP
    if isinstance(expr, ast.Assign):
        # value of an assignment expression is its stored value
        return _assigned_interval(expr, env)
    if isinstance(expr, ast.BinOp):
        if expr.op in _COMPARISONS or expr.op in _LOGICAL:
            return Interval(0, 1)
        if expr.op == ",":
            return eval_interval(expr.rhs, env)
        lhs = eval_interval(expr.lhs, env)
        rhs = eval_interval(expr.rhs, env)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return lhs.div(rhs)
        if expr.op == "%":
            return lhs.mod(rhs)
        return TOP
    return TOP  # ArrayRef, Call, Member, SizeOf, ...


def _assigned_interval(assign: ast.Assign, env: Mapping[str, Interval]) -> Interval:
    rhs = eval_interval(assign.rhs, env)
    if assign.op == "=":
        return rhs
    if not isinstance(assign.lhs, ast.Ident):
        return TOP
    current = _env_get(env, assign.lhs.name)
    if assign.op == "+=":
        return current + rhs
    if assign.op == "-=":
        return current - rhs
    if assign.op == "*=":
        return current * rhs
    if assign.op == "/=":
        return current.div(rhs)
    if assign.op == "%=":
        return current.mod(rhs)
    return TOP


# ---------------------------------------------------------------------------
# per-function analysis
# ---------------------------------------------------------------------------


@dataclass
class LoopFacts:
    """What the abstract interpreter learned about one ``for`` loop."""

    entry_env: Env
    constants: Dict[str, int]
    trip: Optional[Interval]
    iv_range: Optional[Interval]
    induction: Optional[str]


@dataclass
class FunctionFacts:
    """Interval facts for one function, keyed by ``id(For node)``."""

    function: str
    loops: Dict[int, LoopFacts] = field(default_factory=dict)
    exit_env: Env = field(default_factory=dict)
    resolved: bool = True

    def constants_at(self, loop: ast.For) -> Dict[str, int]:
        """Locally-constant variables at ``loop``'s entry (may be empty)."""
        facts = self.loops.get(id(loop))
        return dict(facts.constants) if facts is not None else {}


_MAX_FIXPOINT_ITERATIONS = 64


def trip_interval(loop: ast.For, env: Mapping[str, Interval]) -> Optional[Interval]:
    """Sound interval for the trip count of ``loop`` under ``env``.

    Mirrors :meth:`LoopInfo.trip_count` — ``<``/``<=``/``>``/``>=``
    conditions with a constant additive step — but tolerates *ranges*
    for the bounds, which is what triangular nests produce.
    """
    cond = loop.cond
    if not isinstance(cond, ast.BinOp) or cond.op not in ("<", "<=", ">", ">="):
        return None
    constants = {
        name: iv.constant
        for name, iv in env.items()
        if iv.is_constant and iv.constant is not None
    }
    step = _step_value(loop.step, constants)
    if step is None or step == 0:
        return None
    lower = _init_interval(loop.init, env)
    upper = eval_interval(cond.rhs, env)
    if lower is None or lower.empty or upper.empty:
        return None
    if cond.op in ("<", "<="):
        if step < 0:
            return None
        span = upper - lower
        if cond.op == "<=":
            span = span + Interval.const(1)
    else:
        if step > 0:
            return None
        span = lower - upper
        if cond.op == ">=":
            span = span + Interval.const(1)
    step = abs(step)

    def trips(bound: Optional[int]) -> Optional[int]:
        if bound is None:
            return None
        if bound <= 0:
            return 0
        return (bound + step - 1) // step

    lo = trips(span.lo)
    hi = trips(span.hi)
    if span.lo is None:
        lo = 0
    return Interval(lo, hi)


def _init_interval(
    init: Optional[ast.Stmt], env: Mapping[str, Interval]
) -> Optional[Interval]:
    if isinstance(init, ast.Decl) and init.init is not None:
        return eval_interval(init.init, env)
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
        if init.expr.op == "=":
            return eval_interval(init.expr.rhs, env)
    return None


def _has_direct_break(body: ast.Stmt) -> bool:
    """A ``break`` that exits *this* loop (not a nested one)."""

    def scan(node: ast.Node) -> bool:
        if isinstance(node, ast.Break):
            return True
        if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
            return False  # break there exits the inner loop
        from repro.cir.visitor import iter_child_nodes

        return any(scan(child) for child in iter_child_nodes(node))

    from repro.cir.visitor import iter_child_nodes

    return any(scan(child) for child in iter_child_nodes(body)) or isinstance(
        body, ast.Break
    )


class _AbstractInterpreter:
    """Flow-sensitive interval interpreter over one function body."""

    def __init__(self, facts: FunctionFacts) -> None:
        self._facts = facts

    # -- condition refinement ------------------------------------------------

    def _refine(self, env: Env, cond: Optional[ast.Expr], branch: bool) -> Env:
        if cond is None or not isinstance(cond, ast.BinOp):
            return dict(env)
        op = cond.op
        if op == "&&" and branch:
            return self._refine(self._refine(env, cond.lhs, True), cond.rhs, True)
        if op == "||" and not branch:
            return self._refine(self._refine(env, cond.lhs, False), cond.rhs, False)
        if op not in _COMPARISONS:
            return dict(env)
        if not branch:
            op = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}[op]
        refined = dict(env)
        self._refine_side(refined, cond.lhs, op, cond.rhs)
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
        self._refine_side(refined, cond.rhs, flipped[op], cond.lhs)
        return refined

    def _refine_side(
        self, env: Env, subject: ast.Expr, op: str, bound_expr: ast.Expr
    ) -> None:
        if not isinstance(subject, ast.Ident):
            return
        bound = eval_interval(bound_expr, env)
        if bound.empty:
            return
        name = subject.name
        current = _env_get(env, name)
        if op == "<" and bound.hi is not None:
            current = current.meet(Interval(None, bound.hi - 1))
        elif op == "<=" and bound.hi is not None:
            current = current.meet(Interval(None, bound.hi))
        elif op == ">" and bound.lo is not None:
            current = current.meet(Interval(bound.lo + 1, None))
        elif op == ">=" and bound.lo is not None:
            current = current.meet(Interval(bound.lo, None))
        elif op == "==":
            current = current.meet(bound)
        if not current.is_top:
            env[name] = current

    # -- side effects --------------------------------------------------------

    def _apply_effect(self, expr: ast.Expr, env: Env) -> Env:
        """Execute the side effect of one expression (step clauses,
        expression statements); unknown effect shapes havoc their
        targets rather than being ignored."""
        env = dict(env)
        if isinstance(expr, ast.Assign):
            env = self._havoc_inner(expr.rhs, env)
            if isinstance(expr.lhs, ast.Ident):
                env[expr.lhs.name] = _assigned_interval(expr, env)
            return env
        if isinstance(expr, ast.UnaryOp) and expr.op in ("++", "--"):
            if isinstance(expr.operand, ast.Ident):
                delta = Interval.const(1 if expr.op == "++" else -1)
                env[expr.operand.name] = _env_get(env, expr.operand.name) + delta
            return env
        if isinstance(expr, ast.BinOp) and expr.op == ",":
            env = self._apply_effect(expr.lhs, env)
            return self._apply_effect(expr.rhs, env)
        return self._havoc_inner(expr, env)

    @staticmethod
    def _havoc_inner(expr: Optional[ast.Expr], env: Env) -> Env:
        """Forget variables mutated by side effects *inside* ``expr``."""
        if expr is None:
            return env
        touched = set()
        for node in walk(expr):
            if isinstance(node, ast.Assign) and isinstance(node.lhs, ast.Ident):
                touched.add(node.lhs.name)
            elif (
                isinstance(node, ast.UnaryOp)
                and node.op in ("++", "--")
                and isinstance(node.operand, ast.Ident)
            ):
                touched.add(node.operand.name)
        if touched:
            env = {name: iv for name, iv in env.items() if name not in touched}
        return env

    # -- statements ----------------------------------------------------------

    def exec_stmt(self, stmt: Optional[ast.Stmt], env: Env) -> Env:
        if stmt is None:
            return env
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                env = self.exec_stmt(child, env)
            return env
        if isinstance(stmt, ast.Decl):
            return self._exec_decl(stmt, env)
        if isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                env = self._exec_decl(decl, env)
            return env
        if isinstance(stmt, ast.ExprStmt):
            return self._apply_effect(stmt.expr, dict(env))
        if isinstance(stmt, ast.If):
            then_env = self.exec_stmt(stmt.then, self._refine(env, stmt.cond, True))
            other_env = self.exec_stmt(stmt.other, self._refine(env, stmt.cond, False))
            return join_envs(then_env, other_env)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt, env)
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            return self._exec_while(stmt, env)
        # Return/Break/Continue/Pragma/EmptyStmt: no binding effect
        return env

    def _exec_decl(self, decl: ast.Decl, env: Env) -> Env:
        env = dict(env)
        if decl.array_dims:
            env.pop(decl.name, None)  # array contents are not tracked
        elif decl.init is not None:
            env[decl.name] = eval_interval(decl.init, env)
        else:
            env.pop(decl.name, None)  # uninitialized: TOP
        return env

    def _exec_for(self, loop: ast.For, env: Env) -> Env:
        env = self.exec_stmt(loop.init, dict(env))
        entry = _normalize_env(dict(env))
        state = dict(entry)
        for iteration in range(_MAX_FIXPOINT_ITERATIONS):
            body_in = self._refine(state, loop.cond, True)
            body_out = self.exec_stmt(loop.body, body_in)
            if loop.step is not None:
                body_out = self._apply_effect(loop.step, body_out)
            joined = join_envs(state, body_out)
            updated = widen_envs(state, joined) if iteration >= 1 else joined
            if updated == state:
                break
            state = updated
        info = LoopInfo(node=loop, depth=0)
        iv = info.induction_variable
        body_env = self._refine(state, loop.cond, True)
        trip = trip_interval(loop, entry)
        self._facts.loops[id(loop)] = LoopFacts(
            entry_env=entry,
            constants={
                name: iv_.constant
                for name, iv_ in entry.items()
                if iv_.is_constant and iv_.constant is not None
            },
            trip=trip,
            iv_range=_env_get(body_env, iv) if iv is not None else None,
            induction=iv,
        )
        if trip is None or trip.hi is None:
            self._facts.resolved = False
        if _has_direct_break(loop.body):
            return _normalize_env(state)
        return _normalize_env(self._refine(state, loop.cond, False))

    def _exec_while(self, loop, env: Env) -> Env:
        self._facts.resolved = False
        state = dict(env)
        for iteration in range(_MAX_FIXPOINT_ITERATIONS):
            body_in = self._refine(state, loop.cond, True)
            body_out = self.exec_stmt(loop.body, body_in)
            joined = join_envs(state, body_out)
            updated = widen_envs(state, joined) if iteration >= 1 else joined
            if updated == state:
                break
            state = updated
        if _has_direct_break(loop.body):
            return _normalize_env(state)
        return _normalize_env(self._refine(state, loop.cond, False))


def analyze_function(
    func: ast.FunctionDef, env: Optional[Mapping[str, int]] = None
) -> FunctionFacts:
    """Interval facts for ``func`` under macro/parameter bindings ``env``."""
    facts = FunctionFacts(function=func.name)
    interpreter = _AbstractInterpreter(facts)
    initial: Env = {
        name: Interval.const(value) for name, value in (env or {}).items()
    }
    facts.exit_env = interpreter.exec_stmt(func.body, initial)
    return facts


def loop_constant_facts(
    func: ast.FunctionDef, env: Optional[Mapping[str, int]] = None
) -> Dict[int, Dict[str, int]]:
    """Locally-constant variables at each loop entry, keyed by ``id(For)``.

    The bridge into :meth:`LoopInfo.trip_count`: a bound like
    ``for (i = 0; i < n; i++)`` where ``n`` was assigned a constant
    earlier in the function resolves through these facts.
    """
    facts = analyze_function(func, env)
    return {key: dict(lf.constants) for key, lf in facts.loops.items()}


# ---------------------------------------------------------------------------
# footprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayFootprint:
    """Accessed extent of one array inside a function or loop nest."""

    array: str
    extents: Tuple[int, ...]
    declared: Tuple[int, ...]

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.extents:
            count *= extent
        return count

    def bytes(self, element_bytes: float = 8.0) -> float:
        return self.element_count * element_bytes


def array_footprints(
    root: ast.Node,
    facts: FunctionFacts,
    env: Optional[Mapping[str, int]] = None,
    declared: Optional[Mapping[str, Tuple[int, ...]]] = None,
) -> Dict[str, ArrayFootprint]:
    """Per-array accessed extents under ``root`` (a function or loop).

    Index expressions are evaluated in an environment that binds every
    induction variable to its inferred range; unbounded dimensions
    fall back to the declared extent (and are clipped by it).
    """
    declared = declared or {}
    index_env: Env = {
        name: Interval.const(value) for name, value in (env or {}).items()
    }
    for info in collect_loops(root):
        loop_facts = facts.loops.get(id(info.node))
        if loop_facts is None or loop_facts.induction is None:
            continue
        iv_range = loop_facts.iv_range
        if iv_range is None or iv_range.empty:
            continue
        existing = index_env.get(loop_facts.induction)
        index_env[loop_facts.induction] = (
            iv_range if existing is None else existing.join(iv_range)
        )
    ranges: Dict[str, List[Interval]] = {}
    for node in walk(root):
        if not (isinstance(node, ast.ArrayRef) and isinstance(node.base, ast.Ident)):
            continue
        name = node.base.name
        dims = [eval_interval(index, index_env) for index in node.indices]
        known = ranges.get(name)
        if known is None or len(known) < len(dims):
            merged = list(dims)
            for position, old in enumerate(known or []):
                merged[position] = merged[position].join(old)
            ranges[name] = merged
        else:
            for position, dim in enumerate(dims):
                known[position] = known[position].join(dim)
    footprints: Dict[str, ArrayFootprint] = {}
    for name, dims in sorted(ranges.items()):
        declared_dims = tuple(declared.get(name, ()))
        extents: List[int] = []
        for position, dim in enumerate(dims):
            limit = (
                declared_dims[position] if position < len(declared_dims) else None
            )
            width = dim.width
            if width is None:
                if limit is None:
                    width = 0  # unknown extent with no declaration: skip
                else:
                    width = limit
            if limit is not None:
                width = min(width, limit)
            extents.append(max(0, width))
        footprints[name] = ArrayFootprint(
            array=name, extents=tuple(extents), declared=declared_dims
        )
    return footprints
