"""Interprocedural analysis over a translation unit.

Builds the call graph of a :class:`~repro.cir.ast.TranslationUnit`
and computes *bottom-up function summaries*: dynamic operation counts
(flops, integer ops, loads/stores) weighted by inferred loop trip
counts, with every resolvable call site expanded by its callee's
summary multiplied by the enclosing loops' trip product.  Triangular
bounds follow the same midpoint convention as the workload profiler
(:mod:`repro.polybench.workload`), so the two characterizations are
directly comparable — the cross-validation the static cost oracle
(:mod:`repro.analysis.cost`) relies on.

Recursive call cycles are detected (Tarjan-free: iterative Kahn
peeling of the condensed graph) and left unexpanded; their summaries
are marked unresolved so downstream consumers stay conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.analysis.intervals import FunctionFacts, analyze_function
from repro.cir import ast
from repro.cir.analysis import (
    LoopInfo,
    collect_loops,
    max_loop_depth,
)
from repro.cir.visitor import iter_child_nodes

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "build_call_graph",
    "summarize_unit",
]


@dataclass(frozen=True)
class CallGraph:
    """Who calls whom inside one translation unit."""

    nodes: Tuple[str, ...]
    edges: Mapping[str, Tuple[str, ...]]
    external: Mapping[str, Tuple[str, ...]]

    def callees(self, name: str) -> Tuple[str, ...]:
        """Defined functions called (directly) by ``name``."""
        return self.edges.get(name, ())

    def callers(self, name: str) -> Tuple[str, ...]:
        return tuple(
            caller for caller in self.nodes if name in self.edges.get(caller, ())
        )

    def external_callees(self, name: str) -> Tuple[str, ...]:
        """Called names with no definition in the unit (libc, math)."""
        return self.external.get(name, ())

    def recursive_functions(self) -> FrozenSet[str]:
        """Functions on a call cycle (including self-recursion)."""
        remaining = {name: set(self.edges.get(name, ())) for name in self.nodes}
        changed = True
        while changed:
            changed = False
            for name in list(remaining):
                if not remaining[name]:
                    del remaining[name]
                    for callees in remaining.values():
                        if name in callees:
                            callees.discard(name)
                            changed = True
                    changed = True
        return frozenset(remaining)

    def bottom_up(self) -> Tuple[str, ...]:
        """Callees before callers; cycle members appear last, in
        definition order."""
        recursive = self.recursive_functions()
        order: List[str] = []
        placed = set(recursive)
        remaining = [name for name in self.nodes if name not in recursive]
        while remaining:
            progressed = False
            for name in list(remaining):
                if all(
                    callee in placed or callee in order
                    for callee in self.edges.get(name, ())
                ):
                    order.append(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:  # pragma: no cover - cycles already peeled
                order.extend(remaining)
                break
        order.extend(name for name in self.nodes if name in recursive)
        return tuple(order)


def build_call_graph(unit: ast.TranslationUnit) -> CallGraph:
    """The direct-call graph of all functions defined in ``unit``."""
    defined = tuple(func.name for func in unit.functions())
    defined_set = set(defined)
    edges: Dict[str, Tuple[str, ...]] = {}
    external: Dict[str, Tuple[str, ...]] = {}
    for func in unit.functions():
        internal: List[str] = []
        outside: List[str] = []
        seen_internal: set = set()
        seen_external: set = set()
        from repro.cir.visitor import walk

        for node in walk(func.body):
            if not (isinstance(node, ast.Call) and node.name):
                continue
            if node.name in defined_set:
                if node.name not in seen_internal:
                    seen_internal.add(node.name)
                    internal.append(node.name)
            elif node.name not in seen_external:
                seen_external.add(node.name)
                outside.append(node.name)
        edges[func.name] = tuple(internal)
        external[func.name] = tuple(outside)
    return CallGraph(nodes=defined, edges=edges, external=external)


@dataclass(frozen=True)
class FunctionSummary:
    """Bottom-up dynamic work estimate for one function.

    Counts are per *call* of the function with loop trips expanded;
    call sites to defined functions add the callee's summary times the
    enclosing trip product.  ``resolved`` is False when any loop trip
    or callee was not statically analyzable — consumers must then
    treat the numbers as lower bounds.
    """

    name: str
    flops: float
    int_ops: float
    loads: float
    stores: float
    branch_ops: float
    call_sites: float
    div_ops: float
    math_calls: float
    max_depth: int
    recursive: bool
    resolved: bool

    @property
    def total_ops(self) -> float:
        return self.flops + self.int_ops + self.loads + self.stores

    @property
    def call_density(self) -> float:
        return self.call_sites / max(1.0, self.total_ops)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "flops": self.flops,
            "int_ops": self.int_ops,
            "loads": self.loads,
            "stores": self.stores,
            "branch_ops": self.branch_ops,
            "call_sites": self.call_sites,
            "div_ops": self.div_ops,
            "math_calls": self.math_calls,
            "max_depth": self.max_depth,
            "recursive": self.recursive,
            "resolved": self.resolved,
        }


@dataclass
class _Accumulator:
    flops: float = 0.0
    int_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branch_ops: float = 0.0
    call_sites: float = 0.0
    div_ops: float = 0.0
    math_calls: float = 0.0
    resolved: bool = True


class _SummaryWalker:
    """Trip-weighted census of one function, callee summaries inlined."""

    def __init__(
        self,
        env: Dict[str, int],
        facts: FunctionFacts,
        loop_infos: Dict[int, LoopInfo],
        summaries: Mapping[str, FunctionSummary],
    ) -> None:
        self._env = env
        self._facts = facts
        self._loop_infos = loop_infos
        self._summaries = summaries
        self.totals = _Accumulator()

    def walk_function(self, func: ast.FunctionDef) -> None:
        body = func.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        for stmt in stmts:
            self._visit(stmt, 1.0, dict(self._env))

    def _visit(self, node: ast.Node, weight: float, env: Dict[str, int]) -> None:
        if isinstance(node, ast.For):
            self._visit_loop(node, weight, env)
            return
        if isinstance(node, (ast.While, ast.DoWhile)):
            self.totals.resolved = False
            for child in iter_child_nodes(node):
                self._visit(child, weight, env)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, weight, env)
            # fall through: arguments may contain loads/arithmetic
        self._count_leaf(node, weight)
        for child in iter_child_nodes(node):
            self._visit(child, weight, env)

    def _visit_loop(self, loop: ast.For, weight: float, env: Dict[str, int]) -> None:
        info = self._loop_infos.get(id(loop)) or LoopInfo(node=loop, depth=0)
        facts = self._facts.constants_at(loop)
        trip = info.trip_count(env, facts)
        if trip is None:
            # triangular bound: bind the enclosing midpoints progressively
            midpoint_env = dict(env)
            midpoint_env.update(facts)
            trip = info.trip_count(midpoint_env)
        if trip is None:
            self.totals.resolved = False
            trip = 1
        trip = max(1, trip)
        # loop-control overhead mirrors the workload profiler: one
        # compare + one increment per iteration
        self.totals.int_ops += weight * trip * 2.0
        body_env = dict(env)
        iv = info.induction_variable
        midpoint = info.midpoint(env, facts)
        if iv is not None and midpoint is not None:
            body_env[iv] = midpoint
        body_weight = weight * trip
        body = loop.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        for stmt in stmts:
            self._visit(stmt, body_weight, body_env)

    def _visit_call(self, call: ast.Call, weight: float, env: Dict[str, int]) -> None:
        self.totals.call_sites += weight
        callee = self._summaries.get(call.name or "")
        if callee is None:
            return
        totals = self.totals
        totals.flops += weight * callee.flops
        totals.int_ops += weight * callee.int_ops
        totals.loads += weight * callee.loads
        totals.stores += weight * callee.stores
        totals.branch_ops += weight * callee.branch_ops
        totals.call_sites += weight * callee.call_sites
        totals.div_ops += weight * callee.div_ops
        totals.math_calls += weight * callee.math_calls
        if not callee.resolved:
            totals.resolved = False

    def _count_leaf(self, node: ast.Node, weight: float) -> None:
        totals = self.totals
        if isinstance(node, ast.Assign):
            if isinstance(node.lhs, ast.ArrayRef):
                totals.stores += weight
                totals.loads -= weight  # the lhs ArrayRef is not a load
            totals.int_ops += weight  # the store/assign op itself
        elif isinstance(node, ast.ArrayRef):
            totals.loads += weight
        elif isinstance(node, ast.BinOp):
            if node.op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||", ","):
                pass
            else:
                if _touches_array(node):
                    totals.flops += weight
                else:
                    totals.int_ops += weight
                if node.op in ("/", "%"):
                    totals.div_ops += weight
        elif isinstance(node, (ast.If, ast.TernaryOp)):
            totals.branch_ops += weight
        elif isinstance(node, ast.Call) and node.name in _MATH_FUNCTIONS:
            totals.math_calls += weight
            totals.flops += weight * 10.0  # a libm call is ~10 flops


_MATH_FUNCTIONS = frozenset(
    {"sqrt", "sqrtf", "pow", "powf", "exp", "expf", "log", "logf", "fabs",
     "fabsf", "sin", "cos", "tan", "fmax", "fmin", "ceil", "floor"}
)


def _touches_array(expr: ast.Expr) -> bool:
    from repro.cir.visitor import walk

    return any(isinstance(node, ast.ArrayRef) for node in walk(expr))


def summarize_unit(
    unit: ast.TranslationUnit,
    env: Optional[Mapping[str, int]] = None,
    graph: Optional[CallGraph] = None,
) -> Dict[str, FunctionSummary]:
    """Bottom-up :class:`FunctionSummary` for every defined function."""
    graph = graph or build_call_graph(unit)
    recursive = graph.recursive_functions()
    env = dict(env or {})
    summaries: Dict[str, FunctionSummary] = {}
    functions = {func.name: func for func in unit.functions()}
    for name in graph.bottom_up():
        func = functions[name]
        facts = analyze_function(func, env)
        loop_infos = {id(info.node): info for info in collect_loops(func.body)}
        walker = _SummaryWalker(env, facts, loop_infos, summaries)
        walker.walk_function(func)
        totals = walker.totals
        is_recursive = name in recursive
        summaries[name] = FunctionSummary(
            name=name,
            flops=max(0.0, totals.flops),
            int_ops=max(0.0, totals.int_ops),
            loads=max(0.0, totals.loads),
            stores=max(0.0, totals.stores),
            branch_ops=max(0.0, totals.branch_ops),
            call_sites=max(0.0, totals.call_sites),
            div_ops=max(0.0, totals.div_ops),
            math_calls=max(0.0, totals.math_calls),
            max_depth=max_loop_depth(func),
            recursive=is_recursive,
            resolved=totals.resolved and facts.resolved and not is_recursive,
        )
    return summaries
