"""``socrates check`` orchestration.

Ties the analyses together for one translation unit or one benchmark
app: render the canonical source with a line map, run the OpenMP race
lint (plus the weave verifier when a
:class:`~repro.lara.weaver.WeavePlan` is available), and filter the
diagnostics through ``#pragma socrates suppress(RULE, ...)``
annotations.

Suppression scopes:

* a suppress pragma attached before a function definition silences
  the listed rules anywhere in that function;
* a suppress pragma inside a block silences them for the next
  statement (and its whole subtree).

Diagnostics are located in the *printed* canonical form of the unit
(``repro.cir`` ASTs carry no original source positions), which is
also exactly what ``socrates weave --source`` and the woven artifacts
show.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import CheckReport, Diagnostic
from repro.analysis.races import check_unit_races
from repro.analysis.weavecheck import verify_weave
from repro.cir import ast, parse
from repro.cir.printer import to_source_with_map
from repro.cir.visitor import walk

_SUPPRESS_RE = re.compile(r"^\s*socrates\s+suppress\s*\(([^)]*)\)\s*$")

_Span = Tuple[FrozenSet[int], FrozenSet[str]]


def parse_suppress_pragma(text: str) -> Optional[FrozenSet[str]]:
    """Rule ids of a ``socrates suppress(...)`` pragma, or None."""
    match = _SUPPRESS_RE.match(text)
    if match is None:
        return None
    return frozenset(
        part.strip().upper() for part in match.group(1).split(",") if part.strip()
    )


def _subtree_ids(node: ast.Node) -> FrozenSet[int]:
    return frozenset(id(child) for child in walk(node))


def collect_suppressions(unit: ast.TranslationUnit) -> List[_Span]:
    """All suppression spans of a unit: (node-id set, rule-id set)."""
    spans: List[_Span] = []
    for func in unit.functions():
        for pragma in func.pragmas:
            rules = parse_suppress_pragma(pragma.text)
            if rules:
                spans.append((_subtree_ids(func) | {id(func)}, rules))
        for node in walk(func.body):
            if not isinstance(node, ast.Block):
                continue
            for index, stmt in enumerate(node.stmts):
                if not isinstance(stmt, ast.Pragma):
                    continue
                rules = parse_suppress_pragma(stmt.text)
                if not rules or index + 1 >= len(node.stmts):
                    continue
                # the span covers the next statement; when that is an
                # (OMP) pragma, extend through it to the statement it
                # controls, so suppressing above a pragma-loop pair works
                ids: set = set()
                position = index + 1
                while position < len(node.stmts) and isinstance(
                    node.stmts[position], ast.Pragma
                ):
                    ids |= _subtree_ids(node.stmts[position])
                    position += 1
                if position < len(node.stmts):
                    ids |= _subtree_ids(node.stmts[position])
                spans.append((frozenset(ids), rules))
    return spans


def apply_suppressions(
    diagnostics: List[Diagnostic], spans: Sequence[_Span]
) -> List[Diagnostic]:
    """Drop diagnostics whose anchor falls inside a matching span."""
    if not spans:
        return diagnostics
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        suppressed = diag.anchor_id is not None and any(
            diag.anchor_id in ids and diag.rule in rules for ids, rules in spans
        )
        if not suppressed:
            kept.append(diag)
    return kept


def check_unit(
    unit: ast.TranslationUnit,
    filename: str,
    phase: str = "pristine",
    plan=None,
) -> List[Diagnostic]:
    """All diagnostics of one translation unit, suppressions applied."""
    from repro.analysis.flagsafety import check_unit_flag_safety

    _, lines = to_source_with_map(unit)
    diagnostics = check_unit_races(unit, filename, lines, phase)
    if phase == "pristine":
        # flag-safety is a property of the original kernel; running it
        # on the woven clones would only repeat each finding per version
        diagnostics.extend(check_unit_flag_safety(unit, filename, lines, phase))
    if plan is not None:
        diagnostics.extend(verify_weave(unit, plan, filename, lines))
    return apply_suppressions(diagnostics, collect_suppressions(unit))


def check_source_text(text: str, filename: str = "<source>") -> List[Diagnostic]:
    """Lint arbitrary C text (parse + race rules)."""
    unit = parse(text, name=filename)
    return check_unit(unit, filename, phase="pristine")


def check_app(app, include_woven: bool = True, configs=None) -> List[Diagnostic]:
    """Lint a benchmark app: the pristine source and its woven output.

    The woven pass weaves with the same compiler-configuration set the
    toolflow uses (standard levels + the paper's custom flags) and
    runs both the race lint and the weave verifier over the result.
    """
    diagnostics = check_unit(app.parse(), filename=f"{app.name}.c", phase="pristine")
    if include_woven:
        from repro.gcc.flags import paper_custom_flags, standard_levels
        from repro.lara.metrics import weave_benchmark

        if configs is None:
            configs = standard_levels() + paper_custom_flags()
        _, weaver = weave_benchmark(app, configs)
        diagnostics.extend(
            check_unit(
                weaver.unit,
                filename=f"{app.name}.weaved.c",
                phase="woven",
                plan=weaver.plan,
            )
        )
    return diagnostics


def check_apps(
    apps: Sequence, include_woven: bool = True, configs=None
) -> CheckReport:
    """Run :func:`check_app` over many apps into one report."""
    report = CheckReport()
    for app in apps:
        units = 2 if include_woven else 1
        report.extend(
            check_app(app, include_woven=include_woven, configs=configs),
            units=units,
        )
    return report
