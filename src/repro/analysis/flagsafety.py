"""Flag-safety analysis (rules FPS201-FPS204).

Detects the code shapes that make aggressive compiler-flag versions
unsafe or pointless, per kernel:

* **FPS201** — an innermost loop performs a non-associative
  floating-point reduction; ``-funsafe-math-optimizations`` versions
  reassociate it and change the rounding (the exact gate the compiler
  model applies in :func:`repro.gcc.passes.finalize_vectorization`);
* **FPS202** — a parallel loop carries an array dependence through
  shifted subscripts; reordering/vectorizing flag versions are unsafe;
* **FPS203** — a call-dense loop where ``-fno-inline`` versions only
  pessimize;
* **FPS204** — the interprocedural variant of FPS201: a callee
  reachable from a loop contains an FP reduction, so the caller's
  fast-math versions inherit the hazard (propagated bottom-up over
  the :class:`~repro.analysis.interproc.CallGraph`).

Besides diagnostics, the module renders a :class:`FlagSafetyVerdict`
per unit — the machine-readable half consumed by
:func:`repro.analysis.cost.build_prune_plan` and the COBAYN corpus
builder to exclude unsafe/pointless flag configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.interproc import build_call_graph
from repro.analysis.rules import RULES
from repro.cir import ast
from repro.cir.analysis import LoopInfo, census, collect_loops
from repro.cir.printer import SourceMap
from repro.polybench.workload import (
    _has_loop_carried_dependence,
    _is_reduction_loop,
)

__all__ = [
    "FlagSafetyVerdict",
    "check_unit_flag_safety",
    "flag_safety_verdict",
    "unsafe_config_labels",
]

#: Calls per body operation above which a loop counts as call-dense.
CALL_DENSE_THRESHOLD = 0.02


def _line(lines: Optional[SourceMap], node: ast.Node) -> Optional[int]:
    return lines.line_of(node) if lines is not None else None


def _diagnose(
    rule: str,
    message: str,
    *,
    filename: str,
    function: Optional[str],
    node: ast.Node,
    lines: Optional[SourceMap],
    phase: str,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=RULES[rule].severity,
        message=message,
        file=filename,
        function=function,
        line=_line(lines, node),
        hint=hint,
        phase=phase,
        anchor_id=id(node),
    )


def _fp_reduction_loops(func: ast.FunctionDef) -> List[LoopInfo]:
    """Innermost loops that accumulate into an iv-invariant location."""
    found = []
    for info in collect_loops(func.body):
        if info.children:
            continue
        iv = info.induction_variable
        if iv is not None and _is_reduction_loop(info.node, iv):
            found.append(info)
    return found


def _dependent_loops(func: ast.FunctionDef) -> List[LoopInfo]:
    """Outermost loops whose body carries a shifted-subscript dependence."""
    found = []
    for info in collect_loops(func.body):
        if info.parent is not None:
            continue
        iv = info.induction_variable
        if iv is not None and _has_loop_carried_dependence(info.node, iv):
            found.append(info)
    return found


def _call_dense_loops(
    func: ast.FunctionDef, defined: Set[str]
) -> List[Tuple[LoopInfo, float]]:
    """Innermost loops whose call density crosses the threshold.

    Only calls to functions *defined in the unit* count: those are the
    ones the inliner could have absorbed, so only they make
    ``-fno-inline`` versions pessimizing.
    """
    from repro.cir.visitor import walk

    found = []
    for info in collect_loops(func.body):
        if info.children:
            continue
        body_census = census(info.node.body)
        calls = sum(
            1
            for node in walk(info.node.body)
            if isinstance(node, ast.Call) and node.name in defined
        )
        total = max(1, body_census.total_ops)
        density = calls / total
        if calls and density >= CALL_DENSE_THRESHOLD:
            found.append((info, density))
    return found


def _reduction_carriers(unit: ast.TranslationUnit) -> Set[str]:
    """Functions containing (or transitively calling into) an FP
    reduction, propagated bottom-up over the call graph."""
    graph = build_call_graph(unit)
    functions = {func.name: func for func in unit.functions()}
    carriers: Set[str] = set()
    for name in graph.bottom_up():
        func = functions[name]
        if _fp_reduction_loops(func):
            carriers.add(name)
        elif any(callee in carriers for callee in graph.callees(name)):
            carriers.add(name)
    return carriers


def check_unit_flag_safety(
    unit: ast.TranslationUnit,
    filename: str,
    lines: Optional[SourceMap] = None,
    phase: str = "pristine",
) -> List[Diagnostic]:
    """All FPS2xx diagnostics of one translation unit."""
    diagnostics: List[Diagnostic] = []
    defined = {func.name for func in unit.functions()}
    carriers = _reduction_carriers(unit)
    graph = build_call_graph(unit)
    from repro.cir.visitor import walk

    for func in unit.functions():
        own_reductions = _fp_reduction_loops(func)
        for info in own_reductions:
            iv = info.induction_variable
            diagnostics.append(
                _diagnose(
                    "FPS201",
                    f"innermost loop over {iv!r} accumulates a floating-point "
                    f"reduction; fast-math versions reassociate it",
                    filename=filename,
                    function=func.name,
                    node=info.node,
                    lines=lines,
                    phase=phase,
                    hint=(
                        "results of -funsafe-math-optimizations versions "
                        "differ bitwise; keep them out of the lattice, or "
                        "suppress with '#pragma socrates suppress(FPS201)' "
                        "if the kernel tolerates reassociated rounding"
                    ),
                )
            )
        for info in _dependent_loops(func):
            iv = info.induction_variable
            diagnostics.append(
                _diagnose(
                    "FPS202",
                    f"loop over {iv!r} reads elements written by other "
                    f"iterations (shifted subscript): reordering flag "
                    f"versions are unsafe",
                    filename=filename,
                    function=func.name,
                    node=info.node,
                    lines=lines,
                    phase=phase,
                    hint=(
                        "vectorizing/reassociating flag versions cannot be "
                        "applied to this nest; aggressive lattice points are "
                        "wasted evaluations here"
                    ),
                )
            )
        for info, density in _call_dense_loops(func, defined):
            diagnostics.append(
                _diagnose(
                    "FPS203",
                    f"loop body is call-dense ({density:.0%} of operations "
                    f"are calls): -fno-inline versions pessimize it",
                    filename=filename,
                    function=func.name,
                    node=info.node,
                    lines=lines,
                    phase=phase,
                    hint=(
                        "drop -fno-inline configurations from this kernel's "
                        "flag lattice; they keep every call out-of-line"
                    ),
                )
            )
        # interprocedural: a loop calling into a reduction carrier
        if func.name in carriers and not own_reductions:
            flagged: Set[int] = set()
            for info in collect_loops(func.body):
                for node in walk(info.node.body):
                    if (
                        isinstance(node, ast.Call)
                        and node.name in carriers
                        and node.name in graph.callees(func.name)
                        and id(info.node) not in flagged
                    ):
                        flagged.add(id(info.node))
                        diagnostics.append(
                            _diagnose(
                                "FPS204",
                                f"call to {node.name!r} reaches a floating-"
                                f"point reduction: fast-math versions of "
                                f"this loop inherit the hazard",
                                filename=filename,
                                function=func.name,
                                node=info.node,
                                lines=lines,
                                phase=phase,
                                hint=(
                                    "the callee's reduction makes "
                                    "reassociating flags unsafe here too; "
                                    "treat this nest like FPS201"
                                ),
                            )
                        )
                        break
    return diagnostics


@dataclass(frozen=True)
class FlagSafetyVerdict:
    """Machine-readable flag-safety outcome for one translation unit.

    ``unsafe_flags`` are :class:`repro.gcc.flags.Flag` names whose
    versions change results (fast-math on reductions/dependences);
    ``pointless_flags`` are names whose versions cannot help (no-inline
    with no inlinable calls, or call-dense bodies).  Rule ids record
    *why* for the audit trail.
    """

    unsafe_flags: Tuple[str, ...]
    pointless_flags: Tuple[str, ...]
    rules: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "unsafe_flags": list(self.unsafe_flags),
            "pointless_flags": list(self.pointless_flags),
            "rules": list(self.rules),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlagSafetyVerdict":
        return cls(
            unsafe_flags=tuple(data.get("unsafe_flags", ())),  # type: ignore[arg-type]
            pointless_flags=tuple(data.get("pointless_flags", ())),  # type: ignore[arg-type]
            rules=tuple(data.get("rules", ())),  # type: ignore[arg-type]
        )


def flag_safety_verdict(
    unit: ast.TranslationUnit, kernel: Optional[str] = None
) -> FlagSafetyVerdict:
    """Summarize FPS verdicts for ``kernel`` (or the whole unit)."""
    functions = (
        [unit.function(kernel)] if kernel is not None else list(unit.functions())
    )
    carriers = _reduction_carriers(unit)
    defined = {func.name for func in unit.functions()}
    unsafe: List[str] = []
    pointless: List[str] = []
    rules: List[str] = []
    for func in functions:
        if func is None:
            continue
        if _fp_reduction_loops(func) or func.name in carriers:
            if "UNSAFE_MATH" not in unsafe:
                unsafe.append("UNSAFE_MATH")
            rule = "FPS201" if _fp_reduction_loops(func) else "FPS204"
            if rule not in rules:
                rules.append(rule)
        if _dependent_loops(func):
            if "UNSAFE_MATH" not in unsafe:
                unsafe.append("UNSAFE_MATH")
            if "FPS202" not in rules:
                rules.append("FPS202")
        if _call_dense_loops(func, defined):
            if "NO_INLINE_FUNCTIONS" not in pointless:
                pointless.append("NO_INLINE_FUNCTIONS")
            if "FPS203" not in rules:
                rules.append("FPS203")
    return FlagSafetyVerdict(
        unsafe_flags=tuple(unsafe),
        pointless_flags=tuple(pointless),
        rules=tuple(rules),
    )


def unsafe_config_labels(
    verdict: FlagSafetyVerdict, configs: Sequence
) -> Tuple[str, ...]:
    """Labels of flag configurations carrying an unsafe flag."""
    from repro.gcc.flags import Flag

    unsafe = {Flag[name] for name in verdict.unsafe_flags if name in Flag.__members__}
    if not unsafe:
        return ()
    return tuple(
        config.label
        for config in configs
        if any(config.has(flag) for flag in unsafe)
    )
