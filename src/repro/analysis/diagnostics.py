"""Structured diagnostics for ``socrates check``.

A :class:`Diagnostic` carries a rule id, a severity, a location in
the *printed* canonical source (file/function/line) and a fix hint;
a :class:`CheckReport` aggregates them across units and knows the
exit-code contract (0 clean / 2 warnings-only / 3 errors, mirroring
the bench gate's convention) plus the JSON and SARIF 2.1.0
renderings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

EXIT_CLEAN = 0
EXIT_WARNINGS = 2
EXIT_ERRORS = 3

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"

    @property
    def sarif_level(self) -> str:
        return self.value


@dataclass
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str
    severity: Severity
    message: str
    file: str
    function: Optional[str] = None
    line: Optional[int] = None
    hint: Optional[str] = None
    phase: str = "pristine"  # or "woven"
    anchor_id: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def location(self) -> str:
        place = f"{self.file}:{self.line}" if self.line else self.file
        if self.function:
            place += f" ({self.function})"
        return place

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "function": self.function,
            "line": self.line,
            "hint": self.hint,
            "phase": self.phase,
        }

    def format(self) -> str:
        text = f"{self.location}: {self.severity.value}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text


@dataclass
class CheckReport:
    """Aggregated diagnostics of one ``socrates check`` invocation."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    units_checked: int = 0

    def extend(self, diagnostics: List[Diagnostic], units: int = 0) -> None:
        self.diagnostics.extend(diagnostics)
        self.units_checked += units

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """0 clean / 2 warnings-only / 3 any error."""
        if self.errors:
            return EXIT_ERRORS
        if self.warnings:
            return EXIT_WARNINGS
        return EXIT_CLEAN

    def summary(self) -> str:
        return (
            f"socrates check: {self.units_checked} unit(s), "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": 1,
            "units_checked": self.units_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "exit_code": self.exit_code,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def as_sarif(self) -> Dict[str, object]:
        """Render as a SARIF 2.1.0 document (one run, one driver).

        The driver embeds the *complete* rule catalogue (sorted by id)
        so code-scanning UIs can show metadata even for rules that did
        not fire, and every result carries its ``ruleIndex`` into that
        catalogue plus a stable partial fingerprint
        (``socratesCheck/v1``) for alert deduplication across runs.
        The fingerprint hashes rule, file, function, phase and message
        — deliberately *not* the line number, so unrelated edits that
        shift the printed source do not resurrect dismissed alerts —
        and appends an ordinal to disambiguate identical findings.
        """
        import hashlib

        from repro.analysis.rules import RULES

        catalogue = sorted(RULES)
        extra = sorted({d.rule for d in self.diagnostics} - set(catalogue))
        rule_index = {rule_id: i for i, rule_id in enumerate(catalogue + extra)}
        rules = []
        for rule_id in catalogue + extra:
            rule = RULES.get(rule_id)
            entry: Dict[str, object] = {"id": rule_id}
            if rule is not None:
                entry["shortDescription"] = {"text": rule.summary}
                entry["fullDescription"] = {"text": rule.description}
                entry["defaultConfiguration"] = {
                    "level": rule.severity.sarif_level
                }
            rules.append(entry)
        results = []
        fingerprint_ordinals: Dict[str, int] = {}
        for diag in self.diagnostics:
            location: Dict[str, object] = {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.file},
                    "region": {"startLine": diag.line or 1},
                }
            }
            if diag.function:
                location["logicalLocations"] = [
                    {"name": diag.function, "kind": "function"}
                ]
            message = diag.message
            if diag.hint:
                message += f" Hint: {diag.hint}"
            identity = "|".join(
                (diag.rule, diag.file, diag.function or "", diag.phase, diag.message)
            )
            digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:32]
            ordinal = fingerprint_ordinals.get(digest, 0)
            fingerprint_ordinals[digest] = ordinal + 1
            results.append(
                {
                    "ruleId": diag.rule,
                    "ruleIndex": rule_index[diag.rule],
                    "level": diag.severity.sarif_level,
                    "message": {"text": message},
                    "locations": [location],
                    "partialFingerprints": {
                        "socratesCheck/v1": f"{digest}:{ordinal}"
                    },
                    "properties": {"phase": diag.phase},
                }
            )
        return {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "socrates-check",
                            "informationUri": "https://github.com/",
                            "version": "1.0.0",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
