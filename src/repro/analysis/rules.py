"""The ``socrates check`` rule catalogue.

Three families:

* ``OMP0xx`` — OpenMP data-race lint over ``#pragma omp parallel
  for`` regions (applies to pristine and woven sources alike);
* ``WV1xx`` — weave-verifier structural checks over ``Weaver``
  output (woven sources only; all error severity, because a
  violation corrupts every downstream DSE point);
* ``FPS2xx`` — flag-safety analysis (pristine sources only): code
  shapes that make aggressive compiler-flag versions unsafe
  (fast-math reassociation of FP reductions, reordering of
  alias-dependent loops) or pointless (no-inline in call-dense
  regions).  These verdicts also feed the static
  :class:`~repro.analysis.cost.PrunePlan` that masks lattice points
  before the DSE runs.

The catalogue is what ``docs/static_analysis.md`` documents and what
the SARIF export embeds as the driver's rule metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """One check: stable id, default severity, documentation."""

    id: str
    severity: Severity
    summary: str
    description: str


_RULE_LIST = [
    Rule(
        id="OMP001",
        severity=Severity.ERROR,
        summary="shared scalar written inside a parallel loop",
        description=(
            "A scalar that is neither privatized by a clause, a reduction "
            "variable, the parallel induction variable, nor declared inside "
            "the region is written by every thread: a data race."
        ),
    ),
    Rule(
        id="OMP002",
        severity=Severity.WARNING,
        summary="shared array written without an induction-indexed subscript",
        description=(
            "A shared array is written through subscripts that never mention "
            "the parallel induction variable, so distinct iterations may "
            "write the same element."
        ),
    ),
    Rule(
        id="OMP003",
        severity=Severity.WARNING,
        summary="parallel-for pragma does not control an analyzable for loop",
        description=(
            "The statement following '#pragma omp parallel for' is not a "
            "'for' loop the analyzer can associate with the pragma."
        ),
    ),
    Rule(
        id="OMP004",
        severity=Severity.WARNING,
        summary="parallel loop induction variable not recognized",
        description=(
            "The controlled loop's init is not a simple declaration or "
            "assignment, so the sharing classification cannot run."
        ),
    ),
    Rule(
        id="WV101",
        severity=Severity.ERROR,
        summary="dispatch wrapper does not cover the version list",
        description=(
            "The wrapper's dispatch arms must call exactly the cloned "
            "versions recorded in the weave plan, one arm per VersionSpec."
        ),
    ),
    Rule(
        id="WV102",
        severity=Severity.ERROR,
        summary="dispatch wrapper lacks a safe default arm",
        description=(
            "The final arm of the wrapper must call a version "
            "unconditionally, so out-of-range control values still compute."
        ),
    ),
    Rule(
        id="WV103",
        severity=Severity.ERROR,
        summary="cloned version carries inconsistent pragmas",
        description=(
            "Every clone must carry the GCC optimize pragma of its "
            "FlagConfiguration and rewrite each parallel-for pragma with "
            "num_threads(__socrates_num_threads) and the proc_bind policy "
            "of its VersionSpec."
        ),
    ),
    Rule(
        id="WV104",
        severity=Severity.ERROR,
        summary="original call site not rewritten to the wrapper",
        description=(
            "Outside the clones and the wrapper itself, no call to the "
            "original kernel may survive weaving."
        ),
    ),
    Rule(
        id="WV105",
        severity=Severity.ERROR,
        summary="control variable not declared exactly once",
        description=(
            "__socrates_version and __socrates_num_threads must each be "
            "declared exactly once at file scope."
        ),
    ),
    Rule(
        id="WV106",
        severity=Severity.ERROR,
        summary="mARGOt weave points missing or misordered",
        description=(
            "margot.h must be included, margot_init() must be the first "
            "statement of main(), and every wrapper call must be surrounded "
            "by margot_update/margot_start_monitor before and "
            "margot_stop_monitor/margot_log after, in that order."
        ),
    ),
    Rule(
        id="FPS201",
        severity=Severity.WARNING,
        summary="non-associative floating-point reduction",
        description=(
            "An innermost loop accumulates floating-point values into a "
            "location invariant in its own induction variable.  Fast-math "
            "flag versions (-funsafe-math-optimizations) reassociate the "
            "sum and change the rounding, so their results differ bitwise "
            "from the strict-IEEE versions."
        ),
    ),
    Rule(
        id="FPS202",
        severity=Severity.WARNING,
        summary="loop-carried array dependence constrains reordering flags",
        description=(
            "A parallel loop reads array elements produced by other "
            "iterations (shifted subscripts).  Flag versions that reorder "
            "or vectorize iterations are unsafe for this loop; the "
            "compiler model refuses to vectorize it at any level."
        ),
    ),
    Rule(
        id="FPS203",
        severity=Severity.WARNING,
        summary="call-dense loop makes -fno-inline versions pessimizing",
        description=(
            "A loop body spends a significant fraction of its operations "
            "on function calls.  Cloning it with -fno-inline keeps every "
            "call out-of-line and slows the region down; such flag "
            "versions are pointless members of the autotuning lattice."
        ),
    ),
    Rule(
        id="FPS204",
        severity=Severity.WARNING,
        summary="callee constrains flag safety interprocedurally",
        description=(
            "A function called from this loop contains a non-associative "
            "floating-point reduction, so fast-math flag versions of the "
            "caller inherit the bitwise-result hazard even though the "
            "caller's own loops look safe."
        ),
    ),
]

#: Rule registry keyed by id.
RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}
