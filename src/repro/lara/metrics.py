"""Table I metrics: Att, Act, O-LOC, W-LOC, D-LOC, Bloat.

``weave_benchmark`` runs both strategies on one benchmark and measures
everything the paper's Table I reports:

* **Att** — attributes checked on the source (join-point reads);
* **Act** — actions performed on the code (weaver mutations);
* **O-LOC / W-LOC / D-LOC** — logical lines of the original and weaved
  translation units and their difference;
* **Bloat** — D-LOC divided by the logical LOC of the strategy
  implementation itself (Lopes & Kiczales' metric: how many lines of C
  are generated per line of aspect code).  The paper's complete LARA
  strategy is 265 logical lines; ours is *measured* from the strategy
  sources with :func:`strategy_loc`.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.cir import logical_lines, to_source
from repro.gcc.flags import FlagConfiguration
from repro.lara.strategies.autotuner import AutotunerStrategy
from repro.lara.strategies.multiversioning import MultiversioningStrategy, VersionSpec
from repro.lara.weaver import WeavePlan, Weaver
from repro.machine.openmp import BindingPolicy
from repro.polybench.apps.base import BenchmarkApp


@dataclass(frozen=True)
class WeavingReport:
    """One row of Table I."""

    benchmark: str
    attributes: int
    actions: int
    original_loc: int
    weaved_loc: int
    strategy_lines: int

    @property
    def delta_loc(self) -> int:
        return self.weaved_loc - self.original_loc

    @property
    def bloat(self) -> float:
        return self.delta_loc / self.strategy_lines if self.strategy_lines else 0.0


def python_logical_lines(source: str) -> int:
    """Logical lines of Python code: statements, excluding comments,
    blank lines and docstrings (measured via the token stream)."""
    lines = set()
    docstring_candidates = set()
    previous_significant = None
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if token.type == tokenize.STRING and previous_significant in (None, ":", "NEWLINE"):
            # module/class/function docstring: spans its own lines
            for line in range(token.start[0], token.end[0] + 1):
                docstring_candidates.add(line)
            previous_significant = "NEWLINE"
            continue
        for line in range(token.start[0], token.end[0] + 1):
            lines.add(line)
        previous_significant = token.string if token.type == tokenize.OP else "tok"
    return len(lines - docstring_candidates)


def strategy_loc(extra_modules: Sequence[str] = ()) -> int:
    """Measured logical LOC of the strategy implementation sources.

    This is the denominator of the Bloat metric — the analogue of the
    paper's "265 logical lines of LARA strategy code".
    """
    import repro.lara.strategies.autotuner as autotuner_module
    import repro.lara.strategies.multiversioning as multiversioning_module

    total = 0
    modules = [multiversioning_module, autotuner_module]
    for module in modules:
        source = Path(module.__file__).read_text()
        total += python_logical_lines(source)
    for path in extra_modules:
        total += python_logical_lines(Path(path).read_text())
    return total


def default_versions(
    compiler_configs: Sequence[FlagConfiguration],
) -> List[VersionSpec]:
    """The paper's version set: every CF crossed with both bindings."""
    return [
        VersionSpec(compiler=config, binding=binding)
        for config in compiler_configs
        for binding in (BindingPolicy.CLOSE, BindingPolicy.SPREAD)
    ]


def weave_benchmark(
    app: BenchmarkApp,
    compiler_configs: Sequence[FlagConfiguration],
    strategy_lines: Optional[int] = None,
) -> "tuple[WeavingReport, Weaver]":
    """Run Multiversioning + Autotuner on ``app`` and measure Table I.

    Returns the report and the weaver (whose unit holds the final
    adaptive source, printable with :func:`repro.cir.to_source`).
    """
    unit = app.parse()
    original_loc = logical_lines(unit)
    weaver = Weaver(unit)

    multiversioning = MultiversioningStrategy(default_versions(compiler_configs))
    mv_results = multiversioning.apply(weaver, list(app.kernels))

    autotuner = AutotunerStrategy()
    autotuner.apply(weaver, [result.wrapper for result in mv_results.values()])
    weaver.plan = WeavePlan(kernels=list(mv_results.values()))

    weaved_loc = logical_lines(weaver.unit)
    lines = strategy_lines if strategy_lines is not None else strategy_loc()
    report = WeavingReport(
        benchmark=app.name,
        attributes=weaver.metrics.attributes_checked,
        actions=weaver.metrics.actions_performed,
        original_loc=original_loc,
        weaved_loc=weaved_loc,
        strategy_lines=lines,
    )
    return report, weaver
