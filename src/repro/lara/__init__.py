"""LARA-style aspect weaving over the CIR.

The paper uses the LARA aspect-oriented language (woven by the MANET
source-to-source compiler) to keep extra-functional concerns out of
the application source.  This package reproduces that machinery:

* :mod:`repro.lara.joinpoint` — the join-point model: typed views on
  AST nodes whose every attribute read is *counted* (the paper's Att
  metric);
* :mod:`repro.lara.weaver` — the weaver: all code transformations go
  through its action methods, which are also counted (Act);
* :mod:`repro.lara.strategies` — the two strategies of the paper,
  **Multiversioning** (clone kernels per compiler/binding version,
  generate the dispatch wrapper, rewrite call sites) and **Autotuner**
  (weave the mARGOt API around the wrapper);
* :mod:`repro.lara.metrics` — Table I's report: Att, Act, O-LOC,
  W-LOC, D-LOC and the Bloat ratio.
"""

from repro.lara.joinpoint import CallJp, FunctionJp, LoopJp, PragmaJp
from repro.lara.metrics import WeavingReport, strategy_loc, weave_benchmark
from repro.lara.strategies.autotuner import AutotunerStrategy
from repro.lara.strategies.instrumentation import TimingInstrumentation
from repro.lara.strategies.multiversioning import MultiversioningStrategy, VersionSpec
from repro.lara.weaver import Weaver

__all__ = [
    "AutotunerStrategy",
    "TimingInstrumentation",
    "CallJp",
    "FunctionJp",
    "LoopJp",
    "MultiversioningStrategy",
    "PragmaJp",
    "VersionSpec",
    "Weaver",
    "WeavingReport",
    "strategy_loc",
    "weave_benchmark",
]
