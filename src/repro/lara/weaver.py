"""The source-to-source weaver (the MANET role in the paper).

All reads go through join-point attributes (counted as **Att**), all
mutations go through the weaver's action methods (counted as **Act**:
"code insertions, cloning and pragma insertion").  The weaver owns a
translation unit and transforms it in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cir import (
    Block,
    Call,
    Decl,
    ExprStmt,
    FunctionDef,
    Ident,
    Include,
    Node,
    Pragma,
    Stmt,
    TranslationUnit,
    walk,
)
from repro.cir.visitor import iter_child_nodes
from repro.lara.joinpoint import CallJp, FunctionJp


@dataclass
class WeavingMetrics:
    """The Att / Act counters of one weaving run."""

    attributes_checked: int = 0
    actions_performed: int = 0


@dataclass
class WeavePlan:
    """What a full weaving run promised to produce.

    ``kernels`` holds one
    :class:`~repro.lara.strategies.multiversioning.MultiversioningResult`
    per woven kernel; ``main`` names the entry function the Autotuner
    strategy instrumented.  The weave verifier
    (:mod:`repro.analysis.weavecheck`) checks the woven unit against
    this plan.
    """

    kernels: List[object] = field(default_factory=list)
    main: str = "main"

    @property
    def wrappers(self) -> List[str]:
        return [result.wrapper for result in self.kernels]


class WeaveError(RuntimeError):
    """Raised when a strategy asks for an impossible transformation."""


class Weaver:
    """Transforms one translation unit under metric accounting."""

    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit
        self.metrics = WeavingMetrics()
        #: Set by full weaving runs (see :func:`repro.lara.metrics.weave_benchmark`).
        self.plan: Optional[WeavePlan] = None

    # -- metric hooks ---------------------------------------------------------

    def count_attribute(self) -> None:
        self.metrics.attributes_checked += 1

    def count_action(self) -> None:
        self.metrics.actions_performed += 1

    # -- selections -----------------------------------------------------------

    def select_functions(self) -> List[FunctionJp]:
        """All function definitions of the unit, as join points."""
        return [FunctionJp(self, func) for func in self.unit.functions()]

    def select_function(self, name: str) -> FunctionJp:
        for jp in self.select_functions():
            if jp.attr("name") == name:
                return jp
        raise WeaveError(f"no function named {name!r}")

    def select_calls_to(self, callee: str) -> List[CallJp]:
        """Every call expression targeting ``callee`` anywhere in the unit."""
        result: List[CallJp] = []
        for func in self.unit.functions():
            for node in walk(func.body):
                if isinstance(node, Call):
                    jp = CallJp(self, node)
                    if jp.attr("name") == callee:
                        result.append(jp)
        return result

    # -- actions ------------------------------------------------------------------

    def insert_include(self, target: str, system: bool = False) -> None:
        """Add an ``#include`` after the last existing include."""
        self.count_action()
        existing = [
            index
            for index, decl in enumerate(self.unit.decls)
            if isinstance(decl, Include)
        ]
        if any(
            isinstance(decl, Include) and decl.target == target
            for decl in self.unit.decls
        ):
            return
        position = existing[-1] + 1 if existing else 0
        self.unit.decls.insert(position, Include(target=target, system=system))

    def insert_global(self, decl: Decl, before_function: Optional[str] = None) -> None:
        """Insert a file-scope declaration before the first function
        (or before ``before_function``)."""
        self.count_action()
        position = len(self.unit.decls)
        for index, node in enumerate(self.unit.decls):
            if isinstance(node, FunctionDef) and (
                before_function is None or node.name == before_function
            ):
                position = index
                break
        self.unit.decls.insert(position, decl)

    def clone_function(self, source: FunctionJp, new_name: str) -> FunctionJp:
        """Duplicate a function definition under ``new_name``.

        The clone is inserted right after the original, preserving
        file order (original first, versions after).
        """
        self.count_action()
        original = source.node
        clone = original.clone()
        clone.name = new_name
        try:
            index = self.unit.decls.index(original)
        except ValueError:
            raise WeaveError(f"function {original.name!r} not in unit")
        insert_at = index + 1
        while insert_at < len(self.unit.decls) and isinstance(
            self.unit.decls[insert_at], FunctionDef
        ) and self.unit.decls[insert_at].name.startswith(original.name + "__"):
            insert_at += 1
        self.unit.decls.insert(insert_at, clone)
        return FunctionJp(self, clone)

    def insert_function(self, func: FunctionDef, after: Optional[str] = None) -> FunctionJp:
        """Insert a brand-new function definition (e.g. the wrapper)."""
        self.count_action()
        position = len(self.unit.decls)
        if after is not None:
            for index, node in enumerate(self.unit.decls):
                if isinstance(node, FunctionDef) and node.name == after:
                    position = index + 1
        self.unit.decls.insert(position, func)
        return FunctionJp(self, func)

    def attach_pragma(self, func: FunctionJp, text: str) -> None:
        """Attach a ``#pragma`` line immediately before a function."""
        self.count_action()
        func.node.pragmas.append(Pragma(text=text))

    def rewrite_pragma(self, pragma: Pragma, new_text: str) -> None:
        """Replace the text of an existing pragma statement."""
        self.count_action()
        pragma.text = new_text

    def rename_call(self, call: CallJp, new_name: str) -> None:
        """Retarget a call expression to a different function."""
        self.count_action()
        if not isinstance(call.node.func, Ident):
            raise WeaveError("cannot rename an indirect call")
        call.node.func = Ident(name=new_name)

    def insert_statement_before(self, func: FunctionDef, anchor: Stmt, stmt: Stmt) -> None:
        """Insert ``stmt`` directly before ``anchor`` inside ``func``."""
        self.count_action()
        block = self._owning_block(func, anchor)
        index = block.stmts.index(anchor)
        block.stmts.insert(index, stmt)

    def insert_statement_after(self, func: FunctionDef, anchor: Stmt, stmt: Stmt) -> None:
        """Insert ``stmt`` directly after ``anchor`` inside ``func``."""
        self.count_action()
        block = self._owning_block(func, anchor)
        index = block.stmts.index(anchor)
        block.stmts.insert(index + 1, stmt)

    def insert_at_function_entry(self, func: FunctionDef, stmt: Stmt) -> None:
        """Insert ``stmt`` as the first statement of ``func``."""
        self.count_action()
        func.body.stmts.insert(0, stmt)

    def leading_pragma(self, func: FunctionDef, anchor: Stmt) -> Optional[Pragma]:
        """The OMP pragma directly preceding ``anchor``, if any.

        Insertions *before* a pragma-controlled statement must go above
        the pragma, or the pragma would bind to the inserted statement.
        Read-only navigation (not metered).
        """
        block = self._owning_block(func, anchor)
        index = block.stmts.index(anchor)
        if index > 0 and isinstance(block.stmts[index - 1], Pragma):
            pragma = block.stmts[index - 1]
            if pragma.is_omp:
                return pragma
        return None

    def statement_containing_call(self, func: FunctionDef, call: Call) -> Stmt:
        """The direct statement of ``func`` whose subtree holds ``call``.

        Read-only navigation (not metered as an action).
        """
        found = self._find_statement(func.body, call)
        if found is None:
            raise WeaveError("call not found in function body")
        return found

    # -- internals ----------------------------------------------------------------

    def _owning_block(self, func: FunctionDef, anchor: Stmt) -> Block:
        from repro.cir import DoWhile, For, If, While

        for node in walk(func.body):
            if isinstance(node, Block) and anchor in node.stmts:
                return node
        # the anchor may be the brace-less body of a control statement:
        # promote that body to a block so siblings can be inserted
        for node in walk(func.body):
            if isinstance(node, (For, While, DoWhile)) and node.body is anchor:
                node.body = Block(stmts=[anchor])
                return node.body
            if isinstance(node, If):
                if node.then is anchor:
                    node.then = Block(stmts=[anchor])
                    return node.then
                if node.other is anchor:
                    node.other = Block(stmts=[anchor])
                    return node.other
        raise WeaveError("anchor statement not found in function")

    def _find_statement(self, block: Block, call: Call) -> Optional[Stmt]:
        for stmt in block.stmts:
            if any(node is call for node in walk(stmt)):
                if isinstance(stmt, Block):
                    inner = self._find_statement(stmt, call)
                    return inner if inner is not None else stmt
                return stmt
        return None
