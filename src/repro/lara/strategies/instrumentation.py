"""A timing-instrumentation strategy (the classic LARA use-case).

Cardoso et al.'s LARA papers motivate aspect weaving with
performance-instrumentation strategies: measure every hot loop or
call without touching the functional source.  This strategy weaves
``omp_get_wtime()``-based timers around selected join points:

.. code-block:: c

    double __socrates_timer_3 = omp_get_wtime();
    for (i = 0; i < n; i++) ...
    fprintf(stderr, "timer loop:3 %f\\n", omp_get_wtime() - __socrates_timer_3);

It is independent of Multiversioning/Autotuner and exercised both as a
standalone tool (profiling a plain benchmark) and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cir import (
    Assign,
    BinOp,
    Block,
    Call,
    Decl,
    ExprStmt,
    For,
    FunctionDef,
    Ident,
    StringLit,
    Type,
)
from repro.lara.weaver import Weaver

TIMER_PREFIX = "__socrates_timer_"


@dataclass
class InstrumentationResult:
    """What the strategy instrumented."""

    function: str
    instrumented_loops: int
    instrumented_calls: int


class TimingInstrumentation:
    """Weave wall-clock timers around loops and/or calls.

    ``outermost_only`` restricts loop instrumentation to top-level
    loops of each function (timers inside hot inner loops would
    perturb what they measure).
    """

    def __init__(self, loops: bool = True, calls: Sequence[str] = (), outermost_only: bool = True) -> None:
        self._loops = loops
        self._call_targets = set(calls)
        self._outermost_only = outermost_only
        self._counter = 0

    def apply(self, weaver: Weaver, functions: Sequence[str]) -> List[InstrumentationResult]:
        """Instrument each named function; returns per-function results."""
        weaver.insert_include("stdio.h", system=True)
        weaver.insert_include("omp.h", system=True)
        results = []
        for name in functions:
            results.append(self._instrument_function(weaver, name))
        return results

    def _instrument_function(self, weaver: Weaver, name: str) -> InstrumentationResult:
        jp = weaver.select_function(name)
        jp.attr("name")
        func = jp.node
        loops_done = 0
        calls_done = 0
        if self._loops:
            for loop_jp in jp.loops():
                loop_jp.attr("kind")
                if self._outermost_only and not self._is_outermost(func, loop_jp.node):
                    continue
                self._wrap(weaver, func, loop_jp.node, label=f"loop:{self._counter}")
                loops_done += 1
        for call_jp in jp.calls():
            if call_jp.attr("name") not in self._call_targets:
                continue
            anchor = weaver.statement_containing_call(func, call_jp.node)
            self._wrap(weaver, func, anchor, label=f"call:{call_jp.attr('name')}")
            calls_done += 1
        return InstrumentationResult(
            function=name, instrumented_loops=loops_done, instrumented_calls=calls_done
        )

    def _is_outermost(self, func: FunctionDef, loop: For) -> bool:
        from repro.cir import walk

        for node in walk(func.body):
            if isinstance(node, For) and node is not loop:
                if any(child is loop for child in walk(node.body)):
                    return False
        return True

    def _wrap(self, weaver: Weaver, func: FunctionDef, anchor, label: str) -> None:
        timer = f"{TIMER_PREFIX}{self._counter}"
        self._counter += 1
        start = Decl(
            type=Type(name="double"),
            name=timer,
            init=Call(func=Ident(name="omp_get_wtime"), args=[]),
        )
        report = ExprStmt(
            expr=Call(
                func=Ident(name="fprintf"),
                args=[
                    Ident(name="stderr"),
                    StringLit(text=f'"socrates {label} %f\\n"'),
                    BinOp(
                        op="-",
                        lhs=Call(func=Ident(name="omp_get_wtime"), args=[]),
                        rhs=Ident(name=timer),
                    ),
                ],
            )
        )
        # an OpenMP pragma binds to the statement that follows it, so
        # the timer declaration must land above the pragma, not between
        # the pragma and the loop it controls
        before_anchor = weaver.leading_pragma(func, anchor) or anchor
        weaver.insert_statement_before(func, before_anchor, start)
        weaver.insert_statement_after(func, anchor, report)
