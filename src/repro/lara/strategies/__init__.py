"""The two LARA strategies of the paper (Section II, Figure 2)."""

from repro.lara.strategies.autotuner import AutotunerStrategy
from repro.lara.strategies.instrumentation import TimingInstrumentation
from repro.lara.strategies.multiversioning import MultiversioningStrategy, VersionSpec

__all__ = ["AutotunerStrategy", "MultiversioningStrategy", "TimingInstrumentation", "VersionSpec"]
