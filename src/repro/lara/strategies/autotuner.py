"""The Autotuner strategy (paper Section II, Figure 2c).

Integrates mARGOt into the (already multiversioned) application:

1. insert the generated ``margot.h`` header;
2. insert the initialization call at the top of ``main``;
3. expose the control variables to the autotuner and surround every
   wrapper call with the mARGOt API::

       margot_update(&__socrates_version, &__socrates_num_threads);
       margot_start_monitor();
       kernel__wrapper(...);
       margot_stop_monitor();
       margot_log();
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cir import Call, ExprStmt, Ident, UnaryOp
from repro.lara.strategies.multiversioning import (
    THREADS_VARIABLE,
    VERSION_VARIABLE,
)
from repro.lara.weaver import Weaver

# The weave-point contract lives in repro.margot.weavepoints so the
# weave verifier checks exactly what this strategy inserts; the names
# are re-exported here for backwards compatibility.
from repro.margot.weavepoints import (
    INIT_CALL,
    LOG_CALL,
    MARGOT_HEADER,
    START_MONITOR_CALL,
    STOP_MONITOR_CALL,
    UPDATE_CALL,
)


@dataclass
class AutotunerResult:
    """What the strategy weaved for one kernel wrapper."""

    wrapper: str
    instrumented_calls: int


class AutotunerStrategy:
    """Weaves the mARGOt adaptation layer around kernel wrappers."""

    def apply(
        self, weaver: Weaver, wrappers: Sequence[str], main: str = "main"
    ) -> Dict[str, AutotunerResult]:
        """Instrument every call to each wrapper inside the application."""
        weaver.insert_include(MARGOT_HEADER, system=False)
        self._insert_init(weaver, main)
        results: Dict[str, AutotunerResult] = {}
        for wrapper in wrappers:
            results[wrapper] = self._instrument_wrapper(weaver, wrapper)
        return results

    def _insert_init(self, weaver: Weaver, main: str) -> None:
        main_jp = weaver.select_function(main)
        main_jp.attr("name")
        main_jp.attr("has_body")
        init_stmt = ExprStmt(expr=Call(func=Ident(name=INIT_CALL), args=[]))
        weaver.insert_at_function_entry(main_jp.node, init_stmt)

    def _instrument_wrapper(self, weaver: Weaver, wrapper: str) -> AutotunerResult:
        instrumented = 0
        for call_jp in weaver.select_calls_to(wrapper):
            call_jp.attr("arg_count")
            owner = self._owning_function(weaver, call_jp.node)
            anchor = weaver.statement_containing_call(owner, call_jp.node)
            update = ExprStmt(
                expr=Call(
                    func=Ident(name=UPDATE_CALL),
                    args=[
                        UnaryOp(op="&", operand=Ident(name=VERSION_VARIABLE)),
                        UnaryOp(op="&", operand=Ident(name=THREADS_VARIABLE)),
                    ],
                )
            )
            start = ExprStmt(expr=Call(func=Ident(name=START_MONITOR_CALL), args=[]))
            stop = ExprStmt(expr=Call(func=Ident(name=STOP_MONITOR_CALL), args=[]))
            log = ExprStmt(expr=Call(func=Ident(name=LOG_CALL), args=[]))
            weaver.insert_statement_before(owner, anchor, update)
            weaver.insert_statement_before(owner, anchor, start)
            weaver.insert_statement_after(owner, anchor, log)
            weaver.insert_statement_after(owner, anchor, stop)
            instrumented += 1
        return AutotunerResult(wrapper=wrapper, instrumented_calls=instrumented)

    @staticmethod
    def _owning_function(weaver: Weaver, call: Call):
        from repro.cir import walk

        for func in weaver.unit.functions():
            if any(node is call for node in walk(func.body)):
                return func
        raise RuntimeError("call does not belong to any function")
