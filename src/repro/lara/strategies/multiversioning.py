"""The Multiversioning strategy (paper Section II, Figure 2b).

For every target kernel the strategy:

1. clones the kernel once per (compiler configuration x binding
   policy) version — the two knobs that must be fixed at compile time;
2. prepends ``#pragma GCC optimize("...")`` to each clone and rewrites
   its OpenMP worksharing pragmas to
   ``num_threads(<control var>) proc_bind(<policy>)`` — the thread
   count stays a runtime control variable because it "does not require
   to be known at compile time";
3. generates a *wrapper* that dispatches on the version control
   variable;
4. replaces every call to the kernel with a call to the wrapper.

The whole process is driven through join-point attribute reads and
weaver actions, so the paper's Att/Act metrics fall out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cir import (
    Block,
    Call,
    Decl,
    ExprStmt,
    FunctionDef,
    Ident,
    If,
    IntLit,
    BinOp,
    Type,
)
from repro.gcc.flags import FlagConfiguration
from repro.machine.openmp import BindingPolicy
from repro.lara.joinpoint import FunctionJp
from repro.lara.weaver import Weaver

#: Names of the weaved control variables (exposed to mARGOt).
VERSION_VARIABLE = "__socrates_version"
THREADS_VARIABLE = "__socrates_num_threads"


@dataclass(frozen=True)
class VersionSpec:
    """One compile-time version: compiler configuration + binding."""

    compiler: FlagConfiguration
    binding: BindingPolicy

    @property
    def suffix(self) -> str:
        return f"{self.compiler.mangled}_{self.binding.value}"

    @property
    def description(self) -> str:
        return f"{self.compiler.label} proc_bind({self.binding.value})"


@dataclass
class MultiversioningResult:
    """What the strategy produced for one kernel."""

    kernel: str
    wrapper: str
    version_names: List[str]
    versions: List[VersionSpec]
    replaced_calls: int


class MultiversioningStrategy:
    """Clone-and-dispatch transformation over target kernels."""

    def __init__(self, versions: Sequence[VersionSpec]) -> None:
        if not versions:
            raise ValueError("at least one version is required")
        self._versions = list(versions)

    @property
    def versions(self) -> List[VersionSpec]:
        return list(self._versions)

    def apply(self, weaver: Weaver, kernels: Sequence[str]) -> Dict[str, MultiversioningResult]:
        """Weave every kernel of ``kernels``; returns per-kernel results."""
        self._insert_control_variables(weaver, kernels)
        results: Dict[str, MultiversioningResult] = {}
        for kernel in kernels:
            results[kernel] = self._weave_kernel(weaver, kernel)
        return results

    # -- steps ------------------------------------------------------------------

    def _insert_control_variables(self, weaver: Weaver, kernels: Sequence[str]) -> None:
        first_kernel = kernels[0] if kernels else None
        weaver.insert_global(
            Decl(type=Type(name="int"), name=VERSION_VARIABLE, init=IntLit(text="0")),
            before_function=first_kernel,
        )
        weaver.insert_global(
            Decl(type=Type(name="int"), name=THREADS_VARIABLE, init=IntLit(text="1")),
            before_function=first_kernel,
        )

    def _weave_kernel(self, weaver: Weaver, kernel: str) -> MultiversioningResult:
        target = weaver.select_function(kernel)
        # inspect the kernel: signature information (Att)
        target.attr("name")
        target.attr("signature")
        target.attr("return_type")
        param_names = target.attr("param_names")
        target.attr("param_types")
        target.attr("param_count")
        target.attr("storage")

        version_names: List[str] = []
        for index, version in enumerate(self._versions):
            version_names.append(self._make_version(weaver, target, index, version))

        wrapper_name = f"{kernel}__wrapper"
        wrapper = self._make_wrapper(weaver, target, wrapper_name, version_names, param_names)
        replaced = self._replace_calls(weaver, kernel, wrapper_name, version_names)
        return MultiversioningResult(
            kernel=kernel,
            wrapper=wrapper_name,
            version_names=version_names,
            versions=list(self._versions),
            replaced_calls=replaced,
        )

    def _make_version(
        self, weaver: Weaver, target: FunctionJp, index: int, version: VersionSpec
    ) -> str:
        name = f"{target.node.name}__v{index}_{version.suffix}"
        clone = weaver.clone_function(target, name)
        weaver.attach_pragma(clone, version.compiler.pragma_text)
        # inspect the loop structure of the clone: the strategy verifies
        # that every parallel loop is an outermost `for` with a known
        # induction variable before touching its pragma
        for loop_jp in clone.loops():
            loop_jp.attr("kind")
            loop_jp.attr("induction_variable")
            loop_jp.attr("is_innermost")
        for pragma_jp in clone.pragmas():
            if not pragma_jp.attr("is_omp"):
                continue
            if not pragma_jp.attr("is_parallel_for"):
                continue
            text = pragma_jp.attr("text")
            rewritten = (
                f"{text} num_threads({THREADS_VARIABLE}) "
                f"proc_bind({version.binding.omp_name})"
            )
            weaver.rewrite_pragma(pragma_jp.node, rewritten)
        return name

    def _make_wrapper(
        self,
        weaver: Weaver,
        target: FunctionJp,
        wrapper_name: str,
        version_names: Sequence[str],
        param_names: Sequence[str],
    ) -> FunctionJp:
        original = target.node
        args = [Ident(name=param) for param in param_names]

        def dispatch(index: int) -> "If | ExprStmt":
            call = ExprStmt(
                expr=Call(func=Ident(name=version_names[index]), args=[a.clone() for a in args])
            )
            if index == len(version_names) - 1:
                return call
            return If(
                cond=BinOp(
                    op="==", lhs=Ident(name=VERSION_VARIABLE), rhs=IntLit(text=str(index))
                ),
                then=Block(stmts=[call]),
                other=dispatch(index + 1),
            )

        wrapper = FunctionDef(
            return_type=original.return_type.clone(),
            name=wrapper_name,
            params=[param.clone() for param in original.params],
            body=Block(stmts=[dispatch(0)]),
        )
        return weaver.insert_function(wrapper, after=version_names[-1])

    def _replace_calls(
        self,
        weaver: Weaver,
        kernel: str,
        wrapper_name: str,
        version_names: Sequence[str],
    ) -> int:
        replaced = 0
        skip_functions = set(version_names) | {wrapper_name}
        for func in weaver.unit.functions():
            if func.name in skip_functions:
                continue
            for call_jp in self._calls_in(weaver, func, kernel):
                weaver.rename_call(call_jp, wrapper_name)
                replaced += 1
        return replaced

    @staticmethod
    def _calls_in(weaver: Weaver, func: FunctionDef, callee: str):
        from repro.cir import walk
        from repro.lara.joinpoint import CallJp

        result = []
        for node in walk(func.body):
            if isinstance(node, Call):
                jp = CallJp(weaver, node)
                if jp.attr("name") == callee:
                    result.append(jp)
        return result
