"""The join-point model: typed, metered views on AST nodes.

LARA aspects *select* join points (functions, loops, calls, pragmas)
and read their attributes to decide where to act.  Every attribute
read goes through :meth:`JoinPoint.attr` and is tallied by the weaver
— this is the paper's **Att** metric ("number of attributes checked in
the LARA strategy about the source code of the application").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.cir import (
    Block,
    Call,
    For,
    FunctionDef,
    Pragma,
    Stmt,
    walk,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lara.weaver import Weaver


class JoinPoint:
    """Base join point: wraps one AST node and meters attribute reads."""

    def __init__(self, weaver: "Weaver", node: Any) -> None:
        self._weaver = weaver
        self.node = node

    def attr(self, name: str) -> Any:
        """Read one attribute of the underlying node (metered)."""
        self._weaver.count_attribute()
        value = self._read(name)
        return value

    def _read(self, name: str) -> Any:
        raise KeyError(name)


class FunctionJp(JoinPoint):
    """Join point over a function definition.

    Attributes: ``name``, ``return_type``, ``param_count``,
    ``param_names``, ``param_types``, ``signature``, ``has_body``,
    ``storage``.
    """

    node: FunctionDef

    def _read(self, name: str) -> Any:
        func = self.node
        if name == "name":
            return func.name
        if name == "return_type":
            return str(func.return_type)
        if name == "param_count":
            return len(func.params)
        if name == "param_names":
            return [param.name for param in func.params]
        if name == "param_types":
            return [str(param.type) for param in func.params]
        if name == "signature":
            return func.signature
        if name == "has_body":
            return bool(func.body.stmts)
        if name == "storage":
            return list(func.storage)
        raise KeyError(name)

    # -- selections -----------------------------------------------------------

    def pragmas(self) -> List["PragmaJp"]:
        """All pragma statements inside this function's body."""
        return [
            PragmaJp(self._weaver, node)
            for node in walk(self.node.body)
            if isinstance(node, Pragma)
        ]

    def loops(self) -> List["LoopJp"]:
        return [
            LoopJp(self._weaver, node)
            for node in walk(self.node.body)
            if isinstance(node, For)
        ]

    def calls(self) -> List["CallJp"]:
        return [
            CallJp(self._weaver, node)
            for node in walk(self.node.body)
            if isinstance(node, Call)
        ]


class LoopJp(JoinPoint):
    """Join point over a ``for`` loop.

    Attributes: ``induction_variable``, ``is_innermost``, ``kind``.
    """

    node: For

    def _read(self, name: str) -> Any:
        loop = self.node
        if name == "kind":
            return "for"
        if name == "induction_variable":
            from repro.cir.analysis import LoopInfo

            return LoopInfo(node=loop, depth=0).induction_variable
        if name == "is_innermost":
            return not any(
                isinstance(node, For) for node in walk(loop.body)
            )
        raise KeyError(name)


class PragmaJp(JoinPoint):
    """Join point over a pragma statement.

    Attributes: ``text``, ``is_omp``, ``is_parallel_for``, ``kind``.
    """

    node: Pragma

    def _read(self, name: str) -> Any:
        pragma = self.node
        if name == "text":
            return pragma.text
        if name == "is_omp":
            return pragma.is_omp
        if name == "is_parallel_for":
            return pragma.is_omp and "for" in pragma.text
        if name == "kind":
            return "pragma"
        raise KeyError(name)


class CallJp(JoinPoint):
    """Join point over a call expression.

    Attributes: ``name``, ``arg_count``.
    """

    node: Call

    def _read(self, name: str) -> Any:
        call = self.node
        if name == "name":
            return call.name
        if name == "arg_count":
            return len(call.args)
        raise KeyError(name)


class StatementJp(JoinPoint):
    """Join point over an arbitrary statement (``kind`` attribute)."""

    node: Stmt

    def _read(self, name: str) -> Any:
        if name == "kind":
            return type(self.node).__name__.lower()
        raise KeyError(name)
