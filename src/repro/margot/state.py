"""Optimization states: mARGOt's constrained multi-objective problems.

A state is *what the application wants right now*: an ordered list of
constraints (hard requirements, by priority) plus a rank (the
objective used to order the surviving operating points).  SOCRATES
switches between states at runtime — e.g. Figure 5 alternates between
a ``maximize throughput/power^2`` state and a ``maximize throughput``
state.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.knowledge import OperatingPoint


class RankDirection(enum.Enum):
    MAXIMIZE = "maximize"
    MINIMIZE = "minimize"


class RankComposition(enum.Enum):
    """How multiple rank fields combine into one scalar."""

    LINEAR = "linear"  # sum of coefficient * field
    GEOMETRIC = "geometric"  # product of field ** coefficient


@dataclass(frozen=True)
class RankField:
    """One term of the rank objective.

    ``coefficient`` is a weight for LINEAR composition and an exponent
    for GEOMETRIC composition (so throughput/power^2 is geometric with
    fields (throughput, 1) and (power, -2)).
    """

    metric: str
    coefficient: float = 1.0


@dataclass(frozen=True)
class Rank:
    """The objective of an optimization state."""

    direction: RankDirection
    composition: RankComposition
    fields: Sequence[RankField]

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Scalar rank of one OP given its (adjusted) metric means."""
        if self.composition is RankComposition.LINEAR:
            return sum(f.coefficient * values[f.metric] for f in self.fields)
        result = 1.0
        for f in self.fields:
            base = values[f.metric]
            if base <= 0:
                # geometric rank is undefined on non-positive values;
                # clamp to a tiny epsilon so ordering remains sane
                base = 1e-30
            result *= base**f.coefficient
        return result

    def better(self, lhs: float, rhs: float) -> bool:
        """Is rank value ``lhs`` better than ``rhs``?"""
        if self.direction is RankDirection.MAXIMIZE:
            return lhs > rhs
        return lhs < rhs


@dataclass
class Constraint:
    """A prioritized hard requirement on one metric (or knob).

    ``confidence`` counts standard deviations added to the expected
    value before comparison (mARGOt's way of trading optimism for
    safety); ``priority`` orders relaxation — lower numbers are more
    important and relaxed last.
    """

    goal: Goal
    priority: int = 10
    confidence: float = 0.0

    def expected_value(self, point: OperatingPoint, adjust: float = 1.0) -> float:
        """The value this constraint checks for ``point``.

        ``adjust`` is the runtime-feedback scale factor for the metric
        (observed/expected ratio learned by the AS-RTM).
        """
        if self.goal.field in point.metrics:
            stats = point.metric(self.goal.field)
            pessimistic = self.confidence if self._pessimism_adds() else -self.confidence
            return (stats.mean + pessimistic * stats.std) * adjust
        knob_value = point.knob(self.goal.field)
        return float(knob_value)  # type: ignore[arg-type]

    def _pessimism_adds(self) -> bool:
        """For <=-style goals pessimism adds sigmas; for >= it subtracts."""
        return self.goal.comparison in (
            ComparisonFunction.LESS,
            ComparisonFunction.LESS_OR_EQUAL,
        )

    def satisfied_by(self, point: OperatingPoint, adjust: float = 1.0) -> bool:
        return self.goal.check(self.expected_value(point, adjust))

    def violation(self, point: OperatingPoint, adjust: float = 1.0) -> float:
        return self.goal.violation(self.expected_value(point, adjust))


@dataclass
class OptimizationState:
    """A named (constraints, rank) pair the AS-RTM can switch to."""

    name: str
    rank: Rank
    constraints: List[Constraint] = field(default_factory=list)

    def add_constraint(self, constraint: Constraint) -> None:
        self.constraints.append(constraint)
        self.constraints.sort(key=lambda c: c.priority)

    def remove_constraint(self, metric: str) -> None:
        self.constraints = [c for c in self.constraints if c.goal.field != metric]

    def constraint_on(self, metric: str) -> Optional[Constraint]:
        for constraint in self.constraints:
            if constraint.goal.field == metric:
                return constraint
        return None


# -- convenience constructors used across examples and benchmarks ---------


def maximize_throughput() -> Rank:
    """Plain performance objective (Figure 5's 100s-200s phase)."""
    return Rank(
        direction=RankDirection.MAXIMIZE,
        composition=RankComposition.LINEAR,
        fields=(RankField("throughput", 1.0),),
    )


def maximize_throughput_per_watt_squared() -> Rank:
    """The paper's energy-efficiency objective Thr/W^2."""
    return Rank(
        direction=RankDirection.MAXIMIZE,
        composition=RankComposition.GEOMETRIC,
        fields=(RankField("throughput", 1.0), RankField("power", -2.0)),
    )


def minimize_time() -> Rank:
    """Figure 4's objective: minimize execution time."""
    return Rank(
        direction=RankDirection.MINIMIZE,
        composition=RankComposition.LINEAR,
        fields=(RankField("time", 1.0),),
    )
