"""The Application-Specific Run-Time Manager (AS-RTM).

The AS-RTM fuses mARGOt's three information sources:

1. **application requirements** — the active
   :class:`~repro.margot.state.OptimizationState`;
2. **design-time knowledge** — the
   :class:`~repro.margot.knowledge.KnowledgeBase` from profiling;
3. **monitor feedback** — observed/expected ratios per metric, learned
   online, which rescale the design-time expectations before every
   selection (so the manager adapts when the machine behaves unlike
   the profiling runs).

Selection follows mARGOt's semantics: constraints filter the OP list
in priority order; if a constraint wipes out every surviving OP it is
*relaxed* — the OPs closest to satisfying it are kept instead; the
rank then orders the survivors.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.margot.knowledge import KnowledgeBase, OperatingPoint
from repro.margot.monitor import Monitor
from repro.margot.state import Constraint, OptimizationState


class AsrtmError(RuntimeError):
    """Raised on lifecycle misuse (no state, empty knowledge, ...)."""


class ApplicationRuntimeManager:
    """One AS-RTM instance manages one kernel / region of interest."""

    def __init__(self, knowledge: KnowledgeBase) -> None:
        if not knowledge:
            raise AsrtmError("cannot build an AS-RTM over an empty knowledge base")
        self._knowledge = knowledge
        self._states: Dict[str, OptimizationState] = {}
        self._active_state: Optional[str] = None
        self._feedback: Dict[str, float] = {}
        self._feedback_smoothing = 0.5
        self._observations: Dict[str, Monitor] = {}
        self._current: Optional[OperatingPoint] = None

    # -- state management -----------------------------------------------------

    @property
    def knowledge(self) -> KnowledgeBase:
        return self._knowledge

    def add_state(self, state: OptimizationState, activate: bool = False) -> None:
        """Register an optimization state under its name."""
        if state.name in self._states:
            raise AsrtmError(f"state {state.name!r} already exists")
        self._states[state.name] = state
        if activate or self._active_state is None:
            self._active_state = state.name

    def switch_state(self, name: str) -> None:
        """Change the active requirements (SOCRATES' runtime lever)."""
        if name not in self._states:
            raise AsrtmError(f"unknown state {name!r}")
        self._active_state = name

    @property
    def active_state(self) -> OptimizationState:
        if self._active_state is None:
            raise AsrtmError("no optimization state defined")
        return self._states[self._active_state]

    def state_names(self) -> List[str]:
        return list(self._states)

    # -- monitor feedback -------------------------------------------------------

    def attach_monitor(self, metric: str, monitor: Monitor) -> None:
        """Use ``monitor`` as the runtime observation source of ``metric``."""
        self._observations[metric] = monitor

    def adjustment(self, metric: str) -> float:
        """Current observed/expected scale factor of a metric (1.0 = on model)."""
        return self._feedback.get(metric, 1.0)

    def ingest_feedback(self) -> None:
        """Update the observed/expected ratios from the attached monitors.

        Must be called while the configuration that produced the
        observations is still current (mARGOt calls this inside
        ``update`` at the start of every region).
        """
        if self._current is None:
            return
        for metric, monitor in self._observations.items():
            if monitor.empty or metric not in self._current.metrics:
                continue
            expected = self._current.metric(metric).mean
            if expected == 0:
                continue
            ratio = monitor.average() / expected
            previous = self._feedback.get(metric, 1.0)
            blended = (
                self._feedback_smoothing * previous
                + (1.0 - self._feedback_smoothing) * ratio
            )
            self._feedback[metric] = blended

    def reset_feedback(self) -> None:
        self._feedback.clear()

    # -- selection ----------------------------------------------------------------

    def update(self) -> OperatingPoint:
        """Select the best operating point under the active state.

        Implements the mARGOt decision: ingest monitor feedback, filter
        by constraints (with relaxation), rank, remember the choice.
        """
        self.ingest_feedback()
        state = self.active_state
        survivors = self._filter(state)
        best = self._rank(state, survivors)
        if self._current is not None and best.key != self._current.key:
            # configuration change: observations of the old operating
            # point must not be attributed to the new one
            for monitor in self._observations.values():
                monitor.clear()
        self._current = best
        return best

    @property
    def current(self) -> Optional[OperatingPoint]:
        return self._current

    def _adjusted_metrics(self, point: OperatingPoint) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for name, stats in point.metrics.items():
            values[name] = stats.mean * self._feedback.get(name, 1.0)
        for name, value in point.knobs.items():
            if isinstance(value, (int, float)) and name not in values:
                values[name] = float(value)
        return values

    def _filter(self, state: OptimizationState) -> List[OperatingPoint]:
        survivors = self._knowledge.points()
        for constraint in state.constraints:
            adjust = self._feedback.get(constraint.goal.field, 1.0)
            satisfying = [
                point for point in survivors if constraint.satisfied_by(point, adjust)
            ]
            if satisfying:
                survivors = satisfying
                continue
            # relaxation: keep the OPs with the smallest violation of
            # this constraint so more important (earlier) constraints
            # stay enforced and selection never comes up empty
            best_violation = min(
                constraint.violation(point, adjust) for point in survivors
            )
            survivors = [
                point
                for point in survivors
                if constraint.violation(point, adjust) <= best_violation + 1e-12
            ]
        return survivors

    def _rank(
        self, state: OptimizationState, candidates: List[OperatingPoint]
    ) -> OperatingPoint:
        if not candidates:
            raise AsrtmError("constraint filtering produced no candidates")
        best_point = candidates[0]
        best_value = state.rank.evaluate(self._adjusted_metrics(best_point))
        for point in candidates[1:]:
            value = state.rank.evaluate(self._adjusted_metrics(point))
            if state.rank.better(value, best_value):
                best_value = value
                best_point = point
        return best_point
