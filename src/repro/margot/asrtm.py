"""The Application-Specific Run-Time Manager (AS-RTM).

The AS-RTM fuses mARGOt's three information sources:

1. **application requirements** — the active
   :class:`~repro.margot.state.OptimizationState`;
2. **design-time knowledge** — the
   :class:`~repro.margot.knowledge.KnowledgeBase` from profiling;
3. **monitor feedback** — observed/expected ratios per metric, learned
   online, which rescale the design-time expectations before every
   selection (so the manager adapts when the machine behaves unlike
   the profiling runs).

Selection follows mARGOt's semantics: constraints filter the OP list
in priority order; if a constraint wipes out every surviving OP it is
*relaxed* — the OPs closest to satisfying it are kept instead; the
rank then orders the survivors.

When an :class:`~repro.obs.audit.AdaptationAuditLog` is attached,
every selection that *switches* the operating point records one
explained entry — candidates considered, constraint filtering (with
feedback adjustments and relaxations), rank values, and the reason the
winner won.  Without an audit log attached, ``update`` takes the exact
pre-observability fast path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.margot.knowledge import KnowledgeBase, OperatingPoint
from repro.margot.monitor import Monitor
from repro.margot.state import Constraint, OptimizationState
from repro.obs.audit import (
    AdaptationAuditLog,
    AdaptationEntry,
    CandidateTrace,
    ConstraintTrace,
    describe_rank,
)


class AsrtmError(RuntimeError):
    """Raised on lifecycle misuse (no state, empty knowledge, ...)."""


class ApplicationRuntimeManager:
    """One AS-RTM instance manages one kernel / region of interest."""

    def __init__(
        self,
        knowledge: KnowledgeBase,
        audit: Optional[AdaptationAuditLog] = None,
    ) -> None:
        if not knowledge:
            raise AsrtmError("cannot build an AS-RTM over an empty knowledge base")
        self._knowledge = knowledge
        self._states: Dict[str, OptimizationState] = {}
        self._active_state: Optional[str] = None
        self._feedback: Dict[str, float] = {}
        self._feedback_smoothing = 0.5
        self._observations: Dict[str, Monitor] = {}
        self._current: Optional[OperatingPoint] = None
        self._audit = audit
        self._alerts = None
        self._knob_filters: Dict[str, object] = {}

    # -- state management -----------------------------------------------------

    @property
    def knowledge(self) -> KnowledgeBase:
        return self._knowledge

    def add_state(self, state: OptimizationState, activate: bool = False) -> None:
        """Register an optimization state under its name."""
        if state.name in self._states:
            raise AsrtmError(f"state {state.name!r} already exists")
        self._states[state.name] = state
        if activate or self._active_state is None:
            self._active_state = state.name

    def switch_state(self, name: str) -> None:
        """Change the active requirements (SOCRATES' runtime lever)."""
        if name not in self._states:
            raise AsrtmError(f"unknown state {name!r}")
        self._active_state = name

    @property
    def active_state(self) -> OptimizationState:
        if self._active_state is None:
            raise AsrtmError("no optimization state defined")
        return self._states[self._active_state]

    def state_names(self) -> List[str]:
        return list(self._states)

    # -- monitor feedback -------------------------------------------------------

    def attach_monitor(self, metric: str, monitor: Monitor) -> None:
        """Use ``monitor`` as the runtime observation source of ``metric``."""
        self._observations[metric] = monitor

    def adjustment(self, metric: str) -> float:
        """Current observed/expected scale factor of a metric (1.0 = on model)."""
        return self._feedback.get(metric, 1.0)

    def ingest_feedback(self) -> None:
        """Update the observed/expected ratios from the attached monitors.

        Must be called while the configuration that produced the
        observations is still current (mARGOt calls this inside
        ``update`` at the start of every region).
        """
        if self._current is None:
            return
        for metric, monitor in self._observations.items():
            if monitor.empty or metric not in self._current.metrics:
                continue
            expected = self._current.metric(metric).mean
            if expected == 0:
                continue
            ratio = monitor.average() / expected
            previous = self._feedback.get(metric, 1.0)
            blended = (
                self._feedback_smoothing * previous
                + (1.0 - self._feedback_smoothing) * ratio
            )
            self._feedback[metric] = blended

    def reset_feedback(self) -> None:
        self._feedback.clear()

    # -- knob filters -------------------------------------------------------------

    def set_knob_filter(self, name: str, value: object) -> None:
        """Pin a knob: only operating points with ``knobs[name] == value``
        are considered until the filter is cleared.

        This is how an external agent (a system-wide resource manager,
        or the big.LITTLE power governor) restricts the AS-RTM to a
        subset of the space — e.g. ``set_knob_filter("cluster", "E")``
        confines selection to the efficiency cluster.  Filters are hard:
        unlike constraints they are never relaxed.
        """
        self._knob_filters[name] = value

    def clear_knob_filter(self, name: str) -> None:
        """Remove one knob filter (no-op if absent)."""
        self._knob_filters.pop(name, None)

    def clear_knob_filters(self) -> None:
        """Remove every knob filter."""
        self._knob_filters.clear()

    def knob_filters(self) -> Dict[str, object]:
        return dict(self._knob_filters)

    # -- selection ----------------------------------------------------------------

    def update(self, now: Optional[float] = None) -> OperatingPoint:
        """Select the best operating point under the active state.

        Implements the mARGOt decision: ingest monitor feedback, filter
        by constraints (with relaxation), rank, remember the choice.
        ``now`` is an optional (virtual) timestamp used only to stamp
        audit entries.
        """
        self.ingest_feedback()
        state = self.active_state
        auditing = self._audit is not None
        constraint_traces: Optional[List[ConstraintTrace]] = (
            [] if auditing else None
        )
        survivors = self._filter(state, trace=constraint_traces)
        if auditing:
            best, ranked = self._rank_all(state, survivors)
        else:
            best = self._rank(state, survivors)
        switched = self._current is None or best.key != self._current.key
        if switched and self._current is not None:
            # configuration change: observations of the old operating
            # point must not be attributed to the new one
            for monitor in self._observations.values():
                monitor.clear()
        entry = None
        if auditing and switched:
            entry = self._record_audit(
                state, best, ranked, constraint_traces or [], now=now
            )
        if switched and self._alerts is not None:
            # Cross-link the deliberate switch into the alerting
            # stream: incident windows show surrounding adaptations,
            # and the CUSUM reference re-warms so an *intended* power
            # change is not reported as a change-point anomaly.
            self._alerts.observe_adaptation(
                now=now if now is not None else 0.0,
                state=state.name,
                winner=dict(best.knobs),
                entry=entry,
            )
        self._current = best
        return best

    @property
    def current(self) -> Optional[OperatingPoint]:
        return self._current

    @property
    def audit(self) -> Optional[AdaptationAuditLog]:
        return self._audit

    def attach_audit(self, audit: Optional[AdaptationAuditLog]) -> None:
        """Enable (or disable, with ``None``) adaptation auditing."""
        self._audit = audit

    def attach_alerts(self, alerts) -> None:
        """Notify an :class:`~repro.obs.alerts.AlertEngine` of switches."""
        self._alerts = alerts

    def _record_audit(
        self,
        state: OptimizationState,
        best: OperatingPoint,
        ranked: List[Tuple[OperatingPoint, float]],
        constraint_traces: List[ConstraintTrace],
        now: Optional[float],
    ) -> AdaptationEntry:
        assert self._audit is not None
        limit = self._audit.max_candidates
        candidates = [
            CandidateTrace(knobs=point.key, rank_value=value)
            for point, value in ranked[:limit]
        ]
        winner_rank = next(
            value for point, value in ranked if point.key == best.key
        )
        return self._audit.record(
            AdaptationEntry(
                sequence=self._audit.next_sequence(),
                timestamp=now,
                state=state.name,
                rank=describe_rank(state.rank),
                considered=len(self._knowledge),
                survivors=len(ranked),
                constraints=constraint_traces,
                candidates=candidates,
                winner=dict(best.knobs),
                winner_rank=winner_rank,
                switched_from=dict(self._current.knobs)
                if self._current is not None
                else None,
                reason="",  # composed by the log from the fields above
            )
        )

    def _adjusted_metrics(self, point: OperatingPoint) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for name, stats in point.metrics.items():
            values[name] = stats.mean * self._feedback.get(name, 1.0)
        for name, value in point.knobs.items():
            if isinstance(value, (int, float)) and name not in values:
                values[name] = float(value)
        return values

    def _filter(
        self,
        state: OptimizationState,
        trace: Optional[List[ConstraintTrace]] = None,
    ) -> List[OperatingPoint]:
        survivors = self._knowledge.points()
        if self._knob_filters:
            survivors = [
                point
                for point in survivors
                if all(
                    point.knobs.get(name) == value
                    for name, value in self._knob_filters.items()
                )
            ]
            if not survivors:
                raise AsrtmError(
                    f"knob filters {self._knob_filters!r} match no operating point"
                )
        for constraint in state.constraints:
            adjust = self._feedback.get(constraint.goal.field, 1.0)
            before = len(survivors)
            satisfying = [
                point for point in survivors if constraint.satisfied_by(point, adjust)
            ]
            if satisfying:
                survivors = satisfying
                relaxed = False
            else:
                # relaxation: keep the OPs with the smallest violation of
                # this constraint so more important (earlier) constraints
                # stay enforced and selection never comes up empty
                best_violation = min(
                    constraint.violation(point, adjust) for point in survivors
                )
                survivors = [
                    point
                    for point in survivors
                    if constraint.violation(point, adjust) <= best_violation + 1e-12
                ]
                relaxed = True
            if trace is not None:
                trace.append(
                    ConstraintTrace(
                        goal=str(constraint.goal),
                        adjustment=adjust,
                        survivors_before=before,
                        survivors_after=len(survivors),
                        relaxed=relaxed,
                    )
                )
        return survivors

    def _rank(
        self, state: OptimizationState, candidates: List[OperatingPoint]
    ) -> OperatingPoint:
        if not candidates:
            raise AsrtmError("constraint filtering produced no candidates")
        best_point = candidates[0]
        best_value = state.rank.evaluate(self._adjusted_metrics(best_point))
        for point in candidates[1:]:
            value = state.rank.evaluate(self._adjusted_metrics(point))
            if state.rank.better(value, best_value):
                best_value = value
                best_point = point
        return best_point

    def _rank_all(
        self, state: OptimizationState, candidates: List[OperatingPoint]
    ) -> Tuple[OperatingPoint, List[Tuple[OperatingPoint, float]]]:
        """Auditing variant of :meth:`_rank`: same winner (first-best on
        ties, like the linear scan), plus every candidate's rank value
        in best-first order."""
        if not candidates:
            raise AsrtmError("constraint filtering produced no candidates")
        valued = [
            (point, state.rank.evaluate(self._adjusted_metrics(point)))
            for point in candidates
        ]
        best_point, best_value = valued[0]
        for point, value in valued[1:]:
            if state.rank.better(value, best_value):
                best_value = value
                best_point = point
        reverse = state.rank.better(1.0, 0.0)  # maximize ⇒ big first
        ranked = sorted(
            enumerate(valued),
            key=lambda item: (
                -item[1][1] if reverse else item[1][1],
                item[0],  # stable: knowledge order breaks ties
            ),
        )
        return best_point, [pair for _, pair in ranked]
