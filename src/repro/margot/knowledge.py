"""Design-time application knowledge: the operating-point list.

An *operating point* (OP) relates one software-knob configuration to
the expected distribution (mean, standard deviation) of every profiled
extra-functional property.  The knowledge base is built by the DSE
(:mod:`repro.dse`) and consumed by the AS-RTM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class MetricStats:
    """Profiled distribution of one metric at one operating point."""

    mean: float
    std: float = 0.0

    def upper(self, confidence: float) -> float:
        """Mean plus ``confidence`` standard deviations."""
        return self.mean + confidence * self.std

    def lower(self, confidence: float) -> float:
        return self.mean - confidence * self.std


@dataclass(frozen=True)
class OperatingPoint:
    """One knob configuration with its expected metric distributions.

    ``knobs`` maps knob names to values (hashable: strings/numbers);
    ``metrics`` maps metric names to :class:`MetricStats`.
    """

    knobs: Mapping[str, object]
    metrics: Mapping[str, MetricStats]

    def knob(self, name: str) -> object:
        return self.knobs[name]

    def metric(self, name: str) -> MetricStats:
        return self.metrics[name]

    @property
    def key(self) -> Tuple[Tuple[str, object], ...]:
        """Hashable identity of the knob configuration."""
        return tuple(sorted(self.knobs.items(), key=lambda item: item[0]))


class KnowledgeBase:
    """The list of operating points known at design time.

    Enforces schema consistency: every OP must define the same knob
    and metric names, and knob configurations must be unique.
    """

    def __init__(self, points: Optional[Iterable[OperatingPoint]] = None) -> None:
        self._points: List[OperatingPoint] = []
        self._knob_names: Optional[Tuple[str, ...]] = None
        self._metric_names: Optional[Tuple[str, ...]] = None
        self._seen: set = set()
        for point in points or ():
            self.add(point)

    def add(self, point: OperatingPoint) -> None:
        """Insert one operating point, validating the schema."""
        knob_names = tuple(sorted(point.knobs))
        metric_names = tuple(sorted(point.metrics))
        if self._knob_names is None:
            self._knob_names = knob_names
            self._metric_names = metric_names
        else:
            if knob_names != self._knob_names:
                raise ValueError(
                    f"inconsistent knob schema: {knob_names} vs {self._knob_names}"
                )
            if metric_names != self._metric_names:
                raise ValueError(
                    f"inconsistent metric schema: {metric_names} vs {self._metric_names}"
                )
        if point.key in self._seen:
            raise ValueError(f"duplicate operating point for knobs {dict(point.knobs)}")
        self._seen.add(point.key)
        self._points.append(point)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __bool__(self) -> bool:
        return bool(self._points)

    @property
    def knob_names(self) -> Tuple[str, ...]:
        return self._knob_names or ()

    @property
    def metric_names(self) -> Tuple[str, ...]:
        return self._metric_names or ()

    def points(self) -> List[OperatingPoint]:
        return list(self._points)

    def find(self, **knobs: object) -> OperatingPoint:
        """The unique OP with exactly these knob values.

        Raises ``KeyError`` when absent.
        """
        key = tuple(sorted(knobs.items(), key=lambda item: item[0]))
        for point in self._points:
            if point.key == key:
                return point
        raise KeyError(f"no operating point with knobs {knobs}")

    def metric_bounds(self, metric: str) -> Tuple[float, float]:
        """(min, max) of a metric's mean over all OPs."""
        values = [point.metric(metric).mean for point in self._points]
        if not values:
            raise ValueError("empty knowledge base")
        return min(values), max(values)


def make_operating_point(
    knobs: Mapping[str, object], metrics: Mapping[str, Tuple[float, float]]
) -> OperatingPoint:
    """Convenience constructor from ``{metric: (mean, std)}`` pairs."""
    return OperatingPoint(
        knobs=dict(knobs),
        metrics={name: MetricStats(mean=m, std=s) for name, (m, s) in metrics.items()},
    )
