"""mARGOt monitoring infrastructure.

Monitors observe one extra-functional property each, keeping the last
``window_size`` observations in a circular buffer and exposing the
statistical summaries the AS-RTM consumes (average, standard
deviation, min, max, last).  The time/throughput/energy monitors wrap
the usual start/stop pattern around a region of interest.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional


class MonitorError(RuntimeError):
    """Raised on misuse of the start/stop protocol or empty statistics."""


class Monitor:
    """Circular-buffer monitor of one extra-functional property."""

    def __init__(self, name: str, window_size: int = 10) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.name = name
        self._buffer: Deque[float] = deque(maxlen=window_size)

    # -- observations -------------------------------------------------------

    def push(self, value: float) -> None:
        """Record one observation."""
        self._buffer.append(float(value))

    def clear(self) -> None:
        """Forget all observations."""
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def empty(self) -> bool:
        return not self._buffer

    # -- statistics -----------------------------------------------------------

    def last(self) -> float:
        self._require_data()
        return self._buffer[-1]

    def average(self) -> float:
        self._require_data()
        return sum(self._buffer) / len(self._buffer)

    def stddev(self) -> float:
        self._require_data()
        if len(self._buffer) < 2:
            return 0.0
        mean = self.average()
        variance = sum((x - mean) ** 2 for x in self._buffer) / (len(self._buffer) - 1)
        return math.sqrt(variance)

    def max(self) -> float:
        self._require_data()
        return max(self._buffer)

    def min(self) -> float:
        self._require_data()
        return min(self._buffer)

    def summary(self) -> "Dict[str, float]":
        """Every windowed statistic at once (``{}`` when empty).

        This is the snapshot the observability layer's metrics registry
        absorbs as gauges (``socrates_monitor_<metric>_<stat>``).
        """
        if not self._buffer:
            return {"count": 0.0}
        return {
            "count": float(len(self._buffer)),
            "last": self.last(),
            "average": self.average(),
            "stddev": self.stddev(),
            "min": self.min(),
            "max": self.max(),
        }

    def _require_data(self) -> None:
        if not self._buffer:
            raise MonitorError(f"monitor {self.name!r} has no observations")


class TimeMonitor(Monitor):
    """Measures the wall-clock time of a region of interest (seconds).

    The clock is injectable so simulated executions can drive it with
    virtual time.
    """

    def __init__(self, name: str = "time", window_size: int = 10) -> None:
        super().__init__(name, window_size)
        self._started_at: Optional[float] = None

    def start(self, now: float) -> None:
        if self._started_at is not None:
            raise MonitorError(f"monitor {self.name!r} started twice")
        self._started_at = now

    def stop(self, now: float) -> float:
        if self._started_at is None:
            raise MonitorError(f"monitor {self.name!r} stopped before start")
        elapsed = now - self._started_at
        self._started_at = None
        if elapsed < 0:
            raise MonitorError("time went backwards")
        self.push(elapsed)
        return elapsed


class ThroughputMonitor(Monitor):
    """Derives throughput (work items per second) from timed regions."""

    def __init__(
        self, name: str = "throughput", window_size: int = 10, items_per_region: float = 1.0
    ) -> None:
        super().__init__(name, window_size)
        self._items = items_per_region
        self._started_at: Optional[float] = None

    def start(self, now: float) -> None:
        if self._started_at is not None:
            raise MonitorError(f"monitor {self.name!r} started twice")
        self._started_at = now

    def stop(self, now: float) -> float:
        if self._started_at is None:
            raise MonitorError(f"monitor {self.name!r} stopped before start")
        elapsed = now - self._started_at
        self._started_at = None
        if elapsed <= 0:
            raise MonitorError("cannot compute throughput of a zero-length region")
        value = self._items / elapsed
        self.push(value)
        return value


class PowerMonitor(Monitor):
    """Observes average package power of a region (watts).

    In the real mARGOt this reads RAPL counters; here the simulated
    :class:`~repro.machine.power.RaplMeter` pushes readings in.
    """

    def __init__(self, name: str = "power", window_size: int = 10) -> None:
        super().__init__(name, window_size)


class EnergyMonitor(Monitor):
    """Observes energy per region (joules), e.g. power x elapsed time."""

    def __init__(self, name: str = "energy", window_size: int = 10) -> None:
        super().__init__(name, window_size)
