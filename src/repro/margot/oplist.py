"""Operating-point list serialization (mARGOt's oplist files).

mARGOt persists design-time knowledge as operating-point list files so
the profiling campaign and the production runs can be decoupled.  This
module provides the same round trip as JSON documents:

.. code-block:: python

    save_knowledge(kb, "2mm.oplist.json")
    kb = load_knowledge("2mm.oplist.json")

The schema stores knob values with a type tag so integers survive the
round trip (thread counts must come back as ``int``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint

_FORMAT_VERSION = 1


class OplistError(ValueError):
    """Raised on malformed oplist documents."""


def _encode_knob(value: object) -> Dict[str, object]:
    if isinstance(value, bool):
        raise OplistError("boolean knobs are not supported")
    if isinstance(value, int):
        return {"type": "int", "value": value}
    if isinstance(value, float):
        return {"type": "float", "value": value}
    return {"type": "str", "value": str(value)}


def _decode_knob(entry: Dict[str, object]) -> object:
    kind = entry.get("type")
    value = entry.get("value")
    if kind == "int":
        return int(value)  # type: ignore[arg-type]
    if kind == "float":
        return float(value)  # type: ignore[arg-type]
    if kind == "str":
        return str(value)
    raise OplistError(f"unknown knob type {kind!r}")


def knowledge_to_dict(
    knowledge: KnowledgeBase, machine: Optional[str] = None
) -> Dict[str, object]:
    """Serialize a knowledge base into a JSON-ready document.

    ``machine`` records which registry platform the campaign profiled
    (knowledge is machine-specific; a ``biglittle_4p4e`` oplist is
    meaningless on ``xeon_2s``).  It is omitted when not given, keeping
    historical documents byte-identical.
    """
    points: List[Dict[str, object]] = []
    for point in knowledge:
        points.append(
            {
                "knobs": {name: _encode_knob(value) for name, value in point.knobs.items()},
                "metrics": {
                    name: {"mean": stats.mean, "std": stats.std}
                    for name, stats in point.metrics.items()
                },
            }
        )
    document: Dict[str, object] = {"format": _FORMAT_VERSION, "points": points}
    if machine is not None:
        document["machine"] = machine
    return document


def knowledge_from_dict(document: Dict[str, object]) -> KnowledgeBase:
    """Rebuild a knowledge base from :func:`knowledge_to_dict` output."""
    if document.get("format") != _FORMAT_VERSION:
        raise OplistError(f"unsupported oplist format {document.get('format')!r}")
    knowledge = KnowledgeBase()
    for entry in document.get("points", []):  # type: ignore[union-attr]
        knobs = {
            name: _decode_knob(value) for name, value in entry["knobs"].items()
        }
        metrics = {
            name: MetricStats(mean=float(stats["mean"]), std=float(stats["std"]))
            for name, stats in entry["metrics"].items()
        }
        knowledge.add(OperatingPoint(knobs=knobs, metrics=metrics))
    return knowledge


def oplist_machine(document: Dict[str, object]) -> Optional[str]:
    """The registry-machine name recorded in an oplist document, if any."""
    machine = document.get("machine")
    return str(machine) if machine is not None else None


def save_knowledge(
    knowledge: KnowledgeBase, path: Union[str, Path], machine: Optional[str] = None
) -> None:
    """Write the oplist JSON file for ``knowledge``."""
    Path(path).write_text(
        json.dumps(knowledge_to_dict(knowledge, machine=machine), indent=2)
    )


def load_knowledge(path: Union[str, Path]) -> KnowledgeBase:
    """Read an oplist JSON file back into a knowledge base."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise OplistError(f"invalid oplist JSON: {error}") from None
    return knowledge_from_dict(document)
