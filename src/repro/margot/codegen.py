"""Generation of the ``margot.h`` adaptation-layer header.

The real mARGOt ships *margot_heel*, a generator that turns an XML
configuration into the high-level C interface the application includes
(``margot.h``) — the header whose calls the LARA Autotuner strategy
weaves around the kernel wrapper.  This module reproduces that step:
given the knowledge base and the optimization states of a kernel, it
emits a complete, self-contained C header implementing

* the operating-point list as static arrays,
* the active-state machinery (constraint filter + rank),
* the monitor ring buffers, and
* the ``margot_init / margot_update / margot_start_monitor /
  margot_stop_monitor / margot_log`` entry points.

The generated text is valid C for our CIR parser as well, so the whole
weaved application (source + header) round-trips through the toolchain.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.margot.knowledge import KnowledgeBase
from repro.margot.state import (
    Constraint,
    OptimizationState,
    RankComposition,
    RankDirection,
)

_HEADER_COMMENT = """\
/* margot.h -- generated adaptation layer (mARGOt heel equivalent).
 * Kernel: {kernel}
 * Operating points: {points}
 * States: {states}
 * DO NOT EDIT: regenerate through repro.margot.codegen.
 */
"""


def _c_float(value: float) -> str:
    return f"{value:.9g}"


def generate_margot_header(
    kernel: str,
    knowledge: KnowledgeBase,
    states: Sequence[OptimizationState],
    version_index: Mapping[str, int],
) -> str:
    """Emit the ``margot.h`` text for one kernel.

    ``version_index`` maps each (compiler label, binding) pair encoded
    as ``"<label>|<binding>"`` — or, when the knowledge carries the
    cluster knob, ``"<label>|<binding>|<cluster>"`` — to the wrapper's
    version number, so the generated ``margot_update`` can translate
    the selected operating point into the weaved control variables.
    """
    if not states:
        raise ValueError("at least one optimization state is required")
    points = knowledge.points()
    lines: List[str] = [
        _HEADER_COMMENT.format(
            kernel=kernel,
            points=len(points),
            states=", ".join(state.name for state in states),
        )
    ]
    lines.append("#define MARGOT_OP_COUNT %d" % len(points))
    lines.append("#define MARGOT_STATE_COUNT %d" % len(states))
    lines.append("#define MARGOT_WINDOW_SIZE 10")
    lines.append("")

    # -- knowledge tables -----------------------------------------------------
    versions: List[int] = []
    threads: List[int] = []
    clustered = any("cluster" in point.knobs for point in points)
    cluster_names: List[str] = []
    cluster_ids: List[int] = []
    for point in points:
        key = f"{point.knob('compiler')}|{point.knob('binding')}"
        if "cluster" in point.knobs:
            key += f"|{point.knob('cluster')}"
        versions.append(version_index.get(key, 0))
        threads.append(int(point.knob("threads")))  # type: ignore[call-overload]
        if clustered:
            name = str(point.knobs.get("cluster", ""))
            if name not in cluster_names:
                cluster_names.append(name)
            cluster_ids.append(cluster_names.index(name))
    lines.append(_int_table("margot_op_version", versions))
    lines.append(_int_table("margot_op_threads", threads))
    if clustered:
        mapping = ", ".join(
            f"{index}={name}" for index, name in enumerate(cluster_names)
        )
        lines.append(f"/* cluster ids: {mapping} */")
        lines.append(_int_table("margot_op_cluster", cluster_ids))
    for metric in knowledge.metric_names:
        means = [point.metric(metric).mean for point in points]
        stds = [point.metric(metric).std for point in points]
        lines.append(_float_table(f"margot_op_{metric}_mean", means))
        lines.append(_float_table(f"margot_op_{metric}_std", stds))
    lines.append("")

    # -- state tables -----------------------------------------------------------
    lines.append(_int_table("margot_state_rank_maximize", [
        1 if state.rank.direction is RankDirection.MAXIMIZE else 0 for state in states
    ]))
    lines.append(_int_table("margot_state_rank_geometric", [
        1 if state.rank.composition is RankComposition.GEOMETRIC else 0
        for state in states
    ]))
    lines.append("static int margot_active_state = 0;")
    lines.append("static int margot_current_op = 0;")
    lines.append("")

    # -- runtime scaffolding ------------------------------------------------------
    lines.append(_runtime_functions(knowledge, states))
    return "\n".join(lines) + "\n"


def _int_table(name: str, values: Sequence[int]) -> str:
    body = ", ".join(str(v) for v in values) or "0"
    return f"static int {name}[] = {{{body}}};"


def _float_table(name: str, values: Sequence[float]) -> str:
    body = ", ".join(_c_float(v) for v in values) or "0.0"
    return f"static double {name}[] = {{{body}}};"


def _rank_expression(state: OptimizationState, index: int) -> str:
    terms = []
    if state.rank.composition is RankComposition.GEOMETRIC:
        # log-space accumulation keeps the C expression simple
        for field in state.rank.fields:
            terms.append(
                f"{_c_float(field.coefficient)} * "
                f"log(margot_op_{field.metric}_mean[op])"
            )
        return " + ".join(terms)
    for field in state.rank.fields:
        terms.append(
            f"{_c_float(field.coefficient)} * margot_op_{field.metric}_mean[op]"
        )
    return " + ".join(terms)


def _constraint_checks(state: OptimizationState) -> List[str]:
    checks = []
    for constraint in state.constraints:
        metric = constraint.goal.field
        comparison = {
            "lt": "<",
            "le": "<=",
            "gt": ">",
            "ge": ">=",
        }[constraint.goal.comparison.value]
        sign = "+" if comparison in ("<", "<=") else "-"
        checks.append(
            f"(margot_op_{metric}_mean[op] {sign} "
            f"{_c_float(constraint.confidence)} * margot_op_{metric}_std[op]) "
            f"{comparison} {_c_float(constraint.goal.value)}"
        )
    return checks


def _constraint_violations(state: OptimizationState) -> List[str]:
    """C expressions for the normalized violation of each constraint
    (mirrors :meth:`repro.margot.goal.Goal.violation`): used for the
    relaxation fallback when no operating point is feasible."""
    terms = []
    for constraint in state.constraints:
        metric = constraint.goal.field
        comparison = constraint.goal.comparison.value
        sign = "+" if comparison in ("lt", "le") else "-"
        value = (
            f"(margot_op_{metric}_mean[op] {sign} "
            f"{_c_float(constraint.confidence)} * margot_op_{metric}_std[op])"
        )
        target = _c_float(constraint.goal.value)
        scale = _c_float(max(abs(constraint.goal.value), 1e-12))
        if comparison in ("lt", "le"):
            raw = f"({value} - {target}) / {scale}"
        else:
            raw = f"({target} - {value}) / {scale}"
        terms.append(f"({raw} > 0.0 ? {raw} : 0.0)")
    return terms


def _runtime_functions(
    knowledge: KnowledgeBase, states: Sequence[OptimizationState]
) -> str:
    """The margot_* entry points as C text."""
    state_rank_cases: List[str] = []
    for index, state in enumerate(states):
        rank_expr = _rank_expression(state, index)
        checks = _constraint_checks(state)
        feasible = " && ".join(checks) if checks else "1"
        violations = _constraint_violations(state)
        violation_expr = " + ".join(violations) if violations else "0.0"
        better = ">" if state.rank.direction is RankDirection.MAXIMIZE else "<"
        state_rank_cases.append(
            f"""\
  if (margot_active_state == {index})
  {{
    for (op = 0; op < MARGOT_OP_COUNT; op++)
    {{
      violation = {violation_expr};
      if (found == 0 && (fallback == -1 || violation < best_violation))
      {{
        best_violation = violation;
        fallback = op;
      }}
      if (!({feasible}))
        continue;
      score = {rank_expr};
      if (found == 0 || score {better} best_score)
      {{
        best_score = score;
        best_op = op;
        found = 1;
      }}
    }}
  }}"""
        )
    cases = "\n".join(state_rank_cases)
    return f"""\
static double margot_time_window[MARGOT_WINDOW_SIZE];
static double margot_power_window[MARGOT_WINDOW_SIZE];
static int margot_window_fill = 0;
static double margot_region_start = 0.0;

void margot_init(void)
{{
  margot_active_state = 0;
  margot_current_op = 0;
  margot_window_fill = 0;
}}

void margot_switch_state(int state)
{{
  if (state >= 0 && state < MARGOT_STATE_COUNT)
    margot_active_state = state;
}}

void margot_update(int *version, int *threads)
{{
  int op;
  int best_op = 0;
  int found = 0;
  int fallback = -1;
  double score = 0.0;
  double best_score = 0.0;
  double violation = 0.0;
  double best_violation = 0.0;
{cases}
  if (found == 0 && fallback >= 0)
    best_op = fallback;
  margot_current_op = best_op;
  *version = margot_op_version[best_op];
  *threads = margot_op_threads[best_op];
}}

void margot_start_monitor(void)
{{
  margot_region_start = omp_get_wtime();
}}

void margot_stop_monitor(void)
{{
  double elapsed = omp_get_wtime() - margot_region_start;
  int slot = margot_window_fill % MARGOT_WINDOW_SIZE;
  margot_time_window[slot] = elapsed;
  margot_window_fill = margot_window_fill + 1;
}}

void margot_log(void)
{{
  int slot = (margot_window_fill - 1) % MARGOT_WINDOW_SIZE;
  fprintf(stderr, "margot op=%d time=%f\\n", margot_current_op, margot_time_window[slot]);
}}"""
