"""mARGOt weave-point metadata.

The single source of truth for what the Autotuner strategy inserts
into a woven application and what the weave verifier later checks:
the ``margot.h`` include, the ``margot_init()`` call at the entry of
``main``, and — around every wrapper call site — the exact statement
order::

    margot_update(&__socrates_version, &__socrates_num_threads);
    margot_start_monitor();
    kernel__wrapper(...);
    margot_stop_monitor();
    margot_log();

``CALL_SITE_PRELUDE``/``CALL_SITE_POSTLUDE`` list the calls required
immediately before/after the wrapper call, nearest-first relative to
the call (``START_MONITOR`` directly above it, ``STOP_MONITOR``
directly below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

MARGOT_HEADER = "margot.h"
INIT_CALL = "margot_init"
UPDATE_CALL = "margot_update"
START_MONITOR_CALL = "margot_start_monitor"
STOP_MONITOR_CALL = "margot_stop_monitor"
LOG_CALL = "margot_log"


@dataclass(frozen=True)
class WeavePoint:
    """One mandatory mARGOt insertion, as checkable metadata."""

    call: str
    placement: str  # human-readable contract, used in diagnostics


INIT_POINT = WeavePoint(
    call=INIT_CALL, placement="first statement of main()"
)

#: Calls required directly before a wrapper call, nearest-first.
CALL_SITE_PRELUDE: Tuple[WeavePoint, ...] = (
    WeavePoint(call=START_MONITOR_CALL, placement="directly before the wrapper call"),
    WeavePoint(call=UPDATE_CALL, placement="two statements before the wrapper call"),
)

#: Calls required directly after a wrapper call, nearest-first.
CALL_SITE_POSTLUDE: Tuple[WeavePoint, ...] = (
    WeavePoint(call=STOP_MONITOR_CALL, placement="directly after the wrapper call"),
    WeavePoint(call=LOG_CALL, placement="two statements after the wrapper call"),
)

#: The full per-call-site statement sequence, in source order.
CALL_SITE_SEQUENCE: Tuple[str, ...] = (
    UPDATE_CALL,
    START_MONITOR_CALL,
    "<wrapper call>",
    STOP_MONITOR_CALL,
    LOG_CALL,
)
