"""Declarative mARGOt configuration (the XML-config equivalent).

The real mARGOt is configured through an XML file listing monitors,
goals and optimization states; *margot_heel* generates the glue from
it.  Here the same information is expressed as JSON / plain dicts:

.. code-block:: python

    CONFIG = {
        "kernel": "2mm",
        "states": [
            {
                "name": "efficiency",
                "rank": {
                    "direction": "maximize",
                    "composition": "geometric",
                    "fields": [
                        {"metric": "throughput", "coefficient": 1.0},
                        {"metric": "power", "coefficient": -2.0},
                    ],
                },
            },
            {
                "name": "budget",
                "rank": {
                    "direction": "minimize",
                    "composition": "linear",
                    "fields": [{"metric": "time", "coefficient": 1.0}],
                },
                "constraints": [
                    {
                        "metric": "power",
                        "comparison": "le",
                        "value": 100.0,
                        "confidence": 1.0,
                        "priority": 10,
                    }
                ],
            },
        ],
        "active_state": "efficiency",
    }

``load_config`` validates the document into a
:class:`MargotConfiguration`; ``apply_configuration`` installs it on an
AS-RTM (or on an :class:`~repro.core.adaptive.AdaptiveApplication`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import (
    Constraint,
    OptimizationState,
    Rank,
    RankComposition,
    RankDirection,
    RankField,
)

_COMPARISONS = {
    "lt": ComparisonFunction.LESS,
    "le": ComparisonFunction.LESS_OR_EQUAL,
    "gt": ComparisonFunction.GREATER,
    "ge": ComparisonFunction.GREATER_OR_EQUAL,
    "<": ComparisonFunction.LESS,
    "<=": ComparisonFunction.LESS_OR_EQUAL,
    ">": ComparisonFunction.GREATER,
    ">=": ComparisonFunction.GREATER_OR_EQUAL,
}


class ConfigError(ValueError):
    """Raised on malformed configuration documents."""


@dataclass
class MargotConfiguration:
    """A validated mARGOt configuration."""

    kernel: str
    states: List[OptimizationState]
    active_state: Optional[str] = None

    def state_names(self) -> List[str]:
        return [state.name for state in self.states]


def _require(document: Mapping, key: str, context: str):
    if key not in document:
        raise ConfigError(f"missing {key!r} in {context}")
    return document[key]


def _parse_rank(document: Mapping) -> Rank:
    direction_text = str(_require(document, "direction", "rank")).lower()
    try:
        direction = RankDirection(direction_text)
    except ValueError:
        raise ConfigError(f"unknown rank direction {direction_text!r}") from None
    composition_text = str(document.get("composition", "linear")).lower()
    try:
        composition = RankComposition(composition_text)
    except ValueError:
        raise ConfigError(f"unknown rank composition {composition_text!r}") from None
    fields_doc = _require(document, "fields", "rank")
    if not fields_doc:
        raise ConfigError("rank needs at least one field")
    fields = tuple(
        RankField(
            metric=str(_require(entry, "metric", "rank field")),
            coefficient=float(entry.get("coefficient", 1.0)),
        )
        for entry in fields_doc
    )
    return Rank(direction=direction, composition=composition, fields=fields)


def _parse_constraint(document: Mapping) -> Constraint:
    metric = str(_require(document, "metric", "constraint"))
    comparison_text = str(_require(document, "comparison", "constraint")).lower()
    if comparison_text not in _COMPARISONS:
        raise ConfigError(f"unknown comparison {comparison_text!r}")
    value = float(_require(document, "value", "constraint"))
    return Constraint(
        goal=Goal(metric, _COMPARISONS[comparison_text], value),
        priority=int(document.get("priority", 10)),
        confidence=float(document.get("confidence", 0.0)),
    )


def _parse_state(document: Mapping) -> OptimizationState:
    name = str(_require(document, "name", "state"))
    rank = _parse_rank(_require(document, "rank", f"state {name!r}"))
    state = OptimizationState(name=name, rank=rank)
    for entry in document.get("constraints", []):
        state.add_constraint(_parse_constraint(entry))
    return state


def load_config(source: Union[str, Path, Mapping]) -> MargotConfiguration:
    """Parse and validate a configuration document.

    ``source`` may be a mapping, a JSON string, or a path to a JSON
    file.
    """
    if isinstance(source, Mapping):
        document = source
    else:
        try:
            is_file = Path(str(source)).exists()
        except OSError:
            is_file = False  # raw JSON text longer than a valid path
        text = Path(source).read_text() if is_file else str(source)
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid JSON configuration: {error}") from None
    kernel = str(_require(document, "kernel", "configuration"))
    states_doc = _require(document, "states", "configuration")
    if not states_doc:
        raise ConfigError("configuration needs at least one state")
    states = [_parse_state(entry) for entry in states_doc]
    names = [state.name for state in states]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate state names in {names}")
    active = document.get("active_state")
    if active is not None and active not in names:
        raise ConfigError(f"active_state {active!r} is not a defined state")
    return MargotConfiguration(kernel=kernel, states=states, active_state=active)


def apply_configuration(config: MargotConfiguration, target) -> None:
    """Install every state of ``config`` on ``target``.

    ``target`` is anything with mARGOt's state API — an
    :class:`~repro.margot.asrtm.ApplicationRuntimeManager` or an
    :class:`~repro.core.adaptive.AdaptiveApplication`.
    """
    for state in config.states:
        activate = config.active_state == state.name
        target.add_state(state, activate=activate)
    if config.active_state is not None:
        target.switch_state(config.active_state)
