"""mARGOt: the dynamic application autotuner (Gadioli et al.).

Re-implementation of the mARGOt framework the paper integrates:

* a **monitoring infrastructure** (:mod:`repro.margot.monitor`)
  gathering runtime insight through circular-buffer statistics;
* an **Application-Specific Run-Time Manager**
  (:mod:`repro.margot.asrtm`) selecting the most suitable
  configuration from (i) application requirements expressed as a
  constrained multi-objective optimization problem
  (:mod:`repro.margot.state`), (ii) design-time knowledge from
  profiling (:mod:`repro.margot.knowledge`) and (iii) feedback from
  the monitors (the MAPE-K loop's knowledge reaction);
* a thin **application-facing manager** (:mod:`repro.margot.manager`)
  mirroring the init / start / stop / update calls that the LARA
  Autotuner strategy weaves around the kernel wrapper.
"""

from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.knowledge import KnowledgeBase, OperatingPoint
from repro.margot.manager import MargotManager
from repro.margot.monitor import (
    EnergyMonitor,
    Monitor,
    PowerMonitor,
    ThroughputMonitor,
    TimeMonitor,
)
from repro.margot.state import (
    Constraint,
    OptimizationState,
    Rank,
    RankComposition,
    RankDirection,
    RankField,
)

__all__ = [
    "ApplicationRuntimeManager",
    "ComparisonFunction",
    "Constraint",
    "EnergyMonitor",
    "Goal",
    "KnowledgeBase",
    "MargotManager",
    "Monitor",
    "OperatingPoint",
    "OptimizationState",
    "PowerMonitor",
    "Rank",
    "RankComposition",
    "RankDirection",
    "RankField",
    "ThroughputMonitor",
    "TimeMonitor",
]
