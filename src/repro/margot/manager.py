"""The application-facing mARGOt facade.

This mirrors the generated ``margot.h`` interface that the LARA
Autotuner strategy weaves into the application:

.. code-block:: c

   margot::init();
   while (work) {
     margot::kernel::update(&cf, &nt, &bind);   /* pick configuration  */
     margot::kernel::start_monitor();
     kernel_wrapper(cf, nt, bind, ...);
     margot::kernel::stop_monitor();
     margot::kernel::log();
   }

Here the same sequence is exposed to Python callers (and to the
simulated adaptive application in :mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Mapping, Optional

from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.knowledge import KnowledgeBase, OperatingPoint
from repro.margot.monitor import Monitor, PowerMonitor, ThroughputMonitor, TimeMonitor
from repro.obs import NULL_OBS, Observability


@dataclass
class LogRecord:
    """One row of mARGOt's log() output."""

    timestamp: float
    knobs: Mapping[str, object]
    observations: Mapping[str, float]
    state: str


class MargotManager:
    """Per-kernel manager bundling the AS-RTM and its monitors."""

    def __init__(
        self,
        kernel_name: str,
        knowledge: KnowledgeBase,
        obs: Optional[Observability] = None,
    ) -> None:
        self.kernel_name = kernel_name
        self._obs = obs if obs is not None else NULL_OBS
        self._asrtm = ApplicationRuntimeManager(knowledge, audit=self._obs.audit)
        if getattr(self._obs, "alerts", None) is not None:
            self._asrtm.attach_alerts(self._obs.alerts)
        self._time_monitor = TimeMonitor()
        self._throughput_monitor = ThroughputMonitor()
        self._power_monitor = PowerMonitor()
        self._asrtm.attach_monitor("time", self._time_monitor)
        self._asrtm.attach_monitor("throughput", self._throughput_monitor)
        self._asrtm.attach_monitor("power", self._power_monitor)
        self._log: List[LogRecord] = []
        self._region_open = False

    # -- the four weaved calls -----------------------------------------------

    def update(self, now: Optional[float] = None) -> OperatingPoint:
        """Select the configuration for the next region execution.

        ``now`` (virtual time) only stamps adaptation-audit entries."""
        return self._asrtm.update(now=now)

    def start_monitor(self, now: float) -> None:
        if self._region_open:
            raise RuntimeError("region started twice")
        self._region_open = True
        self._time_monitor.start(now)
        self._throughput_monitor.start(now)

    def stop_monitor(self, now: float, power_w: Optional[float] = None) -> None:
        if not self._region_open:
            raise RuntimeError("region stopped before start")
        self._region_open = False
        self._time_monitor.stop(now)
        self._throughput_monitor.stop(now)
        if power_w is not None:
            self._power_monitor.push(power_w)

    def log(self, now: float) -> LogRecord:
        """Record (and return) the current observations."""
        current = self._asrtm.current
        observations: Dict[str, float] = {}
        for name, monitor in (
            ("time", self._time_monitor),
            ("throughput", self._throughput_monitor),
            ("power", self._power_monitor),
        ):
            if not monitor.empty:
                observations[name] = monitor.last()
        record = LogRecord(
            timestamp=now,
            knobs=dict(current.knobs) if current is not None else {},
            observations=observations,
            state=self._asrtm.active_state.name,
        )
        self._log.append(record)
        if self._obs.enabled:
            # keep the metrics registry's view of the monitors current
            self._obs.absorb_monitors(self.monitors)
        return record

    # -- passthroughs -----------------------------------------------------------

    @property
    def obs(self) -> Observability:
        return self._obs

    @property
    def asrtm(self) -> ApplicationRuntimeManager:
        return self._asrtm

    @property
    def records(self) -> List[LogRecord]:
        return list(self._log)

    @property
    def monitors(self) -> Dict[str, Monitor]:
        return {
            "time": self._time_monitor,
            "throughput": self._throughput_monitor,
            "power": self._power_monitor,
        }
