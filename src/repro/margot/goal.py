"""Goals: the atoms of mARGOt application requirements.

A goal compares an observed or predicted value of a metric (or a
software knob) against a target, e.g. *average power <= 102 W*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComparisonFunction(enum.Enum):
    """How a goal compares the subject value with the target."""

    LESS = "lt"
    LESS_OR_EQUAL = "le"
    GREATER = "gt"
    GREATER_OR_EQUAL = "ge"

    def compare(self, value: float, target: float) -> bool:
        if self is ComparisonFunction.LESS:
            return value < target
        if self is ComparisonFunction.LESS_OR_EQUAL:
            return value <= target
        if self is ComparisonFunction.GREATER:
            return value > target
        return value >= target


@dataclass
class Goal:
    """A named requirement on one field.

    Attributes:
        field: metric or knob name the goal constrains.
        comparison: the comparison function.
        value: the target; mutable, because SOCRATES changes
            requirements at runtime (the whole point of Figure 5).
    """

    field: str
    comparison: ComparisonFunction
    value: float

    def check(self, observed: float) -> bool:
        """Does ``observed`` satisfy this goal?"""
        return self.comparison.compare(observed, self.value)

    def violation(self, observed: float) -> float:
        """How far ``observed`` is from satisfying the goal (0 if met).

        Normalized by the goal target so violations on different
        metrics are comparable when the AS-RTM must relax constraints.
        """
        if self.check(observed):
            return 0.0
        scale = max(abs(self.value), 1e-12)
        distance = abs(observed - self.value) / scale
        # a strict comparison violated at exact equality still violates:
        # report an infinitesimal rather than zero
        return max(distance, 1e-15)

    def __str__(self) -> str:
        symbol = {
            ComparisonFunction.LESS: "<",
            ComparisonFunction.LESS_OR_EQUAL: "<=",
            ComparisonFunction.GREATER: ">",
            ComparisonFunction.GREATER_OR_EQUAL: ">=",
        }[self.comparison]
        return f"{self.field} {symbol} {self.value}"
