"""SOCRATES reproduction: seamless online compiler and system runtime
autotuning for energy-aware applications (DATE 2018).

Quickstart::

    from repro import SocratesToolflow, load_benchmark

    flow = SocratesToolflow()
    result = flow.build(load_benchmark("2mm"))
    app = result.adaptive             # the adaptive application
    app.add_state(...)                # define requirements
    record = app.run_once()           # autotuned execution

Package map (see DESIGN.md for the full inventory):

==================  =====================================================
``repro.core``      the SOCRATES toolflow and adaptive application
``repro.cir``       C-subset parser / AST / printer / analyses
``repro.lara``      aspect weaving (Multiversioning, Autotuner, Table I)
``repro.milepost``  static code-feature extraction
``repro.cobayn``    Bayesian-network compiler autotuning
``repro.gcc``       flag space + analytical compiler model
``repro.machine``   simulated 2-socket NUMA platform (OpenMP, power)
``repro.margot``    the mARGOt dynamic autotuner
``repro.polybench`` the twelve benchmark applications
``repro.dse``       design-space exploration and Pareto tools
==================  =====================================================
"""

from repro.core import (
    AdaptiveApplication,
    Phase,
    Scenario,
    SocratesToolflow,
    ToolflowResult,
)
from repro.polybench.suite import BENCHMARK_NAMES, all_apps, load as load_benchmark

__version__ = "1.0.0"

__all__ = [
    "AdaptiveApplication",
    "BENCHMARK_NAMES",
    "Phase",
    "Scenario",
    "SocratesToolflow",
    "ToolflowResult",
    "all_apps",
    "load_benchmark",
    "__version__",
]
