"""Online SLO alerting over the virtual-time telemetry stream.

Three detector families watch the stream the moment telemetry is
produced, instead of a human reading ``obs diff`` after the fact:

* :class:`EwmaDetector` — exponentially weighted mean/variance with a
  z-score trigger, for per-stage durations and engine cache-hit rates
  (slow drifts and spikes against a self-learned baseline);
* :class:`CusumDetector` — two-sided CUSUM change-point detection for
  the ``build_timeline()``-equivalent power(t) series (persistent
  level shifts a z-score would dismiss sample by sample);
* :class:`BurnRateDetector` — multi-window (short + long) burn-rate
  alerting over an :class:`~repro.obs.energy.EnergyBudget`, the
  SRE-style construction: the long window proves the budget really is
  burning, the short window proves it is *still* burning, and an
  armed/disarmed latch provides hysteresis so one alert fires per
  excursion instead of one per sample.

The :class:`AlertEngine` wires detectors to the
:class:`~repro.obs.stream.TelemetryBus` and the
:class:`~repro.obs.flight.FlightRecorder`; every fired alert snapshots
the flight rings into a deterministic incident bundle and cross-links
itself into the adaptation audit log.  All detector state advances on
*virtual* time only, so seeded runs produce identical verdicts on any
engine backend.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.audit import AdaptationAuditLog, IncidentTrace
from repro.obs.energy import EnergyBudget
from repro.obs.flight import FlightRecorder, IncidentBundle
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.stream import ALERT, AUDIT, ENERGY, METRIC, StreamEvent, TelemetryBus

PathLike = Union[str, Path]

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertPolicy",
    "BurnRateDetector",
    "CusumDetector",
    "EwmaDetector",
    "latency_slos_from_baselines",
]

_EPS = 1e-12


# -- detectors ----------------------------------------------------------------


class EwmaDetector:
    """EWMA mean/variance with a z-score breach trigger.

    The RiskMetrics recursion: ``m ← (1-α)m + αx`` and
    ``v ← (1-α)(v + α(x-m)²)``, evaluated against the *pre-update*
    statistics so a spike is judged by the baseline it deviates from,
    not by a baseline it already contaminated.  No verdict is issued
    until ``min_samples`` observations have primed the state.
    """

    def __init__(
        self, alpha: float = 0.2, z_threshold: float = 4.0, min_samples: int = 16
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self.mean = 0.0
        self.variance = 0.0
        self.count = 0

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; return the breaching z-score, else None."""
        verdict: Optional[float] = None
        if self.count == 0:
            self.mean = value
        else:
            diff = value - self.mean
            std = math.sqrt(self.variance)
            if self.count >= self.min_samples and std > _EPS:
                z = diff / std
                if abs(z) > self.z_threshold:
                    verdict = z
            alpha = self.alpha
            incr = alpha * diff
            self.mean += incr
            self.variance = (1.0 - alpha) * (self.variance + diff * incr)
        self.count += 1
        return verdict


class CusumDetector:
    """Two-sided CUSUM change-point detector, self-scaled.

    The first ``min_samples`` observations are a warm-up that
    estimates the reference mean and spread; afterwards the classic
    recursions ``s⁺ ← max(0, s⁺ + z - k)`` / ``s⁻ ← max(0, s⁻ - z - k)``
    accumulate standardized drift (``z = (x - μ₀)/σ₀``).  Crossing
    ``h`` declares a change point, returns the signed statistic, and
    re-enters warm-up so the *new* level becomes the next reference —
    CUSUM segments the series instead of alarming forever after one
    shift.  :meth:`reset` re-warms explicitly: the MAPE-K loop calls
    it on a deliberate operating-point switch so an *intended* power
    change is not reported as an anomaly.
    """

    def __init__(self, k: float = 0.5, h: float = 8.0, min_samples: int = 24) -> None:
        if min_samples < 2:
            raise ValueError(f"CUSUM needs >= 2 warm-up samples, got {min_samples}")
        self.k = k
        self.h = h
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self._warmup: List[float] = []
        self.reference_mean = 0.0
        self.reference_std = 0.0
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.changepoints = 0

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; return the signed CUSUM statistic on a
        change point (positive = level shifted up), else None."""
        if len(self._warmup) < self.min_samples:
            self._warmup.append(value)
            if len(self._warmup) == self.min_samples:
                mean = sum(self._warmup) / len(self._warmup)
                var = sum((x - mean) ** 2 for x in self._warmup) / len(self._warmup)
                self.reference_mean = mean
                self.reference_std = math.sqrt(var)
            return None
        std = self.reference_std
        if std <= _EPS:
            # A perfectly flat warm-up: any deviation beyond fp noise
            # is a shift; scale by the mean instead.
            std = max(abs(self.reference_mean) * 1e-6, _EPS)
        z = (value - self.reference_mean) / std
        self.s_pos = max(0.0, self.s_pos + z - self.k)
        self.s_neg = max(0.0, self.s_neg - z - self.k)
        if self.s_pos > self.h or self.s_neg > self.h:
            statistic = self.s_pos if self.s_pos > self.s_neg else -self.s_neg
            self.changepoints += 1
            self.reset()
            return statistic
        return None


class BurnRateDetector:
    """Multi-window burn-rate alerting over one energy budget.

    Consumes the power(t) step function as ``(start, end, watts)``
    segments (exactly the active segments ``build_timeline()`` would
    reconstruct).  The burn rate of a window is its time-averaged
    power divided by the budget: > ``factor`` means the budget is
    burning faster than allowed.  An alert needs **both** windows
    burning — the long one filters single-segment spikes, the short
    one guarantees the condition is current — and the armed/disarmed
    latch rearms only after the short window drops back under the
    factor.  Windows are segment-quantized (a segment is in the window
    while its end lies within it), keeping updates O(1) amortized and
    fully deterministic.
    """

    def __init__(
        self,
        budget: EnergyBudget,
        short_s: float = 0.25,
        long_s: float = 1.0,
        factor: float = 1.0,
    ) -> None:
        if short_s <= 0 or long_s <= short_s:
            raise ValueError(
                f"burn-rate windows need 0 < short ({short_s}) < long ({long_s})"
            )
        self.budget = budget
        self.short_s = short_s
        self.long_s = long_s
        self.factor = factor
        self.armed = True
        self.fired = 0
        self.total_energy_j = 0.0
        self.energy_alerted = False
        self._short: Deque[Tuple[float, float, float]] = deque()  # (end, dt, joules)
        self._long: Deque[Tuple[float, float, float]] = deque()
        # running [seconds, joules] per window, kept as scalars — the
        # per-segment update is pure float arithmetic plus two deque ops
        self._short_dt = 0.0
        self._short_j = 0.0
        self._long_dt = 0.0
        self._long_j = 0.0
        self._first_end: Optional[float] = None

    def burn_rates(self) -> Tuple[float, float]:
        """Current (short, long) burn rates; 0 while a window is empty."""
        limit = self.budget.power_w
        if not limit:
            return (0.0, 0.0)
        short = (
            self._short_j / self._short_dt / limit
            if self._short_dt > _EPS
            else 0.0
        )
        long_ = (
            self._long_j / self._long_dt / limit if self._long_dt > _EPS else 0.0
        )
        return (short, long_)

    def update(
        self, start: float, end: float, watts: float
    ) -> Optional[Dict[str, float]]:
        """Feed one power segment; return breach details on firing."""
        dt = end - start
        if dt < 0.0:
            dt = 0.0
        joules = watts * dt
        self.total_energy_j += joules
        limit = self.budget.power_w
        if limit is None:
            return None
        item = (end, dt, joules)
        ring = self._short
        ring.append(item)
        self._short_dt += dt
        self._short_j += joules
        cutoff = end - self.short_s
        while ring[0][0] <= cutoff:
            _, old_dt, old_joules = ring.popleft()
            self._short_dt -= old_dt
            self._short_j -= old_joules
        ring = self._long
        ring.append(item)
        self._long_dt += dt
        self._long_j += joules
        cutoff = end - self.long_s
        while ring[0][0] <= cutoff:
            _, old_dt, old_joules = ring.popleft()
            self._long_dt -= old_dt
            self._long_j -= old_joules
        if self._first_end is None:
            self._first_end = end
        # Both windows must have real coverage before a verdict: an
        # alert off a half-filled long window would be a spike alert.
        if end - self._first_end < self.long_s:
            return None
        short, long_ = self.burn_rates()
        if self.armed:
            if short > self.factor and long_ > self.factor:
                self.armed = False
                self.fired += 1
                return {
                    "short_burn": short,
                    "long_burn": long_,
                    "watts": watts,
                    "t": end,
                }
        elif short <= self.factor:
            self.armed = True
        return None


# -- policy -------------------------------------------------------------------


@dataclass
class AlertPolicy:
    """Configuration of the alerting layer (all knobs virtual-time).

    ``watch_span_durations`` defaults to off because span durations
    are *wall-clock*: enabling it is useful interactively but makes
    alert counts (and therefore incident fingerprints) depend on
    machine noise, which the deterministic consumers (bench scenarios,
    ``obs incidents record``) must not do.
    """

    budgets: Tuple[EnergyBudget, ...] = ()
    burn_short_s: float = 0.25
    burn_long_s: float = 1.0
    burn_factor: float = 1.0
    cusum_k: float = 0.5
    cusum_h: float = 8.0
    cusum_min_samples: int = 24
    cusum_domain: str = "package"
    ewma_alpha: float = 0.2
    ewma_z: float = 4.0
    ewma_min_samples: int = 16
    watch_span_durations: bool = False
    latency_slos: Mapping[str, float] = field(default_factory=dict)
    latency_short: int = 16
    latency_long: int = 64
    latency_fraction: float = 0.25
    flight_capacity: int = 256
    cooldown_s: float = 0.25


def latency_slos_from_baselines(
    baseline_dir: PathLike, slack: float = 5.0
) -> Dict[str, float]:
    """Per-span latency limits derived from ``BENCH_*.json`` baselines.

    Each stage's limit is ``slack ×`` its baseline mean duration
    (median total over the repeat count); where several baselines
    cover the same span name the loosest limit wins, since the SLO
    must hold across every workload that produces the span.
    """
    from repro.bench.baseline import BaselineNotFoundError, load_baselines

    try:
        baselines = load_baselines(baseline_dir)
    except BaselineNotFoundError:
        raise ValueError(f"{baseline_dir}: not a baseline directory") from None
    limits: Dict[str, float] = {}
    for baseline in baselines.values():
        for name, stage in baseline.stages.items():
            if not stage.count:
                continue
            limit = slack * stage.total_s.median / stage.count
            limits[name] = max(limits.get(name, 0.0), limit)
    return limits


# -- alerts -------------------------------------------------------------------


@dataclass(frozen=True)
class Alert:
    """One fired alert (immutable, fully serializable)."""

    name: str
    detector: str  # "ewma" | "cusum" | "burn_rate" | "slo_latency" | ...
    severity: str  # "warn" | "page"
    t: float
    value: float
    threshold: float
    message: str
    context: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "name": self.name,
            "detector": self.detector,
            "severity": self.severity,
            "t": self.t,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }
        if self.context:
            document["context"] = {
                key: self.context[key] for key in sorted(self.context)
            }
        return document


class _LatencyWindow:
    """Sliding violation-fraction windows for one span name."""

    __slots__ = ("limit_s", "ring", "short", "violations", "short_violations", "armed")

    def __init__(self, limit_s: float, long_n: int, short_n: int) -> None:
        self.limit_s = limit_s
        self.ring: Deque[bool] = deque(maxlen=long_n)
        self.short: Deque[bool] = deque(maxlen=short_n)
        self.violations = 0
        self.short_violations = 0
        self.armed = True

    def update(self, duration_s: float) -> Tuple[float, float]:
        violated = duration_s > self.limit_s
        if len(self.ring) == self.ring.maxlen and self.ring[0]:
            self.violations -= 1
        if len(self.short) == self.short.maxlen and self.short[0]:
            self.short_violations -= 1
        self.ring.append(violated)
        self.short.append(violated)
        if violated:
            self.violations += 1
            self.short_violations += 1
        return (
            self.short_violations / len(self.short),
            self.violations / len(self.ring),
        )


# -- the engine ---------------------------------------------------------------


class AlertEngine:
    """Streaming detectors + flight recorder + incident pipeline.

    The engine is the tracer's span sink and the adaptive loop's
    invocation hook.  Every event it consumes is (a) ringed into the
    flight recorder and (b) fed to the relevant detectors; a firing
    detector appends an :class:`Alert`, snapshots the rings into an
    :class:`~repro.obs.flight.IncidentBundle`, bumps the
    ``socrates_alerts_total`` / ``socrates_incidents_total`` counters
    and cross-links an :class:`~repro.obs.audit.IncidentTrace` into
    the adaptation audit log.
    """

    def __init__(
        self,
        policy: Optional[AlertPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[AdaptationAuditLog] = None,
        kernel: str = "",
    ) -> None:
        self.policy = policy or AlertPolicy()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.audit = audit
        self.kernel = kernel
        self.bus = TelemetryBus()
        self.flight = FlightRecorder(capacity=self.policy.flight_capacity)
        self.bus.subscribe(self.flight.record)
        self.alerts: List[Alert] = []
        self.incidents: List[IncidentBundle] = []
        self.suppressed = 0
        self.baseline = None  # optional BenchBaseline for attribution diffs
        self._last_fired: Dict[str, float] = {}
        self._cusum = CusumDetector(
            k=self.policy.cusum_k,
            h=self.policy.cusum_h,
            min_samples=self.policy.cusum_min_samples,
        )
        self._burn = [
            BurnRateDetector(
                budget,
                short_s=self.policy.burn_short_s,
                long_s=self.policy.burn_long_s,
                factor=self.policy.burn_factor,
            )
            for budget in self.policy.budgets
        ]
        # Any budget on a component/cluster plane needs the per-domain
        # breakdown of each record; the package plane comes for free.
        self._needs_domains = any(
            budget.domain != "package" for budget in self.policy.budgets
        )
        self._cusum_package = self.policy.cusum_domain == "package"
        # Span closures only feed detectors when the policy asks for
        # them; otherwise on_span is just the flight-ring append.
        self._span_checks = bool(
            self.policy.watch_span_durations or self.policy.latency_slos
        )
        self._duration_ewma: Dict[str, EwmaDetector] = {}
        self._metric_ewma: Dict[str, EwmaDetector] = {}
        self._latency: Dict[str, _LatencyWindow] = {}

    # -- helpers ---------------------------------------------------------------

    def _make_ewma(self) -> EwmaDetector:
        return EwmaDetector(
            alpha=self.policy.ewma_alpha,
            z_threshold=self.policy.ewma_z,
            min_samples=self.policy.ewma_min_samples,
        )

    def _fire(self, alert: Alert) -> None:
        last = self._last_fired.get(alert.name)
        if last is not None and alert.t - last < self.policy.cooldown_s:
            self.suppressed += 1
            self.metrics.counter(
                "socrates_alerts_suppressed_total",
                help="alerts swallowed by the per-alert cooldown",
            ).inc()
            return
        self._last_fired[alert.name] = alert.t
        self.alerts.append(alert)
        self.metrics.counter(
            "socrates_alerts_total",
            help="fired alerts by name and severity",
            labels={"alert": alert.name, "severity": alert.severity},
        ).inc()
        # The alert itself becomes a stream event *before* the
        # snapshot, so the bundle's alert ring ends with this alert.
        self.bus.publish(
            StreamEvent(
                ALERT,
                alert.t,
                alert.name,
                alert.value,
                attributes={
                    "severity": alert.severity,
                    "detector": alert.detector,
                    "threshold": alert.threshold,
                    "message": alert.message,
                },
            )
        )
        bundle = IncidentBundle.build(
            kernel=self.kernel,
            alert=alert.as_dict(),
            flight=self.flight,
            baseline=self.baseline,
        )
        self.incidents.append(bundle)
        self.metrics.counter(
            "socrates_incidents_total", help="incident bundles opened"
        ).inc()
        if self.audit is not None:
            self.audit.record_incident(
                IncidentTrace(
                    incident_id=bundle.incident_id,
                    alert=alert.name,
                    detector=alert.detector,
                    severity=alert.severity,
                    t=alert.t,
                    kernel=self.kernel,
                    message=alert.message,
                    adaptation_sequence=self.audit.next_sequence(),
                )
            )

    # -- producers -------------------------------------------------------------

    def on_span(self, span) -> None:
        """Tracer sink: consume one span closure at bus virtual time."""
        t = self.bus._now
        # Inlined FlightRecorder._append_span: the sink fires for every
        # span closure in the run, and the bus high-water mark never
        # regresses, so the monotone check is satisfied by construction.
        flight = self.flight
        ring = flight._span_ring
        if len(ring) == flight.capacity:
            flight.evicted += 1
            if flight.on_evict is not None:
                flight.on_evict(flight._wrap_span(ring[0]))
        ring.append((t, span))
        flight._span_last_t = t
        flight.recorded += 1
        if not self._span_checks:
            return
        duration = span.duration_s
        policy = self.policy
        if policy.watch_span_durations:
            detector = self._duration_ewma.get(span.name)
            if detector is None:
                detector = self._duration_ewma[span.name] = self._make_ewma()
            z = detector.update(duration)
            if z is not None:
                self._fire(
                    Alert(
                        name=f"span_duration:{span.name}",
                        detector="ewma",
                        severity="warn",
                        t=t,
                        value=duration,
                        threshold=policy.ewma_z,
                        message=(
                            f"span {span.name!r} took {duration * 1e3:.3f} ms, "
                            f"z={z:+.1f} against its EWMA baseline "
                            f"(mean {detector.mean * 1e3:.3f} ms)"
                        ),
                        context={"z": z, "mean_s": detector.mean},
                    )
                )
        limit = policy.latency_slos.get(span.name) if policy.latency_slos else None
        if limit is not None:
            window = self._latency.get(span.name)
            if window is None:
                window = self._latency[span.name] = _LatencyWindow(
                    limit, policy.latency_long, policy.latency_short
                )
            short_frac, long_frac = window.update(duration)
            burning = (
                len(window.ring) == window.ring.maxlen
                and short_frac > policy.latency_fraction
                and long_frac > policy.latency_fraction
            )
            if window.armed and burning:
                window.armed = False
                self._fire(
                    Alert(
                        name=f"latency_slo:{span.name}",
                        detector="slo_latency",
                        severity="page",
                        t=t,
                        value=short_frac,
                        threshold=policy.latency_fraction,
                        message=(
                            f"span {span.name!r} violated its "
                            f"{limit * 1e3:.3f} ms SLO in "
                            f"{short_frac:.0%} of the last "
                            f"{len(window.short)} closures "
                            f"({long_frac:.0%} over {len(window.ring)})"
                        ),
                        context={
                            "limit_s": limit,
                            "short_fraction": short_frac,
                            "long_fraction": long_frac,
                        },
                    )
                )
            elif not window.armed and short_frac <= policy.latency_fraction:
                window.armed = True

    def observe_invocation(self, kernel: str, record, app=None) -> None:
        """Adaptive-loop hook: one finished invocation's energy sample."""
        if not self.kernel:
            self.kernel = kernel
        end = record.timestamp
        start = end - record.time_s
        powers: Optional[Mapping[str, float]] = None
        if self._needs_domains and app is not None:
            from repro.obs.energy import attribute_record

            powers = attribute_record(app, record)
        # High-rate fast path: the sample goes straight to the flight
        # recorder (the bus's only production subscriber) as a raw
        # ``(t, record)`` pair — no event allocation per invocation.
        # The bus clock still advances, and the recorder enforces the
        # same monotone virtual-time contract ``publish`` would.
        bus = self.bus
        if end > bus._now:
            bus._now = end
        bus.events_published += 1
        # Inlined FlightRecorder._append_energy — like on_span, the
        # monotone check is satisfied by construction here.
        flight = self.flight
        ring = flight._energy_ring
        if len(ring) == flight.capacity:
            flight.evicted += 1
            if flight.on_evict is not None:
                flight.on_evict(flight._wrap_energy(ring[0]))
        ring.append((end, record))
        flight._energy_last_t = end
        flight.recorded += 1
        self._ingest_power(start, end, powers, record.power_w)

    def observe_timeline(self, timeline) -> List[Alert]:
        """Replay a reconstructed power(t) series through the detectors.

        The streaming path and ``build_timeline()`` agree on the
        active segments by construction; this entry point exists for
        post-hoc analysis of a timeline that was *not* streamed (e.g.
        a loaded energy ledger).  Returns the alerts fired during the
        replay.
        """
        before = len(self.alerts)
        for sample in timeline.samples:
            if sample.kind != "active":
                self.bus.advance(sample.end_s)
                continue
            self.bus.publish(
                StreamEvent(
                    ENERGY,
                    sample.end_s,
                    "power.package",
                    sample.power_w.get("package", 0.0),
                    payload=sample,
                )
            )
            self._ingest_power(sample.start_s, sample.end_s, sample.power_w)
        return self.alerts[before:]

    def _ingest_power(
        self,
        start: float,
        end: float,
        powers: Optional[Mapping[str, float]] = None,
        package_w: float = 0.0,
    ) -> None:
        """Feed one power segment to CUSUM and the budget detectors.

        ``powers`` carries the per-domain breakdown; the package-only
        hot path passes ``powers=None`` plus ``package_w`` so the
        common case (every budget and the CUSUM on the package plane)
        costs no dict at all.
        """
        if powers is not None:
            watched = powers.get(self.policy.cusum_domain, 0.0)
        else:
            watched = package_w if self._cusum_package else 0.0
        statistic = self._cusum.update(watched)
        if statistic is not None:
            self._fire(
                Alert(
                    name=f"power_changepoint:{self.policy.cusum_domain}",
                    detector="cusum",
                    severity="warn",
                    t=end,
                    value=watched,
                    threshold=self.policy.cusum_h,
                    message=(
                        f"CUSUM change point on the "
                        f"{self.policy.cusum_domain} power plane: "
                        f"level shifted {'up' if statistic > 0 else 'down'} "
                        f"from {self._reference_w():.2f} W "
                        f"(now {watched:.2f} W, statistic {statistic:+.1f})"
                    ),
                    context={
                        "domain": self.policy.cusum_domain,
                        "statistic": statistic,
                    },
                )
            )
        for detector in self._burn:
            budget = detector.budget
            if powers is not None:
                watts = powers.get(budget.domain)
                if watts is None:
                    continue
            elif budget.domain == "package":
                watts = package_w
            else:
                continue
            breach = detector.update(start, end, watts)
            if breach is not None:
                self._fire(
                    Alert(
                        name=f"budget_burn:{budget.name}",
                        detector="burn_rate",
                        severity="page",
                        t=end,
                        value=breach["short_burn"],
                        threshold=self.policy.burn_factor,
                        message=(
                            f"budget {budget.name!r} burning on the "
                            f"{budget.domain} plane: "
                            f"{breach['short_burn']:.2f}x over "
                            f"{detector.short_s:g}s and "
                            f"{breach['long_burn']:.2f}x over "
                            f"{detector.long_s:g}s of the "
                            f"{budget.power_w:g} W limit"
                        ),
                        context={
                            "domain": budget.domain,
                            "budget": budget.name,
                            "limit_w": budget.power_w,
                            "short_burn": breach["short_burn"],
                            "long_burn": breach["long_burn"],
                        },
                    )
                )
            if (
                budget.peak_power_w is not None
                and watts > budget.peak_power_w
                and detector.armed
            ):
                detector.armed = False
                self._fire(
                    Alert(
                        name=f"budget_peak:{budget.name}",
                        detector="peak_power",
                        severity="page",
                        t=end,
                        value=watts,
                        threshold=budget.peak_power_w,
                        message=(
                            f"budget {budget.name!r}: instantaneous "
                            f"{watts:.2f} W exceeds the "
                            f"{budget.peak_power_w:g} W peak limit on the "
                            f"{budget.domain} plane"
                        ),
                        context={"domain": budget.domain, "budget": budget.name},
                    )
                )
            if (
                budget.energy_j is not None
                and not detector.energy_alerted
                and detector.total_energy_j > budget.energy_j
            ):
                detector.energy_alerted = True
                self._fire(
                    Alert(
                        name=f"budget_energy:{budget.name}",
                        detector="energy_total",
                        severity="page",
                        t=end,
                        value=detector.total_energy_j,
                        threshold=budget.energy_j,
                        message=(
                            f"budget {budget.name!r}: cumulative "
                            f"{detector.total_energy_j:.2f} J exceeds the "
                            f"{budget.energy_j:g} J allowance on the "
                            f"{budget.domain} plane"
                        ),
                        context={"domain": budget.domain, "budget": budget.name},
                    )
                )

    def _reference_w(self) -> float:
        return self._cusum.reference_mean

    def observe_engine(self, counters) -> None:
        """Metric-update hook: EWMA over the engine cache-hit rates."""
        t = self.bus.now
        for kind, hits, misses in (
            ("compile", counters.compile_hits, counters.compile_misses),
            ("profile", counters.profile_hits, counters.profile_misses),
            ("truth", counters.truth_hits, counters.truth_misses),
        ):
            total = hits + misses
            if total == 0:
                continue
            rate = hits / total
            name = f"cache_hit_rate:{kind}"
            self.bus.publish(
                StreamEvent(
                    METRIC,
                    t,
                    name,
                    rate,
                    attributes={"hits": hits, "misses": misses},
                )
            )
            detector = self._metric_ewma.get(name)
            if detector is None:
                detector = self._metric_ewma[name] = self._make_ewma()
            z = detector.update(rate)
            if z is not None:
                self._fire(
                    Alert(
                        name=name,
                        detector="ewma",
                        severity="warn",
                        t=t,
                        value=rate,
                        threshold=self.policy.ewma_z,
                        message=(
                            f"{kind} cache hit rate {rate:.1%} deviates "
                            f"z={z:+.1f} from its EWMA baseline "
                            f"({detector.mean:.1%})"
                        ),
                        context={"z": z, "mean": detector.mean},
                    )
                )

    def observe_adaptation(self, now: float, state: str, winner, entry=None) -> None:
        """MAPE-K hook: a deliberate operating-point switch happened.

        Publishes the switch onto the stream (so incident windows show
        the surrounding adaptations) and re-warms the CUSUM reference:
        an *intended* power-level change is not a change-point anomaly.
        """
        attributes: Dict[str, object] = {"state": state}
        if winner:
            attributes["winner"] = dict(winner)
        sequence = -1
        if entry is not None:
            sequence = entry.sequence
            attributes["sequence"] = entry.sequence
            attributes["reason"] = entry.reason
        self.bus.publish(
            StreamEvent(
                AUDIT,
                max(self.bus.now, now),
                "adaptation.switch",
                float(sequence),
                attributes=attributes,
            )
        )
        self._cusum.reset()

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "alerts": len(self.alerts),
            "suppressed": self.suppressed,
            "incidents": [bundle.incident_id for bundle in self.incidents],
            "events_published": self.bus.events_published,
            "flight": self.flight.counts(),
        }

    def write_incidents(self, directory: PathLike) -> List[Path]:
        """Write every incident bundle as ``INC_<id>.json``."""
        return [bundle.write(directory) for bundle in self.incidents]
