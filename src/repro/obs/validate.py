"""Validators for the exported observability artifacts.

Used by ``socrates obs validate`` and the CI observability smoke job.
Each validator raises :class:`ValueError` with a precise message on
the first problem found, and returns a small summary dict on success.

* :func:`validate_chrome_trace` — the document parses, every span
  event carries the required ``trace_event`` fields, spans on the
  same (pid, tid) are properly nested (a child never outlives its
  enclosing span; no partial overlaps), and counter events (``"C"``,
  the energy observatory's power tracks) carry numeric values.
* :func:`validate_energy_ledger` — a ``socrates-energy/1`` ledger
  document is well-formed and conserves energy: every entry's
  component domains sum to its package joules, and entries sum to the
  document totals.
* :func:`validate_prometheus_text` — every line matches the text
  exposition grammar (``# HELP`` / ``# TYPE`` comments, bare or
  labelled sample lines with a float value) and histogram bucket
  series are cumulative.
* :func:`validate_events_jsonl` — every line is a JSON object with a
  known ``type``.
* :func:`validate_incident` — a ``socrates-incident/1`` flight-recorder
  bundle is well-formed, its window events are in virtual-time order,
  and its ``incident_id`` matches the recomputed content fingerprint.
* profiling observatory exports — ``.folded`` flame-graph stacks and
  ``socrates-profile/1`` JSON documents delegate to
  :func:`repro.obs.profile.validate_folded_text` /
  :func:`repro.obs.profile.validate_profile_json`, which check the
  folded grammar and the virtual-time conservation invariant.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

PathLike = Union[str, Path]

_REQUIRED_SPAN_FIELDS = ("name", "ph", "ts", "pid", "tid")

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
#: A label value: any run of characters where backslash only appears in
#: the three escapes the exposition format allows (\\, \", \n).  A raw
#: double-quote terminates the value, so an unescaped quote (or a stray
#: backslash) makes the whole line unmatchable — exactly what the
#: validator should reject.
_LABEL_VALUE = r"(?:\\\\|\\\"|\\n|[^\"\\])*"
_LABELS = (
    rf"\{{[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\""
    rf"(,[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\")*\}}"
)
_VALUE = r"[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|Inf|NaN)"
#: OpenMetrics exemplar suffix on histogram bucket lines:
#: `` # {span_id="17"} 0.0931`` — a labelset plus the exemplar value.
_EXEMPLAR = rf"( # {_LABELS} {_VALUE})?"
_SAMPLE_LINE = re.compile(rf"^{_METRIC_NAME}({_LABELS})? {_VALUE}( \d+)?{_EXEMPLAR}$")
_COMMENT_LINE = re.compile(rf"^# (HELP|TYPE) {_METRIC_NAME}( .*)?$")
_ONE_LABEL = re.compile(rf"[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\"")

#: Tolerance when checking span containment, in microseconds.
_NESTING_SLACK_US = 0.5


def _read_text(path: PathLike) -> str:
    try:
        return Path(path).read_text()
    except OSError as error:
        raise ValueError(f"{path}: cannot read artifact ({error})") from None


def _open_for_read(path: PathLike):
    try:
        return open(path)
    except OSError as error:
        raise ValueError(f"{path}: cannot read artifact ({error})") from None


def validate_chrome_trace(path: PathLike) -> Dict[str, object]:
    """Validate a Chrome ``trace_event`` JSON file; raise on problems."""
    try:
        document = json.loads(_read_text(path))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing top-level 'traceEvents' array")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: 'traceEvents' is not a list")
    spans: List[dict] = []
    counters = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue  # metadata events carry no timing
        if phase == "C":
            _check_counter_event(event, index, str(path))
            counters += 1
            continue
        for fieldname in _REQUIRED_SPAN_FIELDS:
            if fieldname not in event:
                raise ValueError(
                    f"{path}: event {index} ({event.get('name', '?')!r}) "
                    f"lacks required field {fieldname!r}"
                )
        if phase != "X":
            raise ValueError(
                f"{path}: event {index} has unsupported phase {phase!r} "
                "(expected complete events 'X' or counter events 'C')"
            )
        if "dur" not in event:
            raise ValueError(f"{path}: complete event {index} lacks 'dur'")
        for numeric in ("ts", "dur"):
            value = event[numeric]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"{path}: event {index} field {numeric!r} is not a "
                    f"non-negative number (got {value!r})"
                )
        spans.append(event)
    if not spans and not counters:
        raise ValueError(
            f"{path}: trace contains no span events ('X') or counter events ('C')"
        )
    _check_nesting(spans, str(path))
    return {"events": len(events), "spans": len(spans), "counters": counters}


def _check_counter_event(event: dict, index: int, label: str) -> None:
    """Counter events ("ph": "C") draw Perfetto's power tracks: they
    need a name, a non-negative timestamp, a pid, and an ``args``
    object mapping series names to finite numbers."""
    for fieldname in ("name", "ts", "pid", "args"):
        if fieldname not in event:
            raise ValueError(
                f"{label}: counter event {index} ({event.get('name', '?')!r}) "
                f"lacks required field {fieldname!r}"
            )
    ts = event["ts"]
    if not isinstance(ts, (int, float)) or ts < 0:
        raise ValueError(
            f"{label}: counter event {index} field 'ts' is not a "
            f"non-negative number (got {ts!r})"
        )
    args = event["args"]
    if not isinstance(args, dict) or not args:
        raise ValueError(
            f"{label}: counter event {index} 'args' must be a non-empty object"
        )
    for series, value in args.items():
        if not isinstance(value, (int, float)) or value != value:
            raise ValueError(
                f"{label}: counter event {index} series {series!r} value "
                f"is not a finite number (got {value!r})"
            )


def _check_nesting(spans: List[dict], label: str) -> None:
    by_track: Dict[Tuple[object, object], List[dict]] = {}
    for span in spans:
        by_track.setdefault((span["pid"], span["tid"]), []).append(span)
    for (pid, tid), members in by_track.items():
        members.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack: List[Tuple[float, float, str]] = []  # (start, end, name)
        for event in members:
            start = float(event["ts"])
            end = start + float(event["dur"])
            while stack and start >= stack[-1][1] - _NESTING_SLACK_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NESTING_SLACK_US:
                raise ValueError(
                    f"{label}: span {event['name']!r} "
                    f"[{start:.1f}us, {end:.1f}us) on tid {tid} partially "
                    f"overlaps enclosing span {stack[-1][2]!r} "
                    f"ending at {stack[-1][1]:.1f}us — spans must nest"
                )
            stack.append((start, end, str(event["name"])))


def validate_prometheus_text(path: PathLike) -> Dict[str, object]:
    """Validate a Prometheus text dump; raise on grammar violations."""
    text = _read_text(path)
    samples = 0
    histogram_cumulative: Dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                raise ValueError(
                    f"{path}:{number}: malformed comment line {line!r} "
                    "(expected '# HELP name ...' or '# TYPE name ...')"
                )
            continue
        if not _SAMPLE_LINE.match(line):
            raise ValueError(
                f"{path}:{number}: malformed sample line {line!r}"
            )
        samples += 1
        # strip any exemplar suffix before reading the sample value /
        # label body: ``... 42 # {span_id="17"} 0.093``
        sample_part = line.split(" # ", 1)[0]
        name = sample_part.split("{", 1)[0].split(" ", 1)[0]
        if name.endswith("_bucket"):
            count = int(float(sample_part.rsplit(" ", 1)[1]))
            base = name[: -len("_bucket")]
            # cumulative counts restart per label series: key the check
            # on the labels minus 'le'
            label_body = (
                sample_part[sample_part.index("{") + 1 : sample_part.rindex("}")]
                if "{" in sample_part
                else ""
            )
            series = ",".join(
                part
                for part in _ONE_LABEL.findall(label_body)
                if not part.startswith('le="')
            )
            key = f"{base}{{{series}}}"
            previous = histogram_cumulative.get(key, 0)
            if count < previous:
                raise ValueError(
                    f"{path}:{number}: histogram {base!r} bucket counts "
                    f"are not cumulative ({count} < {previous})"
                )
            histogram_cumulative[key] = count
    if samples == 0:
        raise ValueError(f"{path}: no metric samples found")
    return {"samples": samples}


def validate_events_jsonl(path: PathLike) -> Dict[str, object]:
    """Validate a JSONL event stream; raise on malformed lines."""
    known = {"span", "metric", "adaptation", "check", "prune"}
    counts: Dict[str, int] = {}
    with _open_for_read(path) as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: line is not a JSON object")
            kind = record.get("type")
            if kind not in known:
                raise ValueError(
                    f"{path}:{number}: unknown event type {kind!r} "
                    f"(expected one of {sorted(known)})"
                )
            counts[kind] = counts.get(kind, 0) + 1
    if not counts:
        raise ValueError(f"{path}: stream contains no events")
    return counts


def validate_energy_ledger(path: PathLike) -> Dict[str, object]:
    """Validate a ``socrates-energy/1`` ledger document.

    Checks the schema shape and the conservation invariants: every
    entry's component domains sum to its package joules, and the
    operating points plus the idle floor sum to ``totals_j`` — all
    within the observatory's 1e-9 relative tolerance.
    """
    from repro.obs.energy import (
        COMPONENT_DOMAINS,
        CONSERVATION_TOL,
        DOMAINS,
        LEDGER_SCHEMA,
    )

    try:
        document = json.loads(_read_text(path))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: ledger document is not a JSON object")
    schema = document.get("schema")
    if schema != LEDGER_SCHEMA:
        raise ValueError(
            f"{path}: unexpected ledger schema {schema!r} "
            f"(expected {LEDGER_SCHEMA!r})"
        )
    for key in ("kernel", "totals_j", "operating_points", "idle"):
        if key not in document:
            raise ValueError(f"{path}: ledger lacks required key {key!r}")

    def energy_of(container: object, label: str) -> Dict[str, float]:
        if not isinstance(container, dict) or not isinstance(
            container.get("energy_j"), dict
        ):
            raise ValueError(f"{path}: {label} lacks an 'energy_j' object")
        energy = container["energy_j"]
        for domain in DOMAINS:
            if not isinstance(energy.get(domain), (int, float)):
                raise ValueError(
                    f"{path}: {label} energy_j lacks numeric domain {domain!r}"
                )
        return energy

    def check_closure(energy: Dict[str, float], label: str) -> None:
        package = float(energy["package"])
        components = sum(float(energy[d]) for d in COMPONENT_DOMAINS)
        if abs(components - package) > CONSERVATION_TOL * max(1.0, abs(package)):
            raise ValueError(
                f"{path}: {label} domain sum {components!r} J does not "
                f"match package {package!r} J"
            )

    totals = document["totals_j"]
    if not isinstance(totals, dict):
        raise ValueError(f"{path}: 'totals_j' is not an object")
    check_closure(totals, "totals_j")

    entries = document["operating_points"]
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'operating_points' is not a list")
    booked = {domain: 0.0 for domain in DOMAINS}
    for index, entry in enumerate(entries):
        energy = energy_of(entry, f"operating point {index}")
        check_closure(energy, f"operating point {index}")
        for domain in DOMAINS:
            booked[domain] += float(energy[domain])
    idle = energy_of(document["idle"], "idle entry")
    check_closure(idle, "idle entry")
    for domain in DOMAINS:
        booked[domain] += float(idle[domain])
        total = float(totals[domain])
        if abs(booked[domain] - total) > CONSERVATION_TOL * max(1.0, abs(total)):
            raise ValueError(
                f"{path}: booked {domain} energy {booked[domain]!r} J does "
                f"not match totals_j {total!r} J"
            )
    stages = document.get("stages", [])
    if not isinstance(stages, list):
        raise ValueError(f"{path}: 'stages' is not a list")
    for index, stage in enumerate(stages):
        check_closure(
            energy_of(stage, f"stage {index}"),
            f"stage {index}",
        )
    return {
        "kernel": document["kernel"],
        "operating_points": len(entries),
        "stages": len(stages),
        "package_j": float(totals["package"]),
    }


def validate_incident(path: PathLike) -> Dict[str, object]:
    """Validate a ``socrates-incident/1`` flight-recorder bundle.

    Checks the schema shape (alert, attribution, per-kind window
    lists), that every window's events are in non-decreasing
    virtual-time order (the flight recorder's eviction invariant), and
    that the ``incident_id`` matches the recomputed content
    fingerprint — a tampered or truncated bundle fails loudly.
    """
    from repro.obs.flight import incident_fingerprint, load_incident

    document = load_incident(path)
    for key in ("incident_id", "kernel", "t", "alert", "attribution", "window"):
        if key not in document:
            raise ValueError(f"{path}: incident bundle lacks required key {key!r}")
    alert = document["alert"]
    if not isinstance(alert, dict):
        raise ValueError(f"{path}: 'alert' is not an object")
    for key in ("name", "detector", "severity", "t", "message"):
        if key not in alert:
            raise ValueError(f"{path}: alert lacks required key {key!r}")
    attribution = document["attribution"]
    if not isinstance(attribution, dict):
        raise ValueError(f"{path}: 'attribution' is not an object")
    for key in ("span", "domain"):
        if key not in attribution:
            raise ValueError(f"{path}: attribution lacks required key {key!r}")
    window = document["window"]
    if not isinstance(window, dict):
        raise ValueError(f"{path}: 'window' is not an object")
    events = 0
    for kind in ("spans", "metrics", "energy", "audit", "alerts"):
        ring = window.get(kind)
        if not isinstance(ring, list):
            raise ValueError(f"{path}: window lacks event list {kind!r}")
        last = None
        for index, event in enumerate(ring):
            if not isinstance(event, dict) or not isinstance(
                event.get("t"), (int, float)
            ):
                raise ValueError(
                    f"{path}: window {kind}[{index}] lacks a numeric 't'"
                )
            t = float(event["t"])
            if last is not None and t < last - 1e-9:
                raise ValueError(
                    f"{path}: window {kind}[{index}] at t={t!r}s breaks "
                    f"virtual-time order (previous event at t={last!r}s)"
                )
            last = t
            events += 1
    expected = incident_fingerprint(document)
    if document["incident_id"] != expected:
        raise ValueError(
            f"{path}: incident_id {document['incident_id']!r} does not match "
            f"the recomputed content fingerprint {expected!r} "
            "(bundle modified or truncated?)"
        )
    return {
        "incident_id": document["incident_id"],
        "kernel": document["kernel"],
        "alert": alert["name"],
        "events": events,
    }


def validate_run_record_file(path: PathLike) -> Dict[str, object]:
    """Validate a ``socrates-run/1`` telemetry-warehouse run record.

    Delegates to :func:`repro.obs.store.validate_run_record`, which
    recomputes the run id from the identity fields — a hand-edited
    record fails loudly.
    """
    from repro.obs.store import validate_run_record

    try:
        document = json.loads(_read_text(path))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    return validate_run_record(document, label=str(path))


def validate_bench_baseline(path: PathLike) -> Dict[str, object]:
    """Validate a ``socrates-bench/1`` baseline / stored bench report."""
    from repro.bench.baseline import load_baseline

    baseline = load_baseline(path)
    return {
        "scenario": baseline.scenario,
        "repeats": baseline.repeats,
        "stages": len(baseline.stages),
        "stacks": len(baseline.stacks),
    }


def validate_file(path: PathLike) -> Dict[str, object]:
    """Dispatch on file suffix: .json → Chrome trace, energy ledger,
    incident bundle, flame profile, bench baseline or warehouse run
    record (sniffed on content), .jsonl → event stream, .prom/.txt →
    Prometheus text, .folded → folded flame-graph stacks."""
    suffix = Path(path).suffix.lower()
    if suffix == ".jsonl":
        return validate_events_jsonl(path)
    if suffix == ".folded":
        from repro.obs.profile import validate_folded_text

        return validate_folded_text(path)
    if suffix == ".json":
        from repro.bench.baseline import SCHEMA as BENCH_SCHEMA
        from repro.obs.energy import LEDGER_SCHEMA
        from repro.obs.flight import INCIDENT_SCHEMA
        from repro.obs.profile import PROFILE_SCHEMA, validate_profile_json
        from repro.obs.store import RUN_SCHEMA

        try:
            document = json.loads(_read_text(path))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
        if isinstance(document, dict) and document.get("schema") == LEDGER_SCHEMA:
            return validate_energy_ledger(path)
        if isinstance(document, dict) and document.get("schema") == INCIDENT_SCHEMA:
            return validate_incident(path)
        if isinstance(document, dict) and document.get("schema") == PROFILE_SCHEMA:
            return validate_profile_json(path)
        if isinstance(document, dict) and document.get("schema") == BENCH_SCHEMA:
            return validate_bench_baseline(path)
        if isinstance(document, dict) and document.get("schema") == RUN_SCHEMA:
            return validate_run_record_file(path)
        return validate_chrome_trace(path)
    if suffix in (".prom", ".txt"):
        return validate_prometheus_text(path)
    raise ValueError(
        f"{path}: cannot infer artifact kind from suffix {suffix!r} "
        "(expected .json, .jsonl, .prom, .txt or .folded)"
    )


#: Suffixes :func:`validate_file` can dispatch; anything else inside a
#: directory walk is counted as skipped rather than failing the run.
VALIDATABLE_SUFFIXES = (".json", ".jsonl", ".prom", ".txt", ".folded")


def validate_tree(root: PathLike) -> Tuple[List[Tuple[Path, Dict[str, object]]], int]:
    """Recursively validate every known artifact under ``root``.

    Returns ``(validated, skipped)`` where ``validated`` is a list of
    ``(path, summary)`` pairs in sorted order and ``skipped`` counts
    files whose suffix no validator claims (a store's journal and pin
    markers, editor droppings, ...).  Raises :class:`ValueError` on
    the first malformed artifact — a directory is checked as a unit.
    """
    base = Path(root)
    if not base.is_dir():
        raise ValueError(f"{root}: not a directory")
    validated: List[Tuple[Path, Dict[str, object]]] = []
    skipped = 0
    for path in sorted(base.rglob("*")):
        if not path.is_file():
            continue
        if path.suffix.lower() not in VALIDATABLE_SUFFIXES:
            skipped += 1
            continue
        validated.append((path, validate_file(path)))
    return validated, skipped
