"""Validators for the exported observability artifacts.

Used by ``socrates obs validate`` and the CI observability smoke job.
Each validator raises :class:`ValueError` with a precise message on
the first problem found, and returns a small summary dict on success.

* :func:`validate_chrome_trace` — the document parses, every span
  event carries the required ``trace_event`` fields, and spans on the
  same (pid, tid) are properly nested (a child never outlives its
  enclosing span; no partial overlaps).
* :func:`validate_prometheus_text` — every line matches the text
  exposition grammar (``# HELP`` / ``# TYPE`` comments, bare or
  labelled sample lines with a float value) and histogram bucket
  series are cumulative.
* :func:`validate_events_jsonl` — every line is a JSON object with a
  known ``type``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

PathLike = Union[str, Path]

_REQUIRED_SPAN_FIELDS = ("name", "ph", "ts", "pid", "tid")

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
#: A label value: any run of characters where backslash only appears in
#: the three escapes the exposition format allows (\\, \", \n).  A raw
#: double-quote terminates the value, so an unescaped quote (or a stray
#: backslash) makes the whole line unmatchable — exactly what the
#: validator should reject.
_LABEL_VALUE = r"(?:\\\\|\\\"|\\n|[^\"\\])*"
_LABELS = (
    rf"\{{[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\""
    rf"(,[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\")*\}}"
)
_VALUE = r"[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|Inf|NaN)"
_SAMPLE_LINE = re.compile(rf"^{_METRIC_NAME}({_LABELS})? {_VALUE}( \d+)?$")
_COMMENT_LINE = re.compile(rf"^# (HELP|TYPE) {_METRIC_NAME}( .*)?$")
_ONE_LABEL = re.compile(rf"[a-zA-Z_][a-zA-Z0-9_]*=\"{_LABEL_VALUE}\"")

#: Tolerance when checking span containment, in microseconds.
_NESTING_SLACK_US = 0.5


def _read_text(path: PathLike) -> str:
    try:
        return Path(path).read_text()
    except OSError as error:
        raise ValueError(f"{path}: cannot read artifact ({error})") from None


def _open_for_read(path: PathLike):
    try:
        return open(path)
    except OSError as error:
        raise ValueError(f"{path}: cannot read artifact ({error})") from None


def validate_chrome_trace(path: PathLike) -> Dict[str, object]:
    """Validate a Chrome ``trace_event`` JSON file; raise on problems."""
    try:
        document = json.loads(_read_text(path))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing top-level 'traceEvents' array")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: 'traceEvents' is not a list")
    spans: List[dict] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue  # metadata events carry no timing
        for fieldname in _REQUIRED_SPAN_FIELDS:
            if fieldname not in event:
                raise ValueError(
                    f"{path}: event {index} ({event.get('name', '?')!r}) "
                    f"lacks required field {fieldname!r}"
                )
        if phase != "X":
            raise ValueError(
                f"{path}: event {index} has unsupported phase {phase!r} "
                "(expected complete events 'X')"
            )
        if "dur" not in event:
            raise ValueError(f"{path}: complete event {index} lacks 'dur'")
        for numeric in ("ts", "dur"):
            value = event[numeric]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"{path}: event {index} field {numeric!r} is not a "
                    f"non-negative number (got {value!r})"
                )
        spans.append(event)
    if not spans:
        raise ValueError(f"{path}: trace contains no span events")
    _check_nesting(spans, str(path))
    return {"events": len(events), "spans": len(spans)}


def _check_nesting(spans: List[dict], label: str) -> None:
    by_track: Dict[Tuple[object, object], List[dict]] = {}
    for span in spans:
        by_track.setdefault((span["pid"], span["tid"]), []).append(span)
    for (pid, tid), members in by_track.items():
        members.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack: List[Tuple[float, float, str]] = []  # (start, end, name)
        for event in members:
            start = float(event["ts"])
            end = start + float(event["dur"])
            while stack and start >= stack[-1][1] - _NESTING_SLACK_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NESTING_SLACK_US:
                raise ValueError(
                    f"{label}: span {event['name']!r} "
                    f"[{start:.1f}us, {end:.1f}us) on tid {tid} partially "
                    f"overlaps enclosing span {stack[-1][2]!r} "
                    f"ending at {stack[-1][1]:.1f}us — spans must nest"
                )
            stack.append((start, end, str(event["name"])))


def validate_prometheus_text(path: PathLike) -> Dict[str, object]:
    """Validate a Prometheus text dump; raise on grammar violations."""
    text = _read_text(path)
    samples = 0
    histogram_cumulative: Dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                raise ValueError(
                    f"{path}:{number}: malformed comment line {line!r} "
                    "(expected '# HELP name ...' or '# TYPE name ...')"
                )
            continue
        if not _SAMPLE_LINE.match(line):
            raise ValueError(
                f"{path}:{number}: malformed sample line {line!r}"
            )
        samples += 1
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if name.endswith("_bucket"):
            count = int(float(line.rsplit(" ", 1)[1]))
            base = name[: -len("_bucket")]
            # cumulative counts restart per label series: key the check
            # on the labels minus 'le'
            label_body = line[line.index("{") + 1 : line.rindex("}")] if "{" in line else ""
            series = ",".join(
                part
                for part in _ONE_LABEL.findall(label_body)
                if not part.startswith('le="')
            )
            key = f"{base}{{{series}}}"
            previous = histogram_cumulative.get(key, 0)
            if count < previous:
                raise ValueError(
                    f"{path}:{number}: histogram {base!r} bucket counts "
                    f"are not cumulative ({count} < {previous})"
                )
            histogram_cumulative[key] = count
    if samples == 0:
        raise ValueError(f"{path}: no metric samples found")
    return {"samples": samples}


def validate_events_jsonl(path: PathLike) -> Dict[str, object]:
    """Validate a JSONL event stream; raise on malformed lines."""
    known = {"span", "metric", "adaptation"}
    counts: Dict[str, int] = {}
    with _open_for_read(path) as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: line is not a JSON object")
            kind = record.get("type")
            if kind not in known:
                raise ValueError(
                    f"{path}:{number}: unknown event type {kind!r} "
                    f"(expected one of {sorted(known)})"
                )
            counts[kind] = counts.get(kind, 0) + 1
    if not counts:
        raise ValueError(f"{path}: stream contains no events")
    return counts


def validate_file(path: PathLike) -> Dict[str, object]:
    """Dispatch on file suffix: .json → Chrome trace, .jsonl → event
    stream, .prom/.txt → Prometheus text."""
    suffix = Path(path).suffix.lower()
    if suffix == ".jsonl":
        return validate_events_jsonl(path)
    if suffix == ".json":
        return validate_chrome_trace(path)
    if suffix in (".prom", ".txt"):
        return validate_prometheus_text(path)
    raise ValueError(
        f"{path}: cannot infer artifact kind from suffix {suffix!r} "
        "(expected .json, .jsonl, .prom or .txt)"
    )
