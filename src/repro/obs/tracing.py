"""Hierarchical span tracing for the SOCRATES pipeline.

A *span* is one timed region of work (a toolflow stage, an engine
evaluation batch, a MAPE-K iteration).  Spans nest: entering a span
while another is open makes the new span its child, so a full build
yields a tree ``build → stage:profile → engine.evaluate →
backend.run_truths → truth:...``.

Timestamps come from a monotonic clock (``time.perf_counter`` by
default; injectable for tests), so spans order and nest correctly but
carry no wall-clock meaning — every exported trace is re-based to
start at zero.

Work that ran in another process (the process-pool backend's workers)
cannot share the parent's clock.  Workers measure durations only;
:meth:`Tracer.adopt` re-parents those measurements into the submitting
span, laying them out on per-worker *tracks* from the parent span's
start (see :mod:`repro.obs.export` for how tracks map to Chrome trace
threads).

When observability is disabled, the :data:`NULL_TRACER` singleton
makes every instrumentation point a no-op: ``span()`` returns a shared
context manager that does nothing, records nothing, and allocates
nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Track name of spans recorded in the main process.
MAIN_TRACK = "main"


@dataclass
class Span:
    """One timed, attributed region of work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float = 0.0
    ok: bool = True
    track: str = MAIN_TRACK
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "ok": self.ok,
            "track": self.track,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager opened by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.ok = False
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects a tree of :class:`Span` records.

    ``sink`` optionally streams every span closure to a consumer (the
    alert engine's flight recorder) the moment :meth:`_finish` runs;
    the default ``None`` keeps the hot path a single falsy check, so
    runs without alerting are unaffected.
    """

    enabled = True
    sink = None  # class default: NullTracer inherits it without __init__

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.sink = None

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a child span of the current span (or a root span)."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=self._clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        # close abandoned descendants too (defensive: a generator-based
        # caller that never unwound its inner span)
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.end_s = self._clock()
        self._spans.append(span)
        if self.sink is not None:
            self.sink.on_span(span)

    def annotate(self, **attributes: object) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def adopt(
        self,
        name: str,
        duration_s: float,
        offset_s: float = 0.0,
        track: str = MAIN_TRACK,
        ok: bool = True,
        **attributes: object,
    ) -> Optional[Span]:
        """Re-parent a remotely measured span into the current span.

        The remote clock is not comparable with ours, so the span is
        laid out at ``parent.start + offset_s`` on the given track.
        """
        parent = self._stack[-1] if self._stack else None
        start = (parent.start_s if parent is not None else self._clock()) + offset_s
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start_s=start,
            end_s=start + duration_s,
            ok=ok,
            track=track,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    # -- inspection -----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        return list(self._spans)

    def children(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        self._spans.clear()


class _NullSpanContext:
    """Shared do-nothing context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """Tracer that records nothing; every call is allocation-free."""

    enabled = False

    def __init__(self) -> None:  # no state at all
        pass

    def span(self, name: str, **attributes: object) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_CONTEXT

    def annotate(self, **attributes: object) -> None:
        return None

    def adopt(self, name, duration_s, offset_s=0.0, track=MAIN_TRACK, ok=True, **attributes):
        return None

    @property
    def current(self) -> None:
        return None

    @property
    def spans(self) -> List[Span]:
        return []

    def children(self, span: Span) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []

    def clear(self) -> None:
        return None


#: Process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()
