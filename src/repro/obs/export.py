"""Exporters: JSONL event stream, Chrome trace, Prometheus text.

Three formats, three audiences:

* :func:`events_jsonl` — everything (spans, metrics, audit entries) as
  one JSON object per line, for ad-hoc ``jq``-style analysis;
* :func:`chrome_trace` — the span tree as Chrome ``trace_event``
  *complete* events (``"ph": "X"``), loadable in Perfetto or
  ``chrome://tracing``; spans on the same track share a ``tid`` so the
  viewer reconstructs the nesting from timestamps;
* :func:`prometheus_text` — the metrics registry in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` / sample lines,
  histograms with cumulative ``_bucket{le=...}`` series).

All exports are re-based so the earliest span starts at t=0: the
monotonic clock's epoch is arbitrary, and a zero-based trace makes two
seeded runs diff cleanly apart from durations.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.audit import AdaptationAuditLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
    unescape_label_value,
)
from repro.obs.tracing import MAIN_TRACK, Span

__all__ = [
    "chrome_trace",
    "escape_label_value",
    "events_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "unescape_label_value",
    "write_audit_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

PathLike = Union[str, Path]


def _origin(spans: Sequence[Span]) -> float:
    return min((span.start_s for span in spans), default=0.0)


# -- Chrome trace_event -------------------------------------------------------


def chrome_trace(
    spans: Sequence[Span],
    process_name: str = "socrates",
    counters: Sequence[Dict[str, object]] = (),
) -> Dict[str, object]:
    """The span tree as a Chrome ``trace_event`` JSON document.

    ``counters`` are pre-built counter events (``"ph": "C"``, e.g. the
    energy observatory's ``power.<domain>`` tracks from
    :meth:`~repro.obs.energy.EnergyTimeline.counter_events`); they are
    appended verbatim so Perfetto draws the power steps alongside the
    span tree.  Counter timestamps are the scenario's *virtual*
    microseconds while span timestamps are re-based wall-clock — both
    start at 0, so the tracks align at the origin even though the time
    bases differ.
    """
    origin = _origin(spans)
    track_ids: Dict[str, int] = {MAIN_TRACK: 0}
    events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: (s.start_s, -s.end_s, s.span_id)):
        tid = track_ids.setdefault(span.track, len(track_ids))
        args: Dict[str, object] = {str(k): v for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["ok"] = span.ok
        events.append(
            {
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "ts": round((span.start_s - origin) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(track_ids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {
        "traceEvents": metadata + events + list(counters),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    spans: Sequence[Span],
    path: PathLike,
    process_name: str = "socrates",
    counters: Sequence[Dict[str, object]] = (),
) -> int:
    """Write the Chrome trace; returns the number of span events."""
    document = chrome_trace(spans, process_name=process_name, counters=counters)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(spans)


# -- JSONL event stream -------------------------------------------------------


def events_jsonl(
    spans: Sequence[Span] = (),
    metrics: Optional[MetricsRegistry] = None,
    audit: Optional[AdaptationAuditLog] = None,
) -> Iterator[str]:
    """Yield one JSON line per span / metric / audit entry."""
    origin = _origin(spans)
    for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        record = span.as_dict()
        record["start_s"] = span.start_s - origin
        record["end_s"] = span.end_s - origin
        yield json.dumps({"type": "span", **record}, sort_keys=True)
    if metrics is not None:
        for instrument in metrics.instruments():
            yield json.dumps(
                {"type": "metric", **instrument.as_dict()}, sort_keys=True  # type: ignore[attr-defined]
            )
    if audit is not None:
        for entry in audit.entries:
            yield json.dumps({"type": "adaptation", **entry.as_dict()}, sort_keys=True)


def write_jsonl(
    path: PathLike,
    spans: Sequence[Span] = (),
    metrics: Optional[MetricsRegistry] = None,
    audit: Optional[AdaptationAuditLog] = None,
) -> int:
    """Write the JSONL event stream; returns the number of lines."""
    count = 0
    with open(path, "w") as handle:
        for line in events_jsonl(spans, metrics, audit):
            handle.write(line + "\n")
            count += 1
    return count


def write_audit_jsonl(audit: AdaptationAuditLog, path: PathLike) -> int:
    """Write the audit log as JSONL; returns the number of lines.

    Each line carries a ``type`` discriminator: ``adaptation`` for the
    MAPE-K decisions, ``check`` for static-analysis diagnostics, and
    ``prune`` for lattice points a :class:`PrunePlan` masked.
    """
    count = 0
    with open(path, "w") as handle:
        for entry in audit.entries:
            handle.write(
                json.dumps({"type": "adaptation", **entry.as_dict()}, sort_keys=True)
                + "\n"
            )
            count += 1
        for record in audit.checks_as_dicts():
            handle.write(json.dumps({"type": "check", **record}, sort_keys=True) + "\n")
            count += 1
        for record in audit.prunes_as_dicts():
            handle.write(json.dumps({"type": "prune", **record}, sort_keys=True) + "\n")
            count += 1
    return count


# -- Prometheus text exposition ----------------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    # HELP text escapes only backslash and newline (no quoting involved)
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _histogram_labels(instrument: Histogram, boundary: str) -> str:
    items = list(instrument.labels) + [("le", boundary)]
    body = ",".join(f'{key}="{escape_label_value(val)}"' for key, val in items)
    return "{" + body + "}"


def _format_exemplar(exemplar: Optional[Tuple]) -> str:
    """An OpenMetrics exemplar suffix: `` # {span_id="17"} 0.0931``."""
    if exemplar is None:
        return ""
    labels, value = exemplar
    body = ",".join(
        f'{key}="{escape_label_value(str(val))}"' for key, val in labels
    )
    return " # {" + body + "} " + _format_value(value)


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Instruments sharing a metric name (labelled series) are grouped
    under one ``# HELP`` / ``# TYPE`` header; label values are escaped
    per the exposition spec (``\\\\``, ``\\"``, ``\\n``).
    """
    lines: List[str] = []
    seen_header: set = set()
    for instrument in metrics.instruments():
        name = instrument.name  # type: ignore[attr-defined]
        if name not in seen_header:
            seen_header.add(name)
            if instrument.help:  # type: ignore[attr-defined]
                lines.append(
                    f"# HELP {name} {_escape_help(instrument.help)}"  # type: ignore[attr-defined]
                )
            if isinstance(instrument, (Counter, Gauge, Histogram)):
                lines.append(f"# TYPE {name} {instrument.kind}")
        labels = format_labels(instrument.labels)  # type: ignore[attr-defined]
        if isinstance(instrument, Histogram):
            cumulative = instrument.cumulative_counts()
            exemplars = instrument.exemplars
            for index, (boundary, count) in enumerate(
                zip(instrument.boundaries, cumulative)
            ):
                lines.append(
                    f"{name}_bucket"
                    f"{_histogram_labels(instrument, _format_value(boundary))} {count}"
                    f"{_format_exemplar(exemplars[index])}"
                )
            lines.append(
                f"{name}_bucket{_histogram_labels(instrument, '+Inf')} "
                f"{instrument.count}"
                f"{_format_exemplar(exemplars[-1])}"
            )
            lines.append(f"{name}_sum{labels} {_format_value(instrument.total)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        elif isinstance(instrument, (Counter, Gauge)):
            lines.append(f"{name}{labels} {_format_value(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(metrics: MetricsRegistry, path: PathLike) -> int:
    """Write the Prometheus dump; returns the number of instruments."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(metrics))
    return len(metrics)


# -- Prometheus text parsing (round-trip / dashboard --from) ------------------

_PARSE_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')
_PARSE_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*?)\})? (\S+)"
    r"( # \{(.*)\} (\S+))?$"
)


def _parse_label_body(body: str, context: str) -> List[Tuple[str, str]]:
    items: List[Tuple[str, str]] = []
    position = 0
    while position < len(body):
        match = _PARSE_LABEL.match(body, position)
        if match is None:
            raise ValueError(f"{context}: malformed labels {body!r}")
        items.append((match.group(1), unescape_label_value(match.group(2))))
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                raise ValueError(f"{context}: malformed labels {body!r}")
            position += 1
    return items


def _is_inf_le(le: str) -> bool:
    """True when a ``le`` label names the +Inf overflow bucket.

    Our exporter writes ``+Inf``, but the text format admits any float
    spelling (``+inf``, ``Inf``, ...) — matching the literal string
    would silently turn a foreign overflow bucket into a finite
    boundary and shift every exemplar slot after it.
    """
    try:
        return float(le) == float("inf")
    except ValueError:
        return False


def parse_prometheus_text(text: str) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from a text exposition dump.

    The inverse of :func:`prometheus_text` — used by ``socrates obs
    top --from metrics.prom`` and the escaping round-trip tests.
    Raises :class:`ValueError` on lines the exporter could never have
    produced.
    """
    kinds: Dict[str, str] = {}
    # (name, labels-without-le) -> {"buckets": [(le, cum)], "sum": v, "count": v}
    histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, object]] = {}
    scalars: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
    helps: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        context = f"line {number}"
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = unescape_label_value(help_text)
            continue
        if line.startswith("#"):
            raise ValueError(f"{context}: unsupported comment {line!r}")
        match = _PARSE_SAMPLE.match(line)
        if match is None:
            raise ValueError(f"{context}: malformed sample line {line!r}")
        name, _, label_body, raw_value, exemplar_part, ex_body, ex_value = (
            match.groups()
        )
        labels = _parse_label_body(label_body, context) if label_body else []
        value = float(raw_value)
        exemplar: Optional[Tuple[Tuple[Tuple[str, str], ...], float]] = None
        if exemplar_part is not None:
            exemplar = (
                tuple(_parse_label_body(ex_body or "", context)),
                float(ex_value),
            )
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and kinds.get(base) == "histogram":
                le = [v for k, v in labels if k == "le"]
                rest_labels = tuple(
                    (k, v) for k, v in labels if k != "le"
                )
                series = histograms.setdefault(
                    (base, rest_labels),
                    {"buckets": [], "sum": 0.0, "count": 0, "exemplars": []},
                )
                if suffix == "_bucket":
                    if not le:
                        raise ValueError(f"{context}: bucket sample lacks 'le'")
                    series["buckets"].append((le[0], int(value)))  # type: ignore[attr-defined]
                    series["exemplars"].append(exemplar)  # type: ignore[attr-defined]
                elif suffix == "_sum":
                    series["sum"] = value
                else:
                    series["count"] = int(value)
                break
        else:
            if exemplar is not None:
                raise ValueError(
                    f"{context}: exemplar on non-histogram sample {name!r}"
                )
            scalars.append((name, tuple(labels), value))

    registry = MetricsRegistry()
    for name, labels, value in scalars:
        kind = kinds.get(name)
        if kind == "counter":
            registry.counter(name, help=helps.get(name, ""), labels=dict(labels)).inc(
                value
            )
        elif kind == "gauge":
            registry.gauge(name, help=helps.get(name, ""), labels=dict(labels)).set(
                value
            )
        else:
            raise ValueError(f"sample {name!r} has no # TYPE declaration")
    for (name, labels), series in histograms.items():
        boundaries = [
            float(le)
            for le, _ in series["buckets"]  # type: ignore[union-attr]
            if not _is_inf_le(le)
        ]
        if not boundaries:
            raise ValueError(f"histogram {name!r} has no finite buckets")
        instrument = registry.histogram(
            name,
            boundaries=boundaries,
            help=helps.get(name, ""),
            labels=dict(labels),
        )
        cumulative = [count for _, count in series["buckets"]]  # type: ignore[union-attr]
        previous = 0
        per_bucket: List[int] = []
        for count in cumulative:
            per_bucket.append(count - previous)
            previous = count
        instrument.bucket_counts = per_bucket
        instrument.total = float(series["sum"])  # type: ignore[arg-type]
        instrument.count = int(series["count"])  # type: ignore[arg-type]
        # Re-attach OpenMetrics exemplars bucket by bucket.  The +Inf
        # bucket maps to the final (overflow) slot whatever its spelling
        # or position — an exemplar on the last cumulative bucket must
        # survive the round trip like any finite bucket's.
        finite = 0
        for (le, _), exemplar in zip(series["buckets"], series["exemplars"]):  # type: ignore[arg-type]
            if _is_inf_le(le):
                index = len(instrument.boundaries)
            else:
                index = finite
                finite += 1
            if exemplar is not None:
                instrument.exemplars[index] = exemplar
    return registry
