"""Exporters: JSONL event stream, Chrome trace, Prometheus text.

Three formats, three audiences:

* :func:`events_jsonl` — everything (spans, metrics, audit entries) as
  one JSON object per line, for ad-hoc ``jq``-style analysis;
* :func:`chrome_trace` — the span tree as Chrome ``trace_event``
  *complete* events (``"ph": "X"``), loadable in Perfetto or
  ``chrome://tracing``; spans on the same track share a ``tid`` so the
  viewer reconstructs the nesting from timestamps;
* :func:`prometheus_text` — the metrics registry in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` / sample lines,
  histograms with cumulative ``_bucket{le=...}`` series).

All exports are re-based so the earliest span starts at t=0: the
monotonic clock's epoch is arbitrary, and a zero-based trace makes two
seeded runs diff cleanly apart from durations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.audit import AdaptationAuditLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import MAIN_TRACK, Span

PathLike = Union[str, Path]


def _origin(spans: Sequence[Span]) -> float:
    return min((span.start_s for span in spans), default=0.0)


# -- Chrome trace_event -------------------------------------------------------


def chrome_trace(spans: Sequence[Span], process_name: str = "socrates") -> Dict[str, object]:
    """The span tree as a Chrome ``trace_event`` JSON document."""
    origin = _origin(spans)
    track_ids: Dict[str, int] = {MAIN_TRACK: 0}
    events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: (s.start_s, -s.end_s, s.span_id)):
        tid = track_ids.setdefault(span.track, len(track_ids))
        args: Dict[str, object] = {str(k): v for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["ok"] = span.ok
        events.append(
            {
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "ts": round((span.start_s - origin) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(track_ids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span], path: PathLike, process_name: str = "socrates"
) -> int:
    """Write the Chrome trace; returns the number of span events."""
    document = chrome_trace(spans, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(spans)


# -- JSONL event stream -------------------------------------------------------


def events_jsonl(
    spans: Sequence[Span] = (),
    metrics: Optional[MetricsRegistry] = None,
    audit: Optional[AdaptationAuditLog] = None,
) -> Iterator[str]:
    """Yield one JSON line per span / metric / audit entry."""
    origin = _origin(spans)
    for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        record = span.as_dict()
        record["start_s"] = span.start_s - origin
        record["end_s"] = span.end_s - origin
        yield json.dumps({"type": "span", **record}, sort_keys=True)
    if metrics is not None:
        for instrument in metrics.instruments():
            yield json.dumps(
                {"type": "metric", **instrument.as_dict()}, sort_keys=True  # type: ignore[attr-defined]
            )
    if audit is not None:
        for entry in audit.entries:
            yield json.dumps({"type": "adaptation", **entry.as_dict()}, sort_keys=True)


def write_jsonl(
    path: PathLike,
    spans: Sequence[Span] = (),
    metrics: Optional[MetricsRegistry] = None,
    audit: Optional[AdaptationAuditLog] = None,
) -> int:
    """Write the JSONL event stream; returns the number of lines."""
    count = 0
    with open(path, "w") as handle:
        for line in events_jsonl(spans, metrics, audit):
            handle.write(line + "\n")
            count += 1
    return count


def write_audit_jsonl(audit: AdaptationAuditLog, path: PathLike) -> int:
    """Write only the adaptation audit entries as JSONL."""
    with open(path, "w") as handle:
        for entry in audit.entries:
            handle.write(
                json.dumps({"type": "adaptation", **entry.as_dict()}, sort_keys=True)
                + "\n"
            )
    return len(audit)


# -- Prometheus text exposition ----------------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in metrics.instruments():
        name = instrument.name  # type: ignore[attr-defined]
        if instrument.help:  # type: ignore[attr-defined]
            lines.append(f"# HELP {name} {instrument.help}")  # type: ignore[attr-defined]
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = instrument.cumulative_counts()
            for boundary, count in zip(instrument.boundaries, cumulative):
                lines.append(
                    f'{name}_bucket{{le="{_format_value(boundary)}"}} {count}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(f"{name}_sum {_format_value(instrument.total)}")
            lines.append(f"{name}_count {instrument.count}")
        elif isinstance(instrument, (Counter, Gauge)):
            lines.append(f"# TYPE {name} {instrument.kind}")
            lines.append(f"{name} {_format_value(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(metrics: MetricsRegistry, path: PathLike) -> int:
    """Write the Prometheus dump; returns the number of instruments."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(metrics))
    return len(metrics)
