"""The live ASCII observability dashboard (``socrates obs top``).

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (plus, when
available, the tracer and adaptation audit log) as a compact terminal
view built on :mod:`repro.viz.ascii`:

* engine cache hit rates as fill meters;
* evaluation throughput (points/s over the traced interval);
* adaptation-switch count and the most recent switch reason;
* every histogram instrument as per-bucket bars.

:func:`render_dashboard` is a pure function returning one frame as a
string — the tests and ``--once`` snapshot mode (CI logs) use it
directly.  :func:`live_dashboard` redraws frames in place with ANSI
clear codes until the workload finishes.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional

from repro.obs.audit import AdaptationAuditLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.viz.ascii import bucket_bars, meter

#: ANSI: clear screen + home cursor.
_CLEAR = "\x1b[2J\x1b[H"


def _gauge_value(metrics: MetricsRegistry, name: str) -> Optional[float]:
    instrument = metrics.get(name)
    if isinstance(instrument, (Gauge, Counter)):
        return instrument.value
    return None


def _hit_rate_line(
    metrics: MetricsRegistry, cache: str, width: int
) -> Optional[str]:
    hits = _gauge_value(metrics, f"socrates_engine_{cache}_hits")
    misses = _gauge_value(metrics, f"socrates_engine_{cache}_misses")
    if hits is None and misses is None:
        # live counters (registered by the engine) as a fallback
        hits = _gauge_value(metrics, f"socrates_engine_{cache}_cache_hits_total")
        misses = _gauge_value(
            metrics, f"socrates_engine_{cache}_cache_misses_total"
        )
    if hits is None or misses is None:
        return None
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    return (
        f"  {cache:8s} "
        + meter(rate, width=width)
        + f"  ({hits:g} hits / {lookups:g} lookups)"
    )


def _energy_section(metrics: MetricsRegistry, width: int) -> List[str]:
    """The virtual-RAPL meter rows: per-domain joules (summed over
    kernels) as share-of-package fill meters, with mean watts when the
    ``socrates_power_watts`` gauges are present."""
    energy: dict = {}
    power: dict = {}
    for instrument in metrics.instruments():
        if not isinstance(instrument, (Counter, Gauge)):
            continue
        domain = dict(instrument.labels).get("domain")
        if domain is None:
            continue
        if instrument.name == "socrates_energy_joules_total":
            energy[domain] = energy.get(domain, 0.0) + instrument.value
        elif instrument.name == "socrates_power_watts":
            power[domain] = power.get(domain, 0.0) + instrument.value
    if not energy:
        return []
    package_j = energy.get("package", 0.0)
    lines = ["", "energy (virtual RAPL)"]
    for domain in ("package", "core", "uncore", "dram"):
        if domain not in energy:
            continue
        share = energy[domain] / package_j if package_j > 0 else 0.0
        suffix = f"  {energy[domain]:.2f} J"
        if domain in power:
            suffix += f"  ({power[domain]:.1f} W avg)"
        lines.append(f"  {domain:8s} " + meter(share, width=width) + suffix)
    return lines


def _alerts_section(
    metrics: MetricsRegistry, alerts=None
) -> List[str]:
    """The alerting panel: fired-alert counters by name/severity plus,
    when a live :class:`~repro.obs.alerts.AlertEngine` is at hand, the
    most recent alert line.  Works off the ``socrates_alerts_total`` /
    ``socrates_incidents_total`` counters, so a ``--from metrics.prom``
    snapshot renders the same panel as a live run."""
    fired: dict = {}
    incidents = 0.0
    suppressed = 0.0
    for instrument in metrics.instruments():
        if not isinstance(instrument, Counter):
            continue
        if instrument.name == "socrates_alerts_total":
            labels = dict(instrument.labels)
            key = (labels.get("alert", "?"), labels.get("severity", "?"))
            fired[key] = fired.get(key, 0.0) + instrument.value
        elif instrument.name == "socrates_incidents_total":
            incidents += instrument.value
        elif instrument.name == "socrates_alerts_suppressed_total":
            suppressed += instrument.value
    if not fired and incidents == 0 and alerts is None:
        return []
    lines = ["", "alerts"]
    total = sum(fired.values())
    headline = f"  fired: {total:g}   incidents: {incidents:g}"
    if suppressed:
        headline += f"   suppressed: {suppressed:g}"
    lines.append(headline)
    for (name, severity), count in sorted(fired.items()):
        lines.append(f"  [{severity:4s}] {name}  x{count:g}")
    recent = list(getattr(alerts, "alerts", []) or [])
    if recent:
        last = recent[-1]
        lines.append(f"  last: {last.message}  (t={last.t:.2f}s)")
    return lines


def _histogram_section(instrument: Histogram, width: int) -> List[str]:
    labels = [f"<={boundary:g}" for boundary in instrument.boundaries] + ["+Inf"]
    lines = [
        f"  {instrument.labelled_name}: "
        f"n={instrument.count} sum={instrument.total:.4g} "
        f"mean={instrument.mean:.4g}"
    ]
    lines.extend(
        "    " + line
        for line in bucket_bars(
            labels, instrument.bucket_counts, width=width
        ).splitlines()
    )
    return lines


def render_dashboard(
    metrics: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    audit: Optional[AdaptationAuditLog] = None,
    width: int = 72,
    frame: Optional[int] = None,
    alerts=None,
) -> str:
    """One dashboard frame as a string (no printing, no ANSI codes)."""
    bar_width = max(10, min(32, width - 44))
    title = "SOCRATES observability"
    if frame is not None:
        title += f" — frame {frame}"
    lines: List[str] = [title, "=" * min(width, len(title) + 8)]

    spans = tracer.spans if tracer is not None else []
    summary = f"instruments: {len(metrics)}"
    if tracer is not None:
        summary += f"   spans: {len(spans)}"
    if audit is not None:
        summary += f"   adaptation switches: {len(audit)}"
    lines.append(summary)

    cache_lines = [
        line
        for cache in ("compile", "profile", "truth")
        for line in [_hit_rate_line(metrics, cache, bar_width)]
        if line is not None
    ]
    if cache_lines:
        lines.append("")
        lines.append("engine caches")
        lines.extend(cache_lines)

    points = _gauge_value(metrics, "socrates_engine_points_evaluated")
    if points is None:
        points = _gauge_value(metrics, "socrates_engine_points_evaluated_total")
    if points is not None:
        rate = ""
        if spans:
            elapsed = max(span.end_s for span in spans) - min(
                span.start_s for span in spans
            )
            if elapsed > 0:
                rate = f"   ({points / elapsed:,.0f} points/s traced)"
        lines.append("")
        lines.append(f"evaluations: {points:g} design points{rate}")

    if audit is not None and len(audit) > 0:
        last = audit.entries[-1]
        lines.append("")
        lines.append("adaptation")
        lines.append(
            f"  switches: {len(audit)}   last at t={last.timestamp:.1f}s "
            f"under state '{last.state}'"
        )

    lines.extend(_energy_section(metrics, bar_width))
    lines.extend(_alerts_section(metrics, alerts=alerts))

    histograms = [
        instrument
        for instrument in metrics.instruments()
        if isinstance(instrument, Histogram)
    ]
    if histograms:
        lines.append("")
        lines.append("histograms")
        for instrument in histograms:
            lines.extend(_histogram_section(instrument, width=bar_width + 8))

    scalars = [
        instrument
        for instrument in metrics.instruments()
        if isinstance(instrument, (Counter, Gauge))
    ]
    if scalars:
        lines.append("")
        lines.append("counters / gauges")
        name_width = min(48, max(len(s.labelled_name) for s in scalars))
        for instrument in scalars:
            lines.append(
                f"  {instrument.labelled_name:<{name_width}s} "
                f"{instrument.value:g}"
            )
    return "\n".join(lines)


def live_dashboard(
    frame_fn: Callable[[int], str],
    done: Callable[[], bool],
    refresh_s: float = 1.0,
    stream=None,
    max_frames: Optional[int] = None,
) -> int:
    """Redraw ``frame_fn(frame_number)`` until ``done()`` (plus one
    final frame); returns the number of frames drawn."""
    out = stream if stream is not None else sys.stdout
    frames = 0
    while True:
        finished = done()
        out.write(_CLEAR + frame_fn(frames) + "\n")
        out.flush()
        frames += 1
        if finished or (max_frames is not None and frames >= max_frames):
            return frames
        time.sleep(refresh_s)
