"""Flight recorder and incident bundles (`repro.obs.flight`).

An always-on alerting layer cannot retain full traces (Endo et al.:
online adaptation is only viable with strictly bounded monitoring
overhead), so the flight recorder keeps one bounded ring buffer per
telemetry kind — spans, metric updates, energy-plane samples,
adaptation-audit entries, fired alerts — and evicts oldest-first in
strict virtual-time order.  When an alert fires, the rings are
snapshotted into a schema-versioned **incident bundle**
(``socrates-incident/1``) with automatic root-cause attribution: the
violated energy domain, the operating point that dominated the energy
spent inside the window, and (when a bench baseline is at hand) a
:mod:`repro.obs.diff` span-diff against the baseline's stage profile.

Incident identifiers are content addresses: ``inc-`` plus a SHA-256
prefix over the *virtual-time* content of the bundle (wall-clock span
durations are excluded), so a seeded run produces the same incident id
every time it is repeated.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.stream import ALERT, AUDIT, ENERGY, EVENT_KINDS, METRIC, SPAN, StreamEvent

PathLike = Union[str, Path]

__all__ = [
    "INCIDENT_SCHEMA",
    "FlightRecorder",
    "IncidentBundle",
    "attribute_incident",
    "incident_fingerprint",
    "incident_paths",
    "load_incident",
]

#: Schema tag written into every bundle; bump on breaking layout changes.
INCIDENT_SCHEMA = "socrates-incident/1"

#: ring kind -> window key in the incident bundle
_WINDOW_KEYS = {
    SPAN: "spans",
    METRIC: "metrics",
    ENERGY: "energy",
    AUDIT: "audit",
    ALERT: "alerts",
}


class FlightRecorder:
    """Bounded per-kind ring buffers over the telemetry stream.

    ``capacity`` bounds each ring independently (the span ring fills
    ~4x faster than the energy ring, so a shared ring would starve the
    slow kinds).  Appends must be non-decreasing in virtual time per
    ring; a regression raises ``ValueError`` because it would corrupt
    the eviction order the incident fingerprint relies on.
    """

    def __init__(
        self,
        capacity: int = 256,
        on_evict: Optional[Callable[[StreamEvent], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.on_evict = on_evict
        self._rings: Dict[str, Deque[StreamEvent]] = {
            kind: deque(maxlen=capacity)
            for kind in EVENT_KINDS
            if kind not in (SPAN, ENERGY)
        }
        # The span and energy rings are the hot ones: every span
        # closure and every invocation's energy sample in the whole run
        # lands here, but only ``capacity`` survive.  They store raw
        # ``(t, producer)`` pairs and wrap them into StreamEvents
        # lazily at inspection time, so the steady-state cost per
        # closure is a tuple and a deque append — no event allocation.
        # (Events that do arrive through the bus are stored as-is and
        # need no wrapping either.)
        self._span_ring: Deque[object] = deque(maxlen=capacity)
        self._energy_ring: Deque[object] = deque(maxlen=capacity)
        self._span_last_t: Optional[float] = None
        self._energy_last_t: Optional[float] = None
        self._last_t: Dict[str, float] = {}
        self.recorded = 0
        self.evicted = 0

    def record(self, event: StreamEvent) -> None:
        """Append one event to its kind's ring (the bus subscriber)."""
        kind = event.kind
        if kind == SPAN:
            self._append_span(event.t, event)
            return
        if kind == ENERGY:
            self._append_energy(event.t, event)
            return
        ring = self._rings[kind]
        last = self._last_t.get(kind)
        if last is not None and event.t < last - 1e-9:
            raise ValueError(
                f"flight recorder: {kind} event {event.name!r} at "
                f"t={event.t:.9f}s arrives behind the ring's last event "
                f"(t={last:.9f}s); virtual-time order is mandatory"
            )
        if len(ring) == ring.maxlen:
            self.evicted += 1
            if self.on_evict is not None:
                self.on_evict(ring[0])
        ring.append(event)
        self._last_t[kind] = event.t
        self.recorded += 1

    def record_span(self, t: float, span: object) -> None:
        """Hot-path helper: ring a span closure stamped at bus time."""
        self._append_span(t, (t, span))

    def record_energy(self, t: float, record: object) -> None:
        """Hot-path helper: ring one invocation's energy sample."""
        self._append_energy(t, (t, record))

    def _append_span(self, t: float, entry: object) -> None:
        last = self._span_last_t
        if last is not None and t < last - 1e-9:
            raise ValueError(
                f"flight recorder: span event at t={t:.9f}s arrives "
                f"behind the ring's last event (t={last:.9f}s); "
                f"virtual-time order is mandatory"
            )
        ring = self._span_ring
        if len(ring) == self.capacity:
            self.evicted += 1
            if self.on_evict is not None:
                self.on_evict(self._wrap_span(ring[0]))
        ring.append(entry)
        self._span_last_t = t
        self.recorded += 1

    def _append_energy(self, t: float, entry: object) -> None:
        last = self._energy_last_t
        if last is not None and t < last - 1e-9:
            raise ValueError(
                f"flight recorder: energy event at t={t:.9f}s arrives "
                f"behind the ring's last event (t={last:.9f}s); "
                f"virtual-time order is mandatory"
            )
        ring = self._energy_ring
        if len(ring) == self.capacity:
            self.evicted += 1
            if self.on_evict is not None:
                self.on_evict(self._wrap_energy(ring[0]))
        ring.append(entry)
        self._energy_last_t = t
        self.recorded += 1

    @staticmethod
    def _wrap_span(entry: object) -> StreamEvent:
        if type(entry) is not tuple:
            return entry  # arrived through the bus as a real event
        t, span = entry
        return StreamEvent(
            SPAN,
            t,
            getattr(span, "name", "?"),
            getattr(span, "duration_s", 0.0),
            payload=span,
        )

    @staticmethod
    def _wrap_energy(entry: object) -> StreamEvent:
        if type(entry) is not tuple:
            return entry
        t, record = entry
        return StreamEvent(
            ENERGY,
            t,
            "power.package",
            getattr(record, "power_w", 0.0),
            payload=record,
        )

    def events(self, kind: str) -> List[StreamEvent]:
        if kind == SPAN:
            return [self._wrap_span(entry) for entry in self._span_ring]
        if kind == ENERGY:
            return [self._wrap_energy(entry) for entry in self._energy_ring]
        return list(self._rings[kind])

    def counts(self) -> Dict[str, int]:
        counts = {}
        for kind in EVENT_KINDS:
            if kind == SPAN:
                counts[kind] = len(self._span_ring)
            elif kind == ENERGY:
                counts[kind] = len(self._energy_ring)
            else:
                counts[kind] = len(self._rings[kind])
        return counts

    def snapshot(self) -> Dict[str, List[dict]]:
        """Materialize the rings into the incident-bundle window."""
        return {
            _WINDOW_KEYS[kind]: [event.as_dict() for event in self.events(kind)]
            for kind in EVENT_KINDS
        }


# -- fingerprinting -----------------------------------------------------------


def _reduce_span_event(event: Mapping[str, object]) -> dict:
    """A span event minus its wall-clock content.

    Span *durations* are wall time and differ between repeats of the
    same seed; the virtual timestamp, name and attributes are
    deterministic, so only those enter the fingerprint.
    """
    payload = event.get("payload")
    attributes = {}
    if isinstance(payload, Mapping):
        attributes = payload.get("attributes") or {}
    return {
        "name": event.get("name"),
        "t": event.get("t"),
        "attributes": attributes,
    }


def _reduce_event(event: Mapping[str, object]) -> dict:
    reduced = {
        "name": event.get("name"),
        "t": event.get("t"),
        "value": event.get("value"),
    }
    if event.get("attributes"):
        reduced["attributes"] = event["attributes"]
    payload = event.get("payload")
    if isinstance(payload, Mapping):
        # Invocation records / audit entries are fully virtual-time
        # deterministic; drop only wall-clock keys if present.
        reduced["payload"] = {
            key: value
            for key, value in payload.items()
            if key not in ("start_s", "end_s", "duration_s", "wall_s")
        }
    return reduced


def incident_fingerprint(document: Mapping[str, object]) -> str:
    """Deterministic content address of an incident bundle.

    Hashes the alert, the kernel, and the virtual-time reduction of
    the window (span wall durations excluded).  Stable across repeat
    runs of the same seed, and recomputable by ``obs validate``.
    """
    window = document.get("window") or {}
    payload = {
        "schema": INCIDENT_SCHEMA,
        "kernel": document.get("kernel", ""),
        "alert": document.get("alert", {}),
        "window": {
            "spans": [_reduce_span_event(e) for e in window.get("spans", [])],
            "metrics": [_reduce_event(e) for e in window.get("metrics", [])],
            "energy": [_reduce_event(e) for e in window.get("energy", [])],
            "audit": [_reduce_event(e) for e in window.get("audit", [])],
            "alerts": [_reduce_event(e) for e in window.get("alerts", [])],
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return f"inc-{digest[:12]}"


# -- attribution --------------------------------------------------------------


def attribute_incident(
    alert: Mapping[str, object],
    window: Mapping[str, Sequence[Mapping[str, object]]],
    baseline: object = None,
) -> Dict[str, object]:
    """Automatic root-cause attribution for an incident window.

    * ``domain`` — the energy plane the alert's detector watched (from
      the alert context; defaults to ``package``).
    * ``operating_point`` / ``span`` — the (compiler, threads,
      binding, cluster) configuration that consumed the most energy
      inside the window, named as the ``kernel.execute`` span it ran
      under: on a power-budget burn the offender is whatever the
      MAPE-K loop was running while the budget burned.
    * ``diff`` — when a :class:`repro.bench.baseline.BenchBaseline` is
      supplied, a :mod:`repro.obs.diff` comparison of the window's
      span profile against the baseline's per-stage means, scaled to
      the window's span counts (informational: wall-clock based).
    """
    context = alert.get("context") or {}
    domain = str(context.get("domain", "package"))

    energy_by_op: Dict[tuple, float] = {}
    states: Dict[tuple, str] = {}
    for event in window.get("energy", []):
        payload = event.get("payload")
        if not isinstance(payload, Mapping):
            continue
        op = (
            str(payload.get("compiler", "?")),
            int(payload.get("threads", 0)),
            str(payload.get("binding", "")),
            str(payload.get("cluster", "")),
        )
        energy_by_op[op] = energy_by_op.get(op, 0.0) + float(payload.get("energy_j", 0.0))
        states.setdefault(op, str(payload.get("state", "")))

    attribution: Dict[str, object] = {
        "domain": domain,
        "detail": str(alert.get("message", "")),
    }
    total_j = sum(energy_by_op.values())
    if energy_by_op:
        # Deterministic arg-max: energy descending, then the tuple
        # itself as tie-break.
        offender = max(energy_by_op, key=lambda op: (energy_by_op[op], op))
        compiler, threads, binding, cluster = offender
        label = f"kernel.execute(compiler={compiler}, threads={threads}"
        if binding:
            label += f", binding={binding}"
        if cluster:
            label += f", cluster={cluster}"
        label += ")"
        attribution["span"] = label
        attribution["operating_point"] = {
            "compiler": compiler,
            "threads": threads,
            "binding": binding,
            "cluster": cluster,
            "state": states.get(offender, ""),
        }
        attribution["energy_j"] = energy_by_op[offender]
        attribution["energy_share"] = (
            energy_by_op[offender] / total_j if total_j > 0.0 else 0.0
        )
    else:
        attribution["span"] = str(alert.get("name", "?"))

    if baseline is not None:
        diff = _diff_against_baseline(window.get("spans", []), baseline)
        if diff is not None:
            attribution["diff"] = diff.as_dict()
            changed = [d for d in diff.deltas if d.status == "changed" and d.delta_s > 0]
            if changed:
                attribution["diff_top"] = changed[0].name
    return attribution


def _diff_against_baseline(
    span_events: Sequence[Mapping[str, object]], baseline: object
):
    """Window span profile vs the baseline's scaled stage means."""
    from repro.obs.diff import SpanAggregate, diff_profiles

    stages = getattr(baseline, "stages", None)
    if not stages:
        return None
    observed: Dict[str, SpanAggregate] = {}
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for event in span_events:
        name = str(event.get("name", "?"))
        counts[name] = counts.get(name, 0) + 1
        totals[name] = totals.get(name, 0.0) + float(event.get("value", 0.0))
    for name in counts:
        observed[name] = SpanAggregate(count=counts[name], total_s=totals[name])
    expected: Dict[str, SpanAggregate] = {}
    for name, count in counts.items():
        stage = stages.get(name)
        if stage is None or not getattr(stage, "count", 0):
            continue
        mean_s = stage.total_s.median / stage.count
        expected[name] = SpanAggregate(count=count, total_s=mean_s * count)
    observed = {name: observed[name] for name in expected}
    if not expected:
        return None
    return diff_profiles(expected, observed)


# -- bundles ------------------------------------------------------------------


class IncidentBundle:
    """One schema-versioned incident: alert + window + attribution."""

    def __init__(
        self,
        kernel: str,
        t: float,
        alert: Mapping[str, object],
        window: Mapping[str, List[dict]],
        attribution: Mapping[str, object],
        incident_id: str = "",
    ) -> None:
        self.kernel = kernel
        self.t = float(t)
        self.alert = dict(alert)
        self.window = {key: list(events) for key, events in window.items()}
        self.attribution = dict(attribution)
        self.incident_id = incident_id or incident_fingerprint(
            {"kernel": kernel, "alert": self.alert, "window": self.window}
        )

    @classmethod
    def build(
        cls,
        kernel: str,
        alert: Mapping[str, object],
        flight: FlightRecorder,
        baseline: object = None,
    ) -> "IncidentBundle":
        window = flight.snapshot()
        return cls(
            kernel=kernel,
            t=float(alert.get("t", 0.0)),
            alert=alert,
            window=window,
            attribution=attribute_incident(alert, window, baseline),
        )

    def counts(self) -> Dict[str, int]:
        return {key: len(events) for key, events in sorted(self.window.items())}

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": INCIDENT_SCHEMA,
            "incident_id": self.incident_id,
            "kernel": self.kernel,
            "t": self.t,
            "alert": self.alert,
            "attribution": self.attribution,
            "counts": self.counts(),
            "window": self.window,
        }

    def write(self, directory: PathLike) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"INC_{self.incident_id}.json"
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path


# -- loading ------------------------------------------------------------------


def load_incident(path: PathLike) -> Dict[str, object]:
    """Read one incident bundle, with named errors (never a traceback)."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ValueError(f"{path}: cannot read incident bundle ({error})") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: incident bundle must be a JSON object")
    if document.get("schema") != INCIDENT_SCHEMA:
        raise ValueError(
            f"{path}: unknown schema {document.get('schema')!r} "
            f"(expected {INCIDENT_SCHEMA!r})"
        )
    return document


def incident_paths(directory: PathLike) -> List[Path]:
    """All ``INC_*.json`` bundles under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"{directory}: not a directory (no incidents recorded?)")
    return sorted(directory.glob("INC_*.json"))
