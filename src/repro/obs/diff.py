"""Span-level trace diffing: attribute a wall-time delta to stages.

Two traced runs of the same workload produce two span trees whose
*shapes* agree (same span names, same counts — the pipeline is
deterministic) but whose *durations* differ.  Aggregating each trace
per span name and subtracting the aggregates answers "where did the
time go": a regression in the engine hot path shows up as a large
positive delta on ``engine.evaluate`` / ``backend.run_truths``, a new
pipeline stage shows up as an *added* span name, a removed
optimization as a *removed* one.

Inputs can be live :class:`~repro.obs.tracing.Span` lists or exported
Chrome ``trace_event`` JSON files (``socrates obs diff a.json
b.json``), so baselines captured by the bench harness and ad-hoc
``--trace-out`` artifacts diff interchangeably.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.obs.tracing import Span

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SpanAggregate:
    """All spans of one name, folded: how many and how long in total."""

    count: int
    total_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass(frozen=True)
class SpanDelta:
    """One span name's change between trace *a* and trace *b*."""

    name: str
    status: str  # "added" | "removed" | "changed" | "unchanged"
    count_a: int
    count_b: int
    total_a_s: float
    total_b_s: float

    @property
    def delta_s(self) -> float:
        return self.total_b_s - self.total_a_s

    @property
    def ratio(self) -> float:
        """``total_b / total_a`` (inf for added, 0 for removed)."""
        if self.total_a_s <= 0.0:
            return float("inf") if self.total_b_s > 0.0 else 1.0
        return self.total_b_s / self.total_a_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "total_a_s": self.total_a_s,
            "total_b_s": self.total_b_s,
            "delta_s": self.delta_s,
        }


@dataclass(frozen=True)
class TraceDiff:
    """The full per-span-name comparison of two traces."""

    deltas: List[SpanDelta]
    total_a_s: float
    total_b_s: float

    @property
    def total_delta_s(self) -> float:
        return self.total_b_s - self.total_a_s

    def by_status(self, status: str) -> List[SpanDelta]:
        return [delta for delta in self.deltas if delta.status == status]

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_a_s": self.total_a_s,
            "total_b_s": self.total_b_s,
            "total_delta_s": self.total_delta_s,
            "deltas": [delta.as_dict() for delta in self.deltas],
        }


# -- aggregation --------------------------------------------------------------


def aggregate_spans(spans: Sequence[Span]) -> Dict[str, SpanAggregate]:
    """Fold live spans into per-name (count, total duration)."""
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for span in spans:
        counts[span.name] = counts.get(span.name, 0) + 1
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
    return {
        name: SpanAggregate(count=counts[name], total_s=totals[name])
        for name in counts
    }


def profile_chrome_trace(path: PathLike) -> Dict[str, SpanAggregate]:
    """Per-span-name aggregates of an exported Chrome trace file."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as error:
        raise ValueError(f"{path}: cannot read trace ({error})") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing top-level 'traceEvents' array")
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for event in document["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        counts[name] = counts.get(name, 0) + 1
        totals[name] = totals.get(name, 0.0) + float(event.get("dur", 0.0)) / 1e6
    return {
        name: SpanAggregate(count=counts[name], total_s=totals[name])
        for name in counts
    }


# -- diffing ------------------------------------------------------------------


def diff_profiles(
    profile_a: Mapping[str, SpanAggregate],
    profile_b: Mapping[str, SpanAggregate],
) -> TraceDiff:
    """Compare two per-span-name aggregates; deltas sorted by
    ``|delta_s|`` descending (name as tie-break, so output is stable)."""
    deltas: List[SpanDelta] = []
    for name in set(profile_a) | set(profile_b):
        in_a = profile_a.get(name)
        in_b = profile_b.get(name)
        if in_a is None:
            status = "added"
        elif in_b is None:
            status = "removed"
        elif (
            in_a.count != in_b.count or in_a.total_s != in_b.total_s
        ):
            status = "changed"
        else:
            status = "unchanged"
        deltas.append(
            SpanDelta(
                name=name,
                status=status,
                count_a=in_a.count if in_a else 0,
                count_b=in_b.count if in_b else 0,
                total_a_s=in_a.total_s if in_a else 0.0,
                total_b_s=in_b.total_s if in_b else 0.0,
            )
        )
    deltas.sort(key=lambda delta: (-abs(delta.delta_s), delta.name))
    return TraceDiff(
        deltas=deltas,
        total_a_s=sum(agg.total_s for agg in profile_a.values()),
        total_b_s=sum(agg.total_s for agg in profile_b.values()),
    )


def diff_chrome_traces(path_a: PathLike, path_b: PathLike) -> TraceDiff:
    """Diff two exported Chrome trace files (``socrates obs diff``)."""
    return diff_profiles(profile_chrome_trace(path_a), profile_chrome_trace(path_b))


def diff_span_lists(
    spans_a: Sequence[Span], spans_b: Sequence[Span]
) -> TraceDiff:
    """Diff two live span lists (used by the bench gate in-process)."""
    return diff_profiles(aggregate_spans(spans_a), aggregate_spans(spans_b))


# -- rendering ----------------------------------------------------------------


def format_diff(
    diff: TraceDiff,
    limit: int = 20,
    hide_unchanged: bool = True,
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """A fixed-width table of the largest deltas, biggest first."""
    rows = [
        delta
        for delta in diff.deltas
        if not (hide_unchanged and delta.status == "unchanged")
    ]
    shown = rows[: limit if limit > 0 else len(rows)]
    name_width = max([len(delta.name) for delta in shown] + [len("span")])
    lines = [
        f"{'span':<{name_width}s} {'status':>9s} {'n(' + label_a + ')':>7s} "
        f"{'n(' + label_b + ')':>7s} {'t(' + label_a + ')':>10s} "
        f"{'t(' + label_b + ')':>10s} {'delta':>10s}"
    ]
    for delta in shown:
        lines.append(
            f"{delta.name:<{name_width}s} {delta.status:>9s} "
            f"{delta.count_a:7d} {delta.count_b:7d} "
            f"{delta.total_a_s:10.4f} {delta.total_b_s:10.4f} "
            f"{delta.delta_s:+10.4f}"
        )
    hidden = len(rows) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more span name(s) below the cutoff")
    unchanged = len(diff.deltas) - len(rows)
    if hide_unchanged and unchanged > 0:
        lines.append(f"({unchanged} span name(s) identical in both traces)")
    lines.append(
        f"{'TOTAL':<{name_width}s} {'':>9s} {'':>7s} {'':>7s} "
        f"{diff.total_a_s:10.4f} {diff.total_b_s:10.4f} "
        f"{diff.total_delta_s:+10.4f}"
    )
    return "\n".join(lines)
