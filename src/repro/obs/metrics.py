"""The metrics registry: counters, gauges, and histograms.

This generalizes the ad-hoc counters that existed before `repro.obs`
(the evaluation engine's cache counters, the mARGOt monitors'
windowed statistics) into three Prometheus-style instrument types:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — last-write-wins point-in-time values;
* :class:`Histogram` — fixed-boundary bucketed distributions with
  cumulative counts, plus sum and count.

Instruments are created through a :class:`MetricsRegistry` and are
identity-stable: asking twice for the same name returns the same
object, so hot paths can cache the handle once.  The
:class:`NullMetricsRegistry` hands out shared no-op instruments, which
keeps disabled instrumentation at a single dynamic dispatch per call.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Valid Prometheus label names (label values are arbitrary strings,
#: escaped at export time; see :mod:`repro.obs.export`).
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Canonical immutable form of an instrument's labels.
LabelItems = Tuple[Tuple[str, str], ...]


def canonical_labels(labels: Optional[Mapping[str, str]]) -> LabelItems:
    """Sorted, validated ``(name, value)`` tuples for a label mapping."""
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_NAME.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec:
    backslash, double-quote and newline become ``\\\\``, ``\\"`` and
    ``\\n``."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`; reject stray backslashes."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\":
            if index + 1 >= len(value):
                raise ValueError(f"label value {value!r} ends in a bare backslash")
            escape = value[index + 1]
            if escape == "\\":
                out.append("\\")
            elif escape == '"':
                out.append('"')
            elif escape == "n":
                out.append("\n")
            else:
                raise ValueError(
                    f"label value {value!r} has invalid escape \\{escape}"
                )
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def format_labels(labels: LabelItems) -> str:
    """Render labels as ``{k="v",...}`` with escaped values ('' if none)."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"

#: Default boundaries for duration histograms (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
)

#: Default boundaries for batch-size histograms (points per call).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "value")

    def __init__(
        self, name: str, help: str = "", labels: LabelItems = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    @property
    def labelled_name(self) -> str:
        return self.name + format_labels(self.labels)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind, "name": self.name, "value": self.value
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "value")

    def __init__(
        self, name: str, help: str = "", labels: LabelItems = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    @property
    def labelled_name(self) -> str:
        return self.name + format_labels(self.labels)

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind, "name": self.name, "value": self.value
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


class Histogram:
    """A fixed-boundary bucketed distribution.

    ``boundaries`` are the inclusive upper edges of the finite buckets
    (Prometheus ``le`` semantics); one implicit +Inf bucket catches the
    rest.  Boundaries are fixed at creation so two histograms with the
    same name always aggregate compatibly.
    """

    kind = "histogram"

    __slots__ = (
        "name", "help", "labels", "boundaries", "bucket_counts", "total", "count",
        "exemplars",
    )

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        labels: LabelItems = (),
    ) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.help = help
        self.labels = labels
        self.boundaries = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        # OpenMetrics exemplars: per bucket, the labels + value of the
        # most recent observation that landed there (None = no
        # exemplar yet).  Lets a dashboard jump from a latency bucket
        # straight to the span id that produced it.
        self.exemplars: List[Optional[Tuple[LabelItems, float]]] = [None] * (
            len(edges) + 1
        )

    @property
    def labelled_name(self) -> str:
        return self.name + format_labels(self.labels)

    def observe(
        self, value: float, exemplar: Optional[Mapping[str, str]] = None
    ) -> None:
        index = bisect_left(self.boundaries, value)
        self.bucket_counts[index] += 1
        self.total += value
        self.count += 1
        if exemplar is not None:
            self.exemplars[index] = (canonical_labels(exemplar), float(value))

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus-style (last = count)."""
        out: List[int] = []
        running = 0
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.total,
            "count": self.count,
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        if any(exemplar is not None for exemplar in self.exemplars):
            record["exemplars"] = [
                None
                if exemplar is None
                else {"labels": dict(exemplar[0]), "value": exemplar[1]}
                for exemplar in self.exemplars
            ]
        return record


class MetricsRegistry:
    """Creates and owns named instruments (get-or-create semantics).

    Instruments are keyed by ``(name, labels)``: the same name with
    different label sets yields distinct instruments (one time series
    each, Prometheus-style), while repeating a ``(name, labels)`` pair
    returns the identical object.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, name: str, labels: LabelItems, factory, kind: str):
        key = (name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif getattr(instrument, "kind", None) != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{getattr(instrument, 'kind', '?')}, not {kind}"
            )
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        items = canonical_labels(labels)
        return self._get(name, items, lambda: Counter(name, help, items), "counter")

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        items = canonical_labels(labels)
        return self._get(name, items, lambda: Gauge(name, help, items), "gauge")

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        items = canonical_labels(labels)
        return self._get(
            name, items, lambda: Histogram(name, boundaries, help, items), "histogram"
        )

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return any(key_name == name for key_name, _ in self._instruments)

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[object]:
        return self._instruments.get((name, canonical_labels(labels)))

    def instruments(self) -> List[object]:
        """All instruments, sorted by (name, labels) for deterministic
        export order."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def as_dict(self) -> Dict[str, object]:
        return {
            instrument.labelled_name: instrument.as_dict()  # type: ignore[attr-defined]
            for instrument in self.instruments()
        }

    # -- absorbing legacy counters --------------------------------------------

    def absorb_engine_counters(self, counters) -> None:
        """Mirror an :class:`~repro.engine.EngineCounters` snapshot.

        Engine counters are monotonic totals, so they land as gauges
        set to the latest snapshot (re-absorbing is idempotent).
        """
        from dataclasses import asdict

        for field_name, value in asdict(counters).items():
            self.gauge(
                f"socrates_engine_{field_name}",
                help=f"engine counter {field_name} (latest snapshot)",
            ).set(value)

    def absorb_monitor(self, metric: str, monitor) -> None:
        """Mirror one mARGOt monitor's windowed statistics as gauges."""
        stats = monitor.summary()
        for stat_name, value in stats.items():
            self.gauge(
                f"socrates_monitor_{metric}_{stat_name}",
                help=f"mARGOt {metric} monitor {stat_name} over its window",
            ).set(value)

    def absorb_monitors(self, monitors: Mapping[str, object]) -> None:
        for metric, monitor in monitors.items():
            self.absorb_monitor(metric, monitor)


class _NullInstrument:
    """Shared sink for all disabled instruments."""

    __slots__ = ()
    name = "null"
    help = ""
    kind = "null"
    labels: LabelItems = ()
    labelled_name = "null"
    value = 0.0
    total = 0.0
    count = 0
    boundaries: Tuple[float, ...] = ()
    exemplars: Tuple = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(
        self, value: float, exemplar: Optional[Mapping[str, str]] = None
    ) -> None:
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"kind": "null", "name": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments ignore every observation."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", labels=None) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, boundaries=DEFAULT_TIME_BUCKETS, help="", labels=None):  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def absorb_engine_counters(self, counters) -> None:
        return None

    def absorb_monitor(self, metric: str, monitor) -> None:
        return None

    def absorb_monitors(self, monitors) -> None:
        return None


#: Process-wide disabled registry.
NULL_METRICS = NullMetricsRegistry()
