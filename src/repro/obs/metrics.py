"""The metrics registry: counters, gauges, and histograms.

This generalizes the ad-hoc counters that existed before `repro.obs`
(the evaluation engine's cache counters, the mARGOt monitors'
windowed statistics) into three Prometheus-style instrument types:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — last-write-wins point-in-time values;
* :class:`Histogram` — fixed-boundary bucketed distributions with
  cumulative counts, plus sum and count.

Instruments are created through a :class:`MetricsRegistry` and are
identity-stable: asking twice for the same name returns the same
object, so hot paths can cache the handle once.  The
:class:`NullMetricsRegistry` hands out shared no-op instruments, which
keeps disabled instrumentation at a single dynamic dispatch per call.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default boundaries for duration histograms (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
)

#: Default boundaries for batch-size histograms (points per call).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """A fixed-boundary bucketed distribution.

    ``boundaries`` are the inclusive upper edges of the finite buckets
    (Prometheus ``le`` semantics); one implicit +Inf bucket catches the
    rest.  Boundaries are fixed at creation so two histograms with the
    same name always aggregate compatibly.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "boundaries", "bucket_counts", "total", "count")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.help = help
        self.boundaries = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus-style (last = count)."""
        out: List[int] = []
        running = 0
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Creates and owns named instruments (get-or-create semantics)."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif getattr(instrument, "kind", None) != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{getattr(instrument, 'kind', '?')}, not {kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, boundaries, help), "histogram")

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def instruments(self) -> List[object]:
        """All instruments, sorted by name (deterministic export order)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def as_dict(self) -> Dict[str, object]:
        return {
            instrument.name: instrument.as_dict()  # type: ignore[attr-defined]
            for instrument in self.instruments()
        }

    # -- absorbing legacy counters --------------------------------------------

    def absorb_engine_counters(self, counters) -> None:
        """Mirror an :class:`~repro.engine.EngineCounters` snapshot.

        Engine counters are monotonic totals, so they land as gauges
        set to the latest snapshot (re-absorbing is idempotent).
        """
        from dataclasses import asdict

        for field_name, value in asdict(counters).items():
            self.gauge(
                f"socrates_engine_{field_name}",
                help=f"engine counter {field_name} (latest snapshot)",
            ).set(value)

    def absorb_monitor(self, metric: str, monitor) -> None:
        """Mirror one mARGOt monitor's windowed statistics as gauges."""
        stats = monitor.summary()
        for stat_name, value in stats.items():
            self.gauge(
                f"socrates_monitor_{metric}_{stat_name}",
                help=f"mARGOt {metric} monitor {stat_name} over its window",
            ).set(value)

    def absorb_monitors(self, monitors: Mapping[str, object]) -> None:
        for metric, monitor in monitors.items():
            self.absorb_monitor(metric, monitor)


class _NullInstrument:
    """Shared sink for all disabled instruments."""

    __slots__ = ()
    name = "null"
    help = ""
    kind = "null"
    value = 0.0
    total = 0.0
    count = 0
    boundaries: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"kind": "null", "name": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments ignore every observation."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, boundaries=DEFAULT_TIME_BUCKETS, help=""):  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def absorb_engine_counters(self, counters) -> None:
        return None

    def absorb_monitor(self, metric: str, monitor) -> None:
        return None

    def absorb_monitors(self, monitors) -> None:
        return None


#: Process-wide disabled registry.
NULL_METRICS = NullMetricsRegistry()
