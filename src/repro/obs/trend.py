"""History-aware drift detection over telemetry-warehouse runs.

The committed-baseline bench gate compares one fresh run against one
blessed snapshot.  ``socrates obs trend`` upgrades that to a sliding
window: the latest recorded run is judged against the robust
median+MAD envelope of the N runs before it, using the same limit
rule as :mod:`repro.bench.gate` —

    limit = median + max(threshold * median, mad_k * MAD)

so a genuine regression trips the gate (exit 3) while run-to-run
noise inside the historical envelope does not.  When the runs carry
folded stack profiles, the drift verdict names the offending stacks
by diffing the latest profile against the per-stack historical
median (reusing :func:`repro.obs.profile.diff_flame`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench.stats import mad as _mad, median as _median
from repro.obs.profile import FlameProfile, StackStat, diff_flame
from repro.obs.store import TelemetryStore

#: Sliding-window defaults, mirroring the bench gate's spirit.
DEFAULT_WINDOW = 5
DEFAULT_THRESHOLD = 0.10
DEFAULT_MAD_K = 6.0

#: Minimum history runs needed for a meaningful envelope.
MIN_HISTORY = 2


@dataclass(frozen=True)
class StackAttribution:
    stack: str
    history_s: float
    latest_s: float

    @property
    def delta_s(self) -> float:
        return self.latest_s - self.history_s


@dataclass
class TrendVerdict:
    """The outcome of one sliding-window drift check."""

    target: str
    metric: str
    history: int
    window: int
    median: float
    mad: float
    limit: float
    latest: float
    latest_run: str
    drift: bool
    offenders: List[StackAttribution] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drift

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "metric": self.metric,
            "history": self.history,
            "window": self.window,
            "median": self.median,
            "mad": self.mad,
            "limit": self.limit,
            "latest": self.latest,
            "latest_run": self.latest_run,
            "ok": self.ok,
            "drift": self.drift,
            "offenders": [
                {
                    "stack": off.stack,
                    "history_s": off.history_s,
                    "latest_s": off.latest_s,
                    "delta_s": off.delta_s,
                }
                for off in self.offenders
            ],
        }

    def format(self) -> str:
        verdict = "DRIFT" if self.drift else "ok"
        lines = [
            f"trend {self.target} [{self.metric}]: {verdict}",
            f"  history n={self.history} (window {self.window}) "
            f"median={self.median:.6f} mad={self.mad:.6f}",
            f"  limit={self.limit:.6f} latest={self.latest:.6f} "
            f"(run {self.latest_run})",
        ]
        for off in self.offenders:
            lines.append(
                f"  offending stack: {off.stack} "
                f"({off.history_s:.6f}s -> {off.latest_s:.6f}s, "
                f"+{off.delta_s:.6f}s)"
            )
        return "\n".join(lines)


def drift_limit(
    samples: Sequence[float],
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> float:
    """The gate's robust upper envelope over a history sample."""
    center = _median(list(samples))
    spread = _mad(list(samples))
    return center + max(threshold * center, mad_k * spread)


def _metric_value(record: Mapping[str, object], metric: str) -> Optional[float]:
    metrics = record.get("metrics")
    if isinstance(metrics, dict) and metric in metrics:
        try:
            return float(metrics[metric])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
    return None


def _load_profile(
    store: TelemetryStore, record: Mapping[str, object], label: str
) -> Optional[FlameProfile]:
    for entry in record.get("artifacts", ()):  # type: ignore[union-attr]
        if str(entry.get("name")) == "profile.folded":  # type: ignore[union-attr]
            blob = store.find_blob(str(entry["sha256"]), str(entry.get("suffix", "")))  # type: ignore[index]
            if blob is None:
                return None
            return FlameProfile.from_folded(blob.read_text(), label=label)
    return None


def _median_profile(profiles: Sequence[FlameProfile], label: str) -> FlameProfile:
    """Per-stack median self-time over a history of profiles."""
    samples: Dict[str, List[float]] = {}
    counts: Dict[str, List[float]] = {}
    for profile in profiles:
        for stack, stat in profile.stacks.items():
            samples.setdefault(stack, []).append(stat.self_s)
            counts.setdefault(stack, []).append(float(stat.count))
    merged = FlameProfile(label=label)
    for stack, values in samples.items():
        # Stacks absent from a run count as zero time there — a stack
        # present in only one historical run should not set the bar.
        while len(values) < len(profiles):
            values.append(0.0)
        merged.stacks[stack] = StackStat(
            self_s=_median(values), count=int(_median(counts[stack]))
        )
    return merged


def attribute_stacks(
    store: TelemetryStore,
    history: Sequence[Mapping[str, object]],
    latest: Mapping[str, object],
    limit: int = 5,
) -> List[StackAttribution]:
    """Name the stacks that grew in the latest run vs the history median."""
    base_profiles = []
    for record in history:
        profile = _load_profile(store, record, label=str(record.get("run_id", "")))
        if profile is not None:
            base_profiles.append(profile)
    latest_profile = _load_profile(store, latest, label="latest")
    if not base_profiles or latest_profile is None:
        return []
    base = _median_profile(base_profiles, label="history")
    diff = diff_flame(base, latest_profile, label_a="history", label_b="latest")
    offenders = [
        StackAttribution(
            stack=delta.stack, history_s=delta.self_a, latest_s=delta.self_b
        )
        for delta in diff.deltas
        # strictly positive growth, ignoring float residue from the
        # virtual clock's accumulated ticks
        if delta.delta_s > 1e-9
    ]
    return offenders[:limit]


def trend_over_runs(
    store: TelemetryStore,
    records: Sequence[Mapping[str, object]],
    target: str,
    metric: str = "wall_s",
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> TrendVerdict:
    """Judge the newest of ``records`` against the window before it.

    ``records`` must be in record (journal) order and all carry the
    metric.  Raises ValueError when fewer than :data:`MIN_HISTORY`
    historical runs carry it — callers map that to exit code 2.
    """
    if window < MIN_HISTORY:
        raise ValueError(f"--window must be >= {MIN_HISTORY}, got {window}")
    carrying = [
        record for record in records if _metric_value(record, metric) is not None
    ]
    if len(carrying) < MIN_HISTORY + 1:
        raise ValueError(
            f"trend {target!r} needs at least {MIN_HISTORY + 1} recorded runs "
            f"carrying metric {metric!r}, found {len(carrying)}"
        )
    latest = carrying[-1]
    history = carrying[:-1][-window:]
    samples = [_metric_value(record, metric) for record in history]
    values = [value for value in samples if value is not None]
    center = _median(values)
    spread = _mad(values)
    limit = center + max(threshold * center, mad_k * spread)
    latest_value = _metric_value(latest, metric)
    assert latest_value is not None
    drift = latest_value > limit
    offenders: List[StackAttribution] = []
    if drift:
        offenders = attribute_stacks(store, history, latest)
    return TrendVerdict(
        target=target,
        metric=metric,
        history=len(history),
        window=window,
        median=center,
        mad=spread,
        limit=limit,
        latest=latest_value,
        latest_run=str(latest.get("run_id", "")),
        drift=drift,
        offenders=offenders,
    )
