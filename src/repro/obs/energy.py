"""`repro.obs.energy` — the virtual-RAPL energy observatory.

SOCRATES is an *energy-aware* autotuner, but a runtime trace only
carries one scalar (``power_w`` / ``energy_j``) per invocation.  This
module reconstructs where the joules went:

* :func:`build_timeline` turns an adaptive application's
  :class:`~repro.core.adaptive.InvocationRecord` trace into a
  virtual-time ``power(t)`` step series per RAPL-style domain
  (package / core / uncore / DRAM), with idle floors filling any gaps
  between invocations.  The per-domain split comes from
  :meth:`~repro.machine.executor.MachineExecutor.breakdown` — the same
  model terms the invocation actually executed with — scaled so the
  package plane matches the *measured* (noisy) power exactly;
* :class:`EnergyTimeline` exports the series as Chrome ``counter``
  events (Perfetto renders power tracks alongside the span tree), as
  cumulative Prometheus ``socrates_energy_joules_total{domain=,kernel=}``
  counters, and as a CSV timeline;
* :class:`EnergyLedger` books the joules onto (kernel × compiler ×
  threads × binding) operating points, the idle floor, and (optionally)
  the toolflow's build stages, with a conservation invariant — every
  entry's component domains sum to its package energy, and entries sum
  to the totals — enforced by :meth:`EnergyLedger.verify` and by
  ``socrates obs validate``;
* :class:`EnergyBudget` / :func:`check_budgets` watch the Figure 4
  power/energy budgets over a timeline and emit violation alerts into
  the metrics registry and the adaptation audit log (as
  :class:`~repro.obs.audit.SloTrace` records); ``socrates energy slo``
  turns the verdicts into a ``bench gate``-style exit code (0 met,
  3 violated).

Everything here is post-hoc and deterministic: building a timeline or
ledger consumes no random stream, so a seeded run is byte-identical
with the energy observatory on or off.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.machine.power import COMPONENT_DOMAINS, DOMAINS, invocation_energy

PathLike = Union[str, Path]

#: Schema identifier of the exported ledger document.
LEDGER_SCHEMA = "socrates-energy/1"

#: Conservation tolerance (absolute joules / relative), mirroring the
#: acceptance bound: per-domain sums must match package totals to 1e-9.
CONSERVATION_TOL = 1e-9

#: Virtual-time gaps shorter than this are measurement jitter, not idle.
_GAP_EPS_S = 1e-12


def _domain_zeros() -> Dict[str, float]:
    return {domain: 0.0 for domain in DOMAINS}


def _add_domains(into: Dict[str, float], add: Mapping[str, float]) -> None:
    """Accumulate per-domain values, growing ``into`` as needed.

    Machine-wide domains are always present; per-cluster planes
    (``"P:package"``-style keys from heterogeneous machines) appear
    only when the source carries them.
    """
    for domain, value in add.items():
        into[domain] = into.get(domain, 0.0) + value


def _extra_domains(mappings: Sequence[Mapping[str, float]]) -> List[str]:
    """Ordered distinct keys beyond :data:`DOMAINS` (cluster planes)."""
    extras: List[str] = []
    for mapping in mappings:
        for domain in mapping:
            if domain not in DOMAINS and domain not in extras:
                extras.append(domain)
    return extras


@dataclass(frozen=True)
class EnergySample:
    """One piecewise-constant segment of the reconstructed power(t)."""

    start_s: float
    end_s: float
    kind: str  # "active" | "idle"
    kernel: str
    power_w: Mapping[str, float]  # per domain, package included
    compiler: str = ""
    threads: int = 0
    binding: str = ""
    cluster: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def energy_j(self) -> Dict[str, float]:
        """Joules per domain over this segment."""
        return {
            domain: invocation_energy(self.duration_s, watts)
            for domain, watts in self.power_w.items()
        }


class EnergyTimeline:
    """The reconstructed per-domain power(t) series of one trace."""

    def __init__(self, kernel: str, samples: Sequence[EnergySample]) -> None:
        self.kernel = kernel
        self.samples: List[EnergySample] = sorted(
            samples, key=lambda s: (s.start_s, s.end_s)
        )

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def start_s(self) -> float:
        return self.samples[0].start_s if self.samples else 0.0

    @property
    def end_s(self) -> float:
        return self.samples[-1].end_s if self.samples else 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def domains(self) -> List[str]:
        """Every power plane of this timeline: the machine-wide RAPL
        domains plus, on heterogeneous machines, one plane per
        (cluster, domain) pair."""
        return list(DOMAINS) + _extra_domains(
            [sample.power_w for sample in self.samples]
        )

    def totals_j(self) -> Dict[str, float]:
        """Total joules per domain over the whole timeline."""
        totals = _domain_zeros()
        for sample in self.samples:
            _add_domains(totals, sample.energy_j())
        return totals

    def mean_power_w(self) -> Dict[str, float]:
        """Time-averaged watts per domain."""
        duration = self.duration_s
        if duration <= 0:
            return _domain_zeros()
        return {
            domain: joules / duration for domain, joules in self.totals_j().items()
        }

    def peak_power_w(self, domain: str = "package") -> float:
        """Highest instantaneous power of one domain."""
        return max(
            (sample.power_w.get(domain, 0.0) for sample in self.samples),
            default=0.0,
        )

    # -- exports ---------------------------------------------------------------

    def counter_events(self, pid: int = 1) -> List[Dict[str, object]]:
        """Chrome ``trace_event`` counter events (``"ph": "C"``).

        One ``power.<domain>`` counter track per domain; a value event
        at each segment start plus a closing zero at the end of the
        timeline, so Perfetto draws the step series exactly.
        Timestamps are the scenario's *virtual* microseconds.
        """
        events: List[Dict[str, object]] = []
        for domain in self.domains():
            name = f"power.{domain}"
            for sample in self.samples:
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": round(sample.start_s * 1e6, 3),
                        "pid": pid,
                        "args": {"W": round(sample.power_w.get(domain, 0.0), 6)},
                    }
                )
            if self.samples:
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": round(self.end_s * 1e6, 3),
                        "pid": pid,
                        "args": {"W": 0.0},
                    }
                )
        return events

    def to_csv(self, path: PathLike) -> int:
        """Write the timeline as CSV; returns the number of rows.

        Cluster-plane columns (and the ``cluster`` knob column) appear
        only on timelines that carry them, keeping homogeneous-machine
        files byte-identical.
        """
        domains = self.domains()
        clustered = len(domains) > len(DOMAINS)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            knob_columns = ["start_s", "end_s", "kind", "compiler", "threads", "binding"]
            if clustered:
                knob_columns.append("cluster")
            writer.writerow(knob_columns + [f"{domain}_w" for domain in domains])
            for sample in self.samples:
                row = [
                    repr(float(sample.start_s)),
                    repr(float(sample.end_s)),
                    sample.kind,
                    sample.compiler,
                    sample.threads,
                    sample.binding,
                ]
                if clustered:
                    row.append(sample.cluster)
                writer.writerow(
                    row
                    + [
                        repr(float(sample.power_w.get(domain, 0.0)))
                        for domain in domains
                    ]
                )
        return len(self.samples)

    def record_metrics(self, metrics) -> None:
        """Mirror the timeline into a metrics registry.

        Cumulative ``socrates_energy_joules_total{domain=,kernel=}``
        counters plus ``socrates_power_watts{domain=,kernel=}`` mean
        gauges — the series ``socrates obs top`` renders as the energy
        meter row.
        """
        totals = self.totals_j()
        means = self.mean_power_w()
        for domain in self.domains():
            labels = {"domain": domain, "kernel": self.kernel}
            metrics.counter(
                "socrates_energy_joules_total",
                help="energy attributed by the virtual-RAPL observatory",
                labels=labels,
            ).inc(totals[domain])
            metrics.gauge(
                "socrates_power_watts",
                help="time-averaged power over the reconstructed timeline",
                labels=labels,
            ).set(means[domain])


def attribute_record(app, record) -> Dict[str, float]:
    """Per-domain watts of one :class:`InvocationRecord`.

    Re-derives the (compiled kernel, placement) the record dispatched
    to, reads the noise-free domain breakdown, and scales the component
    planes so the package plane equals the record's *measured* power
    exactly (meter noise is multiplicative, so it scales all domains
    alike).
    """
    version, placement = app.resolve(
        record.compiler,
        record.binding,
        record.threads,
        getattr(record, "cluster", "") or None,
    )
    breakdown = app.executor.breakdown(version.compiled, placement)
    truth_package = breakdown.package_w
    scale = record.power_w / truth_package if truth_package > 0 else 0.0
    power = {"package": record.power_w}
    for domain in COMPONENT_DOMAINS:
        power[domain] = breakdown.domain(domain) * scale
    if len(breakdown.cluster_names()) >= 2:
        for plane, watts in breakdown.cluster_totals().items():
            power[plane] = watts * scale
    return power


def build_timeline(app, records, include_idle: bool = True) -> EnergyTimeline:
    """Reconstruct the per-domain power(t) series of a trace.

    ``records`` is the invocation trace of ``app`` (an
    :class:`~repro.core.adaptive.AdaptiveApplication`); each record's
    ``timestamp`` is its *end* time and ``time_s`` its duration, so the
    active segments tile virtual time.  With ``include_idle``, any gap
    between consecutive invocations is filled with the machine's idle
    floor (uncore + idle core leakage, zero DRAM).
    """
    idle_breakdown = app.executor.idle_breakdown()
    idle_power = idle_breakdown.totals()
    if len(idle_breakdown.cluster_names()) >= 2:
        idle_power.update(idle_breakdown.cluster_totals())
    samples: List[EnergySample] = []
    previous_end: Optional[float] = None
    for record in records:
        start = record.timestamp - record.time_s
        if (
            include_idle
            and previous_end is not None
            and start - previous_end > _GAP_EPS_S
        ):
            samples.append(
                EnergySample(
                    start_s=previous_end,
                    end_s=start,
                    kind="idle",
                    kernel=app.name,
                    power_w=dict(idle_power),
                )
            )
        samples.append(
            EnergySample(
                start_s=start,
                end_s=record.timestamp,
                kind="active",
                kernel=app.name,
                power_w=attribute_record(app, record),
                compiler=record.compiler,
                threads=record.threads,
                binding=record.binding,
                cluster=getattr(record, "cluster", ""),
            )
        )
        previous_end = record.timestamp
    return EnergyTimeline(kernel=app.name, samples=samples)


# -- the attribution ledger ---------------------------------------------------


@dataclass
class LedgerEntry:
    """Joules booked to one operating point (or the idle floor)."""

    kernel: str
    compiler: str
    threads: int
    binding: str
    kind: str = "active"  # "active" | "idle"
    cluster: str = ""
    invocations: int = 0
    time_s: float = 0.0
    energy_j: Dict[str, float] = field(default_factory=_domain_zeros)

    @property
    def key(self) -> Tuple[object, ...]:
        base = (self.kernel, self.compiler, self.threads, self.binding)
        return base + ((self.cluster,) if self.cluster else ())

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "kernel": self.kernel,
            "compiler": self.compiler,
            "threads": self.threads,
            "binding": self.binding,
            "kind": self.kind,
            "invocations": self.invocations,
            "time_s": self.time_s,
            "energy_j": dict(self.energy_j),
        }
        if self.cluster:
            document["cluster"] = self.cluster
        return document


@dataclass
class StageEnergy:
    """Host-side energy booked to one toolflow stage."""

    stage: str
    time_s: float
    energy_j: Dict[str, float] = field(default_factory=_domain_zeros)

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "time_s": self.time_s,
            "energy_j": dict(self.energy_j),
        }


class LedgerConservationError(ValueError):
    """The ledger's domain sums do not match its package totals."""


class EnergyLedger:
    """Books a timeline's joules onto operating points and stages.

    Two invariants, checked by :meth:`verify`:

    * **domain closure** — for every entry and for the totals,
      ``core + uncore + dram == package`` within ``1e-9`` (relative);
    * **additivity** — entries sum to :meth:`totals_j`, and the package
      total equals the trace's own ``sum(energy_j)``.
    """

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
        self.duration_s = 0.0
        self._entries: Dict[Tuple[object, ...], LedgerEntry] = {}
        self._idle = LedgerEntry(
            kernel=kernel, compiler="", threads=0, binding="", kind="idle"
        )
        self._stages: List[StageEnergy] = []

    # -- building --------------------------------------------------------------

    @classmethod
    def from_timeline(
        cls,
        timeline: EnergyTimeline,
        stage_events=None,
        idle_power_w: Optional[Mapping[str, float]] = None,
    ) -> "EnergyLedger":
        """Aggregate a timeline; optionally book toolflow stages too.

        ``stage_events`` are the build's
        :class:`~repro.engine.telemetry.StageEvent` records;
        their (host-side) energy is modeled as the idle floor
        ``idle_power_w`` held for the stage's wall time — toolflow
        stages run on the host, not the simulated kernel, so the idle
        plane is the honest attribution.
        """
        ledger = cls(kernel=timeline.kernel)
        ledger.duration_s = timeline.duration_s
        for sample in timeline.samples:
            ledger.add_sample(sample)
        for event in stage_events or ():
            ledger.add_stage(
                event.stage, event.wall_time_s, idle_power_w or _domain_zeros()
            )
        return ledger

    def add_sample(self, sample: EnergySample) -> None:
        if sample.kind == "idle":
            entry = self._idle
        else:
            cluster = getattr(sample, "cluster", "")
            key = (
                sample.kernel,
                sample.compiler,
                sample.threads,
                sample.binding,
                cluster,
            )
            entry = self._entries.get(key)
            if entry is None:
                entry = LedgerEntry(
                    kernel=sample.kernel,
                    compiler=sample.compiler,
                    threads=sample.threads,
                    binding=sample.binding,
                    cluster=cluster,
                )
                self._entries[key] = entry
            entry.invocations += 1
        entry.time_s += sample.duration_s
        _add_domains(entry.energy_j, sample.energy_j())

    def add_stage(
        self, stage: str, wall_time_s: float, power_w: Mapping[str, float]
    ) -> None:
        self._stages.append(
            StageEnergy(
                stage=stage,
                time_s=wall_time_s,
                energy_j={
                    domain: invocation_energy(wall_time_s, power_w.get(domain, 0.0))
                    for domain in DOMAINS
                },
            )
        )

    # -- reading ---------------------------------------------------------------

    @property
    def entries(self) -> List[LedgerEntry]:
        """Operating-point entries, most joules first."""
        return sorted(
            self._entries.values(), key=lambda e: -e.energy_j["package"]
        )

    @property
    def idle(self) -> LedgerEntry:
        return self._idle

    @property
    def stages(self) -> List[StageEnergy]:
        return list(self._stages)

    def totals_j(self) -> Dict[str, float]:
        """Runtime joules per domain (operating points + idle floor)."""
        totals = _domain_zeros()
        for entry in self._entries.values():
            _add_domains(totals, entry.energy_j)
        _add_domains(totals, self._idle.energy_j)
        return totals

    def stage_totals_j(self) -> Dict[str, float]:
        """Host-side joules per domain across the toolflow stages."""
        totals = _domain_zeros()
        for stage in self._stages:
            _add_domains(totals, stage.energy_j)
        return totals

    # -- invariants ------------------------------------------------------------

    def verify(self, records=None, tolerance: float = CONSERVATION_TOL) -> None:
        """Raise :class:`LedgerConservationError` on any broken invariant.

        With ``records`` (the source trace), additionally checks that
        the booked package joules equal the trace's own energy — and
        that every record's ``energy_j`` is consistent with
        ``invocation_energy(time_s, power_w)``.
        """
        for entry in list(self._entries.values()) + [self._idle]:
            _check_domain_closure(entry.energy_j, f"entry {entry.key}", tolerance)
        for stage in self._stages:
            _check_domain_closure(
                stage.energy_j, f"stage {stage.stage!r}", tolerance
            )
        totals = self.totals_j()
        _check_domain_closure(totals, "totals", tolerance)
        _check_domain_closure(self.stage_totals_j(), "stage totals", tolerance)
        if records is not None:
            trace_j = 0.0
            for index, record in enumerate(records):
                expected = invocation_energy(record.time_s, record.power_w)
                if abs(record.energy_j - expected) > tolerance * max(
                    1.0, abs(expected)
                ):
                    raise LedgerConservationError(
                        f"trace record {index}: energy_j={record.energy_j!r} "
                        f"inconsistent with time_s*power_w={expected!r}"
                    )
                trace_j += record.energy_j
            active_j = sum(
                entry.energy_j["package"] for entry in self._entries.values()
            )
            if abs(active_j - trace_j) > tolerance * max(1.0, abs(trace_j)):
                raise LedgerConservationError(
                    f"ledger books {active_j!r} J onto operating points but the "
                    f"trace measured {trace_j!r} J"
                )

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": LEDGER_SCHEMA,
            "kernel": self.kernel,
            "duration_s": self.duration_s,
            "totals_j": self.totals_j(),
            "operating_points": [entry.as_dict() for entry in self.entries],
            "idle": self._idle.as_dict(),
            "stages": [stage.as_dict() for stage in self._stages],
            "stage_totals_j": self.stage_totals_j(),
        }

    def write(self, path: PathLike) -> Path:
        """Write the ledger document (validated by ``obs validate``)."""
        target = Path(path)
        with open(target, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def _check_domain_closure(
    energy: Mapping[str, float], label: str, tolerance: float
) -> None:
    package = energy.get("package", 0.0)
    components = sum(energy.get(domain, 0.0) for domain in COMPONENT_DOMAINS)
    if abs(components - package) > tolerance * max(1.0, abs(package)):
        raise LedgerConservationError(
            f"{label}: domain sum {components!r} J != package {package!r} J "
            f"(tolerance {tolerance:g})"
        )
    # the same invariant holds within every cluster plane ("P:core" +
    # "P:uncore" + "P:dram" == "P:package"), and the cluster packages
    # must themselves tile the machine-wide package
    clusters = []
    for key in energy:
        if ":" in key:
            prefix = key.split(":", 1)[0]
            if prefix not in clusters:
                clusters.append(prefix)
    if not clusters:
        return
    cluster_package_sum = 0.0
    for prefix in clusters:
        cluster_package = energy.get(f"{prefix}:package", 0.0)
        cluster_components = sum(
            energy.get(f"{prefix}:{domain}", 0.0) for domain in COMPONENT_DOMAINS
        )
        if abs(cluster_components - cluster_package) > tolerance * max(
            1.0, abs(cluster_package)
        ):
            raise LedgerConservationError(
                f"{label}: cluster {prefix!r} domain sum {cluster_components!r} J "
                f"!= cluster package {cluster_package!r} J (tolerance {tolerance:g})"
            )
        cluster_package_sum += cluster_package
    if abs(cluster_package_sum - package) > tolerance * max(1.0, abs(package)):
        raise LedgerConservationError(
            f"{label}: cluster packages sum to {cluster_package_sum!r} J "
            f"!= machine package {package!r} J (tolerance {tolerance:g})"
        )


# -- budget SLOs --------------------------------------------------------------


@dataclass(frozen=True)
class EnergyBudget:
    """A declared power/energy budget (the Figure 4 sweep values).

    Any subset of the three limits may be set: ``power_w`` caps the
    time-averaged power, ``peak_power_w`` the instantaneous power of
    any segment, ``energy_j`` the total joules.  ``domain`` selects the
    power plane the limits apply to — ``"package"`` (default) for the
    machine-wide budget, a RAPL component, or a per-cluster plane such
    as ``"P:package"`` on heterogeneous machines.
    """

    name: str
    power_w: Optional[float] = None
    peak_power_w: Optional[float] = None
    energy_j: Optional[float] = None
    domain: str = "package"

    def __post_init__(self) -> None:
        if self.power_w is None and self.peak_power_w is None and self.energy_j is None:
            raise ValueError(f"budget {self.name!r} declares no limit")


@dataclass(frozen=True)
class BudgetVerdict:
    """One budget checked against one timeline."""

    budget: EnergyBudget
    mean_power_w: float
    peak_power_w: float
    total_energy_j: float
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def message(self) -> str:
        if self.ok:
            return (
                f"budget {self.budget.name!r}: met "
                f"(mean {self.mean_power_w:.1f} W, peak {self.peak_power_w:.1f} W, "
                f"{self.total_energy_j:.1f} J)"
            )
        return f"budget {self.budget.name!r}: VIOLATED ({'; '.join(self.violations)})"

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "budget": self.budget.name,
            "power_w": self.budget.power_w,
            "peak_power_w": self.budget.peak_power_w,
            "energy_j": self.budget.energy_j,
            "mean_power_w": self.mean_power_w,
            "observed_peak_power_w": self.peak_power_w,
            "total_energy_j": self.total_energy_j,
            "ok": self.ok,
            "violations": list(self.violations),
        }
        if self.budget.domain != "package":
            document["domain"] = self.budget.domain
        return document


def check_budgets(
    timeline: EnergyTimeline,
    budgets: Sequence[EnergyBudget],
    metrics=None,
    audit=None,
) -> List[BudgetVerdict]:
    """Evaluate budgets over a timeline; emit alerts on violation.

    Violations increment
    ``socrates_energy_budget_violations_total{budget=,kernel=}`` in
    ``metrics`` and append an :class:`~repro.obs.audit.SloTrace` to
    ``audit`` — the same audit log that explains the adaptation
    decisions the violation may have been caused by.
    """
    all_means = timeline.mean_power_w()
    all_totals = timeline.totals_j()
    verdicts: List[BudgetVerdict] = []
    for budget in budgets:
        domain = budget.domain
        mean = all_means.get(domain, 0.0)
        peak = timeline.peak_power_w(domain)
        total = all_totals.get(domain, 0.0)
        plane = "" if domain == "package" else f"{domain} "
        violations: List[str] = []
        if budget.power_w is not None and mean > budget.power_w:
            violations.append(
                f"mean {plane}power {mean:.2f} W exceeds budget {budget.power_w:.2f} W"
            )
        if budget.peak_power_w is not None and peak > budget.peak_power_w:
            violations.append(
                f"peak {plane}power {peak:.2f} W exceeds budget "
                f"{budget.peak_power_w:.2f} W"
            )
        if budget.energy_j is not None and total > budget.energy_j:
            violations.append(
                f"{plane}energy {total:.2f} J exceeds budget {budget.energy_j:.2f} J"
            )
        verdict = BudgetVerdict(
            budget=budget,
            mean_power_w=mean,
            peak_power_w=peak,
            total_energy_j=total,
            violations=tuple(violations),
        )
        verdicts.append(verdict)
        if verdict.violations:
            if metrics is not None:
                metrics.counter(
                    "socrates_energy_budget_violations_total",
                    help="declared power/energy budgets violated by a timeline",
                    labels={"budget": budget.name, "kernel": timeline.kernel},
                ).inc(len(verdict.violations))
            if audit is not None:
                from repro.obs.audit import SloTrace

                audit.record_slo(
                    SloTrace(
                        budget=budget.name,
                        kernel=timeline.kernel,
                        mean_power_w=mean,
                        peak_power_w=peak,
                        total_energy_j=total,
                        violations=tuple(verdict.violations),
                    )
                )
    return verdicts
