"""The adaptation audit log: why the AS-RTM picked what it picked.

Every time ``margot_update`` switches the application to a different
operating point, the AS-RTM (when auditing is enabled) records one
:class:`AdaptationEntry` explaining the decision end to end:

* which optimization state was active and what its rank objective was;
* how each constraint filtered the operating-point list — including
  the runtime-feedback adjustment applied and whether the constraint
  had to be *relaxed* because no OP satisfied it;
* the top-ranked surviving candidates with their rank values;
* the winner, the OP it replaced, and a human-readable ``reason``.

This makes every configuration change in a Figure 5 scenario
explainable: "why did the application move to 16 threads at t=112s?"
is answered by the entry stamped 112s, not by re-deriving the
selection by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ConstraintTrace:
    """How one constraint behaved during one selection."""

    goal: str
    adjustment: float
    survivors_before: int
    survivors_after: int
    relaxed: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "goal": self.goal,
            "adjustment": self.adjustment,
            "survivors_before": self.survivors_before,
            "survivors_after": self.survivors_after,
            "relaxed": self.relaxed,
        }


@dataclass(frozen=True)
class CandidateTrace:
    """One surviving operating point and its rank value."""

    knobs: Tuple[Tuple[str, object], ...]
    rank_value: float

    def as_dict(self) -> Dict[str, object]:
        return {"knobs": dict(self.knobs), "rank_value": self.rank_value}


@dataclass(frozen=True)
class CheckTrace:
    """One static-analysis diagnostic surfaced through the audit log.

    Kept separate from the adaptation entries (and from
    :meth:`AdaptationAuditLog.as_dicts`) so the adaptation JSONL
    schema and its validators are unaffected; ``checks_as_dicts``
    exposes them for reporting.
    """

    app: str
    rule: str
    severity: str
    message: str
    location: str
    phase: str = "woven"

    def as_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class SloTrace:
    """One energy/power budget violation surfaced through the audit log.

    Like :class:`CheckTrace`, kept separate from the adaptation entries
    so the adaptation JSONL schema and its validators are unaffected;
    ``slos_as_dicts`` exposes them for reporting.  Landing the
    violation next to the adaptation decisions lets a reader answer
    "which operating-point switch blew the 90 W budget?" from one log.
    """

    budget: str
    kernel: str
    mean_power_w: float
    peak_power_w: float
    total_energy_j: float
    violations: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "kernel": self.kernel,
            "mean_power_w": self.mean_power_w,
            "peak_power_w": self.peak_power_w,
            "total_energy_j": self.total_energy_j,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class IncidentTrace:
    """One fired alert's incident, cross-linked into the audit log.

    Like :class:`CheckTrace`/:class:`SloTrace`, kept separate from the
    adaptation entries so the adaptation JSONL schema and its
    validators are unaffected.  ``adaptation_sequence`` is the
    sequence number the *next* adaptation entry will get when the
    incident fired, so "which MAPE-K switches happened around this
    incident?" is answered by comparing sequence numbers: entries with
    ``sequence < adaptation_sequence`` preceded the incident, later
    ones reacted to (or followed) it.
    """

    incident_id: str
    alert: str
    detector: str
    severity: str
    t: float
    kernel: str
    message: str
    adaptation_sequence: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "incident_id": self.incident_id,
            "alert": self.alert,
            "detector": self.detector,
            "severity": self.severity,
            "t": self.t,
            "kernel": self.kernel,
            "message": self.message,
            "adaptation_sequence": self.adaptation_sequence,
        }


@dataclass(frozen=True)
class PruneTrace:
    """One lattice point skipped by a static :class:`PrunePlan`.

    Like :class:`CheckTrace`, kept separate from the adaptation
    entries so the adaptation JSONL schema and its validators are
    unaffected.  One trace per masked point makes every saved
    evaluation auditable: which rule masked it, which point it was
    predicted to be dominated by, and at what predicted cost.
    """

    kernel: str
    point: str
    rule: str
    reason: str
    dominated_by: str
    predicted_time_s: float
    predicted_power_w: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "point": self.point,
            "rule": self.rule,
            "reason": self.reason,
            "dominated_by": self.dominated_by,
            "predicted_time_s": self.predicted_time_s,
            "predicted_power_w": self.predicted_power_w,
        }


@dataclass
class AdaptationEntry:
    """One explained operating-point switch."""

    sequence: int
    state: str
    rank: str
    considered: int
    survivors: int
    constraints: List[ConstraintTrace]
    candidates: List[CandidateTrace]
    winner: Dict[str, object]
    winner_rank: float
    switched_from: Optional[Dict[str, object]]
    reason: str
    timestamp: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "state": self.state,
            "rank": self.rank,
            "considered": self.considered,
            "survivors": self.survivors,
            "constraints": [trace.as_dict() for trace in self.constraints],
            "candidates": [candidate.as_dict() for candidate in self.candidates],
            "winner": dict(self.winner),
            "winner_rank": self.winner_rank,
            "switched_from": dict(self.switched_from)
            if self.switched_from is not None
            else None,
            "reason": self.reason,
        }


def describe_rank(rank) -> str:
    """Compact human-readable form of a mARGOt rank objective."""
    from repro.margot.state import RankComposition

    if rank.composition is RankComposition.GEOMETRIC:
        terms = "*".join(f"{f.metric}^{f.coefficient:g}" for f in rank.fields)
    else:
        terms = " + ".join(
            f.metric if f.coefficient == 1.0 else f"{f.coefficient:g}*{f.metric}"
            for f in rank.fields
        )
    return f"{rank.direction.value} {terms}"


def _knobs_text(knobs: Dict[str, object]) -> str:
    return ", ".join(f"{name}={value}" for name, value in sorted(knobs.items()))


def compose_reason(entry: AdaptationEntry) -> str:
    """The default one-line explanation for an entry."""
    parts: List[str] = []
    if entry.switched_from is None:
        parts.append(f"initial selection under state {entry.state!r}")
    else:
        parts.append(
            f"switched from ({_knobs_text(entry.switched_from)}) "
            f"under state {entry.state!r}"
        )
    relaxed = [trace.goal for trace in entry.constraints if trace.relaxed]
    if relaxed:
        parts.append(
            f"constraint(s) {', '.join(relaxed)} relaxed (no OP satisfied them)"
        )
    elif entry.constraints:
        parts.append(
            f"{entry.survivors}/{entry.considered} OPs satisfy all "
            f"{len(entry.constraints)} constraint(s)"
        )
    parts.append(
        f"{entry.rank} picks ({_knobs_text(entry.winner)}) "
        f"with rank {entry.winner_rank:.6g}"
    )
    if len(entry.candidates) > 1:
        runner_up = entry.candidates[1]
        parts.append(
            f"runner-up ({_knobs_text(dict(runner_up.knobs))}) "
            f"at {runner_up.rank_value:.6g}"
        )
    return "; ".join(parts)


class AdaptationAuditLog:
    """Append-only log of explained operating-point switches."""

    def __init__(self, max_candidates: int = 5) -> None:
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self._max_candidates = max_candidates
        self._entries: List[AdaptationEntry] = []
        self._checks: List[CheckTrace] = []
        self._slos: List[SloTrace] = []
        self._incidents: List[IncidentTrace] = []
        self._prunes: List[PruneTrace] = []

    @property
    def max_candidates(self) -> int:
        return self._max_candidates

    @property
    def entries(self) -> List[AdaptationEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, entry: AdaptationEntry) -> AdaptationEntry:
        if not entry.reason:
            entry.reason = compose_reason(entry)
        self._entries.append(entry)
        return entry

    def stamp_last(self, timestamp: float) -> None:
        """Set the virtual-time stamp of the most recent entry."""
        if self._entries:
            self._entries[-1].timestamp = timestamp

    def next_sequence(self) -> int:
        return len(self._entries)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [entry.as_dict() for entry in self._entries]

    # -- static-analysis check traces -----------------------------------------

    @property
    def checks(self) -> List[CheckTrace]:
        return list(self._checks)

    def record_check(self, trace: CheckTrace) -> CheckTrace:
        self._checks.append(trace)
        return trace

    def checks_as_dicts(self) -> List[Dict[str, object]]:
        return [trace.as_dict() for trace in self._checks]

    # -- static prune traces ----------------------------------------------------

    @property
    def prunes(self) -> List[PruneTrace]:
        return list(self._prunes)

    def record_prune(self, trace: PruneTrace) -> PruneTrace:
        self._prunes.append(trace)
        return trace

    def prunes_as_dicts(self) -> List[Dict[str, object]]:
        return [trace.as_dict() for trace in self._prunes]

    # -- energy SLO traces ------------------------------------------------------

    @property
    def slos(self) -> List[SloTrace]:
        return list(self._slos)

    def record_slo(self, trace: SloTrace) -> SloTrace:
        self._slos.append(trace)
        return trace

    def slos_as_dicts(self) -> List[Dict[str, object]]:
        return [trace.as_dict() for trace in self._slos]

    # -- incident traces --------------------------------------------------------

    @property
    def incidents(self) -> List[IncidentTrace]:
        return list(self._incidents)

    def record_incident(self, trace: IncidentTrace) -> IncidentTrace:
        self._incidents.append(trace)
        return trace

    def incidents_as_dicts(self) -> List[Dict[str, object]]:
        return [trace.as_dict() for trace in self._incidents]

    def incidents_around(self, sequence: int) -> List[IncidentTrace]:
        """Incidents whose cross-link points at adaptation ``sequence``.

        The inverse direction of the cross-link: given an adaptation
        entry, which incidents fired between it and the previous
        switch?
        """
        return [
            trace for trace in self._incidents if trace.adaptation_sequence == sequence
        ]
