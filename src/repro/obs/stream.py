"""Virtual-time streaming telemetry bus (`repro.obs.stream`).

The post-hoc observability stack (traces, ledgers, budget checks) only
answers questions *after* a run ends.  The alerting layer needs the
same telemetry *while it is produced* — span closures, metric updates,
energy-plane samples and adaptation-audit entries — without disturbing
the seeded workload.  The bus therefore runs on **virtual time**: the
clock is the simulated-seconds axis the scenario engine already
advances deterministically, never the wall clock, so every subscriber
sees an identical event sequence on identical seeds.

Design rules:

* Events are immutable (:class:`StreamEvent`); heavyweight producers
  (spans, invocation records) ride along as an opaque ``payload``
  reference instead of being copied into dicts on the hot path — the
  flight recorder materializes them lazily at incident time.
* ``publish`` enforces a **monotone virtual clock**: an event stamped
  earlier than the bus's high-water mark is a producer bug and raises
  ``ValueError`` immediately instead of silently reordering history.
* The disabled path is the shared :data:`NULL_BUS` null object —
  publishing to it is a no-op, mirroring ``NULL_OBS``/``NULL_TRACER``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Mapping, Optional

__all__ = [
    "ALERT",
    "AUDIT",
    "ENERGY",
    "METRIC",
    "NULL_BUS",
    "SPAN",
    "EVENT_KINDS",
    "NullTelemetryBus",
    "StreamEvent",
    "TelemetryBus",
]

# Event kinds carried on the bus.  These are also the flight-recorder
# ring names and the incident-bundle window keys.
SPAN = "span"
METRIC = "metric"
ENERGY = "energy"
AUDIT = "audit"
ALERT = "alert"
EVENT_KINDS = (SPAN, METRIC, ENERGY, AUDIT, ALERT)

# Tolerance for clock comparisons: virtual timestamps are sums of
# floating-point durations, so two "simultaneous" events can differ in
# the last ulp without being out of order.
_CLOCK_TOL = 1e-9


class StreamEvent:
    """One immutable telemetry event on the virtual-time stream.

    ``t`` is virtual seconds.  ``value`` is the scalar the online
    detectors consume (a power in watts, a counter value, an alert
    threshold...).  ``attributes`` is a *small* mapping of labels;
    ``payload`` optionally references the producing object (a ``Span``
    or ``InvocationRecord``) so the hot path never copies it.
    """

    __slots__ = ("kind", "t", "name", "value", "attributes", "payload")

    def __init__(
        self,
        kind: str,
        t: float,
        name: str,
        value: float = 0.0,
        attributes: Optional[Mapping[str, object]] = None,
        payload: object = None,
    ) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown stream event kind {kind!r} (expected one of {EVENT_KINDS})"
            )
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "t", float(t))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "value", float(value))
        object.__setattr__(self, "attributes", attributes if attributes is not None else {})
        object.__setattr__(self, "payload", payload)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StreamEvent is immutable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamEvent(kind={self.kind!r}, t={self.t:.6f}, "
            f"name={self.name!r}, value={self.value!r})"
        )

    def as_dict(self) -> dict:
        """Materialize for an incident bundle (payload expanded)."""
        document = {
            "kind": self.kind,
            "t": self.t,
            "name": self.name,
            "value": self.value,
        }
        if self.attributes:
            document["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        payload = self.payload
        if payload is not None:
            as_dict = getattr(payload, "as_dict", None)
            if callable(as_dict):
                document["payload"] = as_dict()
            elif dataclasses.is_dataclass(payload):
                document["payload"] = dataclasses.asdict(payload)
            else:
                document["payload"] = payload
        return document


class TelemetryBus:
    """Deterministic fan-out of :class:`StreamEvent` to subscribers.

    The bus owns the alerting layer's virtual clock: ``now`` is the
    largest timestamp published so far, and producers that only know
    "this happened during the current step" (span closures, engine
    counter updates) stamp their events with it via :meth:`stamp`.
    """

    enabled = True

    def __init__(self) -> None:
        self._subscribers: List[Callable[[StreamEvent], None]] = []
        self._now = 0.0
        self.events_published = 0

    @property
    def now(self) -> float:
        """Current virtual time: the high-water mark of published events."""
        return self._now

    def subscribe(self, callback: Callable[[StreamEvent], None]) -> None:
        self._subscribers.append(callback)

    def publish(self, event: StreamEvent) -> StreamEvent:
        """Deliver ``event`` to every subscriber, in subscription order.

        Raises ``ValueError`` if ``event.t`` regresses behind the bus
        clock: virtual time is the determinism backbone and an
        out-of-order publish means a producer mis-stamped its event.
        """
        if event.t < self._now - _CLOCK_TOL:
            raise ValueError(
                f"stream event {event.name!r} at t={event.t:.9f}s regresses "
                f"behind the bus clock (now={self._now:.9f}s): virtual time "
                "must be non-decreasing"
            )
        if event.t > self._now:
            self._now = event.t
        self.events_published += 1
        for callback in self._subscribers:
            callback(event)
        return event

    def stamp(
        self,
        kind: str,
        name: str,
        value: float = 0.0,
        attributes: Optional[Mapping[str, object]] = None,
        payload: object = None,
    ) -> StreamEvent:
        """Publish an event stamped at the current virtual time."""
        return self.publish(
            StreamEvent(kind, self._now, name, value, attributes, payload)
        )

    def advance(self, t: float) -> None:
        """Advance the clock without publishing (e.g. idle gaps)."""
        if t > self._now:
            self._now = float(t)


class NullTelemetryBus(TelemetryBus):
    """No-op bus: the disabled path publishes into the void."""

    enabled = False

    def subscribe(self, callback: Callable[[StreamEvent], None]) -> None:
        pass

    def publish(self, event: StreamEvent) -> StreamEvent:
        return event

    def stamp(
        self,
        kind: str,
        name: str,
        value: float = 0.0,
        attributes: Optional[Mapping[str, object]] = None,
        payload: object = None,
    ) -> StreamEvent:
        return StreamEvent(kind, self._now, name, value, attributes, payload)


#: Shared null object — safe to publish to, never delivers anything.
NULL_BUS = NullTelemetryBus()
