"""Provenance graph over telemetry-warehouse run records.

Every run record carries an edge set (``source:<sha>`` → ``run:<id>``
→ ``artifact:<sha>`` plus artifact-to-artifact derivations such as
trace → folded stacks).  This module assembles those per-run edge
lists into one DAG and answers lineage questions in both directions:
*what produced this artifact* (ancestors) and *what was derived from
it* (descendants).  ``socrates obs lineage`` renders the answer as an
ASCII tree or the canonical one-line JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple


@dataclass(frozen=True)
class ProvenanceEdge:
    src: str
    dst: str
    relation: str


@dataclass
class ProvenanceGraph:
    """A directed graph of ``source:``/``run:``/``artifact:`` nodes."""

    edges: List[ProvenanceEdge] = field(default_factory=list)
    #: Human labels per node id, e.g. artifact file names.
    labels: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_runs(cls, records: Sequence[Mapping[str, object]]) -> "ProvenanceGraph":
        graph = cls()
        seen: Set[Tuple[str, str, str]] = set()
        for record in records:
            run_id = str(record.get("run_id", ""))
            parts = [str(record.get(key) or "") for key in ("kind", "app", "scenario")]
            graph.labels[f"run:{run_id}"] = " ".join(part for part in parts if part)
            for entry in record.get("artifacts", ()):  # type: ignore[union-attr]
                graph.labels.setdefault(
                    f"artifact:{entry['sha256']}", str(entry["name"])  # type: ignore[index]
                )
            source = str(record.get("source") or "")
            if source:
                graph.labels.setdefault(f"source:{source}", "app source")
            for edge in record.get("edges", ()):  # type: ignore[union-attr]
                key = (str(edge["src"]), str(edge["dst"]), str(edge["relation"]))  # type: ignore[index]
                if key not in seen:
                    seen.add(key)
                    graph.edges.append(ProvenanceEdge(*key))
        return graph

    # -- lookup ----------------------------------------------------------------

    def nodes(self) -> List[str]:
        names: Set[str] = set(self.labels)
        for edge in self.edges:
            names.add(edge.src)
            names.add(edge.dst)
        return sorted(names)

    def resolve(self, ref: str) -> str:
        """A full node id from a prefixed or bare, possibly truncated ref.

        Accepts ``run:<id>``/``artifact:<sha>``/``source:<sha>`` forms
        or a bare hash prefix matched against every node kind.
        """
        nodes = self.nodes()
        if ref in nodes:
            return ref
        if ":" in ref:
            prefix = ref
            matches = [node for node in nodes if node.startswith(prefix)]
        else:
            matches = [
                node
                for node in nodes
                if node.split(":", 1)[1].startswith(ref)
            ]
        if not matches:
            raise ValueError(f"no provenance node matches {ref!r}")
        if len(matches) > 1:
            raise ValueError(
                f"reference {ref!r} is ambiguous: {', '.join(matches[:6])}"
            )
        return matches[0]

    # -- traversal -------------------------------------------------------------

    def _walk(self, start: str, forward: bool) -> List[ProvenanceEdge]:
        """BFS edge set reachable from ``start`` in one direction."""
        by_node: Dict[str, List[ProvenanceEdge]] = {}
        for edge in self.edges:
            by_node.setdefault(edge.src if forward else edge.dst, []).append(edge)
        visited: Set[str] = {start}
        frontier = [start]
        reached: List[ProvenanceEdge] = []
        while frontier:
            node = frontier.pop(0)
            for edge in by_node.get(node, ()):
                reached.append(edge)
                nxt = edge.dst if forward else edge.src
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        return reached

    def descendants(self, node: str) -> List[ProvenanceEdge]:
        return self._walk(node, forward=True)

    def ancestors(self, node: str) -> List[ProvenanceEdge]:
        return self._walk(node, forward=False)

    # -- rendering -------------------------------------------------------------

    def _label(self, node: str) -> str:
        label = self.labels.get(node)
        kind, _, ident = node.partition(":")
        short = ident[:16]
        return f"{kind}:{short} ({label})" if label else f"{kind}:{short}"

    def _tree_lines(
        self,
        node: str,
        by_src: Dict[str, List[ProvenanceEdge]],
        indent: str,
        seen: Set[str],
    ) -> List[str]:
        lines: List[str] = []
        children = sorted(
            by_src.get(node, ()), key=lambda edge: (edge.relation, edge.dst)
        )
        for index, edge in enumerate(children):
            last = index == len(children) - 1
            branch = "`-- " if last else "|-- "
            lines.append(f"{indent}{branch}[{edge.relation}] {self._label(edge.dst)}")
            if edge.dst in seen:
                continue
            seen.add(edge.dst)
            lines.extend(
                self._tree_lines(
                    edge.dst, by_src, indent + ("    " if last else "|   "), seen
                )
            )
        return lines

    def ascii_tree(self, node: str) -> str:
        """Downstream lineage of ``node`` as an ASCII tree, preceded by
        its upstream chain (one line per ancestor edge)."""
        lines: List[str] = []
        up = self.ancestors(node)
        for edge in sorted(up, key=lambda e: (e.src, e.relation)):
            lines.append(
                f"{self._label(edge.src)} --[{edge.relation}]--> {self._label(edge.dst)}"
            )
        if up:
            lines.append("")
        lines.append(self._label(node))
        by_src: Dict[str, List[ProvenanceEdge]] = {}
        for edge in self.edges:
            by_src.setdefault(edge.src, []).append(edge)
        lines.extend(self._tree_lines(node, by_src, "", {node}))
        return "\n".join(lines)

    def lineage_dict(self, node: str) -> Dict[str, object]:
        return {
            "node": node,
            "label": self.labels.get(node, ""),
            "ancestors": [
                {"src": e.src, "dst": e.dst, "relation": e.relation}
                for e in sorted(self.ancestors(node), key=lambda e: (e.src, e.dst))
            ],
            "descendants": [
                {"src": e.src, "dst": e.dst, "relation": e.relation}
                for e in sorted(self.descendants(node), key=lambda e: (e.src, e.dst))
            ],
        }
