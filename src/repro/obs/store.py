"""The telemetry warehouse: a content-addressed, on-disk run store.

Every pipeline invocation recorded here becomes a first-class **run
record**: a ``socrates-run/1`` JSON document whose id is a hash of the
*seeded content* of the run — source fingerprint, machine name, seed,
knob configuration, injected slowdowns — and never of wall-clock time.
The record links every artifact the run emitted (Chrome trace,
Prometheus snapshot, energy ledger, audit JSONL, folded stacks, bench
report) by content hash, with blob-level dedup, plus the provenance
edges connecting them (see :mod:`repro.obs.provenance`).

Determinism is what makes the warehouse useful: two invocations of the
same seeded workload must produce byte-identical artifacts, so the
store's state after recording a run twice is byte-identical to
recording it once.  The virtual clock below delivers that — spans
timed through a :class:`VirtualClock` advance a fixed tick per clock
read, making every timestamp a pure function of call order.
:class:`SlowdownTracer` then injects *synthetic* regressions (for CI
drills and ``socrates obs trend`` tests) by stretching the virtual
time of selected span names, which is itself deterministic and part
of the run identity.

Store layout (everything human-inspectable)::

    <store>/
      objects/<aa>/<sha256><suffix>   content-addressed blobs (dedup)
      runs/<run_id>.json              socrates-run/1 records
      journal                         run ids, one per line, record order
      pins/<run_id>                   GC pins (empty marker files)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.obs.tracing import Span, Tracer

PathLike = Union[str, Path]

#: Current run-record schema identifier.
RUN_SCHEMA = "socrates-run/1"

#: The fields hashed into a run id, in canonical order.  Everything
#: here is seeded content — never a timestamp, never a path.
IDENTITY_FIELDS = (
    "kind",
    "app",
    "machine",
    "scenario",
    "seed",
    "label",
    "source",
    "knobs",
)

#: Hex digits of the sha256 identity hash kept as the run id.
RUN_ID_LENGTH = 16


def canonical_json(document: object) -> str:
    """The canonical one-line JSON form used for hashing and ``--json``."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def run_identity(record: Mapping[str, object]) -> Dict[str, object]:
    """The identity sub-document of a run record (hash input)."""
    return {name: record.get(name) for name in IDENTITY_FIELDS}


def run_id_for(identity: Mapping[str, object]) -> str:
    """Deterministic run id: sha256 of the canonical identity JSON."""
    digest = hashlib.sha256(canonical_json(identity).encode()).hexdigest()
    return digest[:RUN_ID_LENGTH]


# -- the virtual clock ---------------------------------------------------------


class VirtualClock:
    """A clock whose reading is a pure function of how often it was read.

    Every call returns the current virtual time and advances it by a
    fixed tick (1 µs by default, which keeps Chrome-trace microsecond
    rounding exact), so span timestamps under this clock depend only
    on the order of instrumentation calls — i.e. on the seeded
    workload, never on the machine.  :meth:`advance` jumps the clock
    forward explicitly (used by :class:`SlowdownTracer`).
    """

    def __init__(self, tick_s: float = 1e-6) -> None:
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {tick_s}")
        self.tick_s = tick_s
        self.now_s = 0.0

    def __call__(self) -> float:
        current = self.now_s
        self.now_s += self.tick_s
        return current

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}s")
        self.now_s += seconds


class SlowdownTracer(Tracer):
    """A tracer that injects deterministic synthetic slowdowns.

    When a span whose name has an entry in ``slowdowns`` closes, the
    virtual clock jumps forward by ``(factor - 1)`` times the span's
    elapsed virtual time *before* the closing timestamp is read — the
    span grows by exactly that factor, its ancestors absorb the
    stretch, and nesting stays intact.  Used by ``--inject-slowdown``
    to stage regressions for ``socrates obs trend`` drills.
    """

    def __init__(self, clock: VirtualClock, slowdowns: Mapping[str, float]) -> None:
        super().__init__(clock=clock)
        self._vclock = clock
        self._slowdowns = dict(slowdowns)

    def _finish(self, span: Span) -> None:
        factor = self._slowdowns.get(span.name)
        if factor is not None and factor > 1.0:
            elapsed = self._vclock.now_s - span.start_s
            if elapsed > 0:
                self._vclock.advance((factor - 1.0) * elapsed)
        super()._finish(span)


def parse_slowdowns(tokens: Optional[Sequence[str]]) -> Dict[str, float]:
    """Parse ``--inject-slowdown SPAN:FACTOR`` tokens.

    Span names may themselves contain colons (``stage:profile``), so
    the factor is split off the *last* colon.
    """
    slowdowns: Dict[str, float] = {}
    for token in tokens or ():
        name, sep, raw = token.rpartition(":")
        if not sep or not name:
            raise ValueError(
                f"--inject-slowdown expects SPAN:FACTOR, got {token!r}"
            )
        try:
            factor = float(raw)
        except ValueError:
            raise ValueError(
                f"--inject-slowdown factor {raw!r} is not a number"
            ) from None
        if factor < 1.0:
            raise ValueError(
                f"--inject-slowdown factor must be >= 1.0, got {factor!r}"
            )
        slowdowns[name] = factor
    return slowdowns


def recording_observability(slowdowns: Optional[Mapping[str, float]] = None):
    """An :class:`~repro.obs.Observability` on a virtual clock.

    All spans (and, through them, stage events and duration
    histograms) become pure functions of the seeded workload, so the
    exported artifacts are byte-identical across invocations — the
    property every warehouse record relies on.
    """
    from repro.obs import Observability

    clock = VirtualClock()
    obs = Observability(clock=clock)
    if slowdowns:
        obs.tracer = SlowdownTracer(clock, slowdowns)
    return obs


# -- run records ---------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactBlob:
    """One artifact to store with a run: a name and its exact bytes."""

    name: str
    data: bytes

    @property
    def suffix(self) -> str:
        return Path(self.name).suffix.lower()


def validate_run_record(record: object, label: str = "run record") -> Dict[str, object]:
    """Check a ``socrates-run/1`` document; raise ValueError on problems.

    The integrity invariant: the ``run_id`` must equal the recomputed
    hash of the identity fields, so a tampered or hand-edited record
    fails loudly.
    """
    if not isinstance(record, dict):
        raise ValueError(f"{label}: run record is not a JSON object")
    schema = record.get("schema")
    if schema != RUN_SCHEMA:
        raise ValueError(
            f"{label}: unsupported run schema {schema!r} (expected {RUN_SCHEMA!r})"
        )
    for required in ("run_id", "kind", "metrics", "artifacts", "edges"):
        if required not in record:
            raise ValueError(f"{label}: run record lacks required field {required!r}")
    expected = run_id_for(run_identity(record))
    if record["run_id"] != expected:
        raise ValueError(
            f"{label}: run_id {record['run_id']!r} does not match the "
            f"recomputed identity hash {expected!r} (record modified?)"
        )
    artifacts = record["artifacts"]
    if not isinstance(artifacts, list):
        raise ValueError(f"{label}: 'artifacts' is not a list")
    for index, entry in enumerate(artifacts):
        if not isinstance(entry, dict):
            raise ValueError(f"{label}: artifact {index} is not an object")
        for required in ("name", "sha256", "bytes"):
            if required not in entry:
                raise ValueError(
                    f"{label}: artifact {index} lacks required field {required!r}"
                )
    edges = record["edges"]
    if not isinstance(edges, list):
        raise ValueError(f"{label}: 'edges' is not a list")
    for index, edge in enumerate(edges):
        if not isinstance(edge, dict) or not all(
            key in edge for key in ("src", "dst", "relation")
        ):
            raise ValueError(
                f"{label}: edge {index} lacks src/dst/relation fields"
            )
    if not isinstance(record["metrics"], dict):
        raise ValueError(f"{label}: 'metrics' is not an object")
    return {
        "run_id": record["run_id"],
        "kind": record["kind"],
        "artifacts": len(artifacts),
        "edges": len(edges),
    }


# -- query grammar -------------------------------------------------------------

_QUERY_OPS = ("<=", ">=", "!=", "=", "<", ">")


def parse_query(text: str) -> List[Tuple[str, str, str]]:
    """Parse a small filter expression into (field, op, value) clauses.

    Grammar: ``clause [and clause]...`` where each clause is
    ``field OP value`` with OP one of ``= != < <= > >=``.  Fields are
    run-record identity fields (``kind``, ``app``, ``machine``,
    ``scenario``, ``seed``, ``label``) or metric names.
    """
    clauses: List[Tuple[str, str, str]] = []
    text = text.strip()
    if not text:
        return clauses
    for part in text.split(" and "):
        part = part.strip()
        for op in _QUERY_OPS:
            if op in part:
                field, value = part.split(op, 1)
                field, value = field.strip(), value.strip()
                if not field or not value:
                    raise ValueError(f"query clause {part!r} lacks a field or value")
                clauses.append((field, op, value))
                break
        else:
            raise ValueError(
                f"query clause {part!r} has no operator "
                f"(expected one of {', '.join(_QUERY_OPS)})"
            )
    return clauses


def _clause_matches(record: Mapping[str, object], field: str, op: str, value: str) -> bool:
    actual: object
    if field in IDENTITY_FIELDS or field == "run_id":
        actual = record.get(field)
    else:
        metrics = record.get("metrics")
        actual = metrics.get(field) if isinstance(metrics, dict) else None
    if actual is None:
        return False
    try:
        left, right = float(actual), float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        left, right = str(actual), value  # type: ignore[assignment]
        if op not in ("=", "!="):
            return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def filter_runs(
    records: Iterable[Mapping[str, object]],
    clauses: Sequence[Tuple[str, str, str]],
) -> List[Mapping[str, object]]:
    return [
        record
        for record in records
        if all(_clause_matches(record, *clause) for clause in clauses)
    ]


def aggregate_runs(
    records: Sequence[Mapping[str, object]], spec: str
) -> Dict[str, object]:
    """Evaluate one aggregation spec: ``count`` or ``fn:metric`` with
    fn one of median/mean/min/max/sum."""
    from repro.bench.stats import median as _median

    if spec == "count":
        return {"agg": "count", "value": len(records)}
    fn, sep, metric = spec.partition(":")
    if not sep or fn not in ("median", "mean", "min", "max", "sum"):
        raise ValueError(
            f"unknown aggregation {spec!r} "
            "(expected count, or median:|mean:|min:|max:|sum:<metric>)"
        )
    samples: List[float] = []
    for record in records:
        metrics = record.get("metrics")
        if isinstance(metrics, dict) and metric in metrics:
            try:
                samples.append(float(metrics[metric]))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                pass
    if not samples:
        raise ValueError(f"no run carries numeric metric {metric!r}")
    value: float
    if fn == "median":
        value = _median(samples)
    elif fn == "mean":
        value = sum(samples) / len(samples)
    elif fn == "min":
        value = min(samples)
    elif fn == "max":
        value = max(samples)
    else:
        value = sum(samples)
    return {"agg": spec, "value": value, "n": len(samples)}


# -- the store -----------------------------------------------------------------


class TelemetryStore:
    """The on-disk warehouse: blobs, run records, journal, pins."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # paths

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def journal_path(self) -> Path:
        return self.root / "journal"

    @property
    def pins_dir(self) -> Path:
        return self.root / "pins"

    def blob_path(self, sha256: str, suffix: str) -> Path:
        return self.objects_dir / sha256[:2] / f"{sha256}{suffix}"

    # blobs

    def put_blob(self, data: bytes, suffix: str) -> Tuple[str, bool]:
        """Store ``data``; returns (sha256, created).  Dedup by content."""
        sha = content_hash(data)
        target = self.blob_path(sha, suffix)
        if target.exists():
            return sha, False
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
        return sha, True

    def find_blob(self, sha256: str, suffix: str = "") -> Optional[Path]:
        if suffix:
            target = self.blob_path(sha256, suffix)
            return target if target.exists() else None
        bucket = self.objects_dir / sha256[:2]
        if not bucket.is_dir():
            return None
        for candidate in sorted(bucket.iterdir()):
            if candidate.name.startswith(sha256):
                return candidate
        return None

    def blobs(self) -> List[Path]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(path for path in self.objects_dir.rglob("*") if path.is_file())

    # runs

    def record(
        self,
        kind: str,
        app: str = "",
        machine: str = "",
        scenario: str = "",
        seed: int = 0,
        label: str = "",
        source: str = "",
        knobs: Optional[Mapping[str, object]] = None,
        metrics: Optional[Mapping[str, object]] = None,
        artifacts: Sequence[ArtifactBlob] = (),
        derivations: Sequence[Tuple[str, str, str]] = (),
    ) -> Tuple[str, bool]:
        """Record one run; returns (run_id, created).

        Idempotent: when a record with the same identity already
        exists, nothing is written (no blobs, no journal line) and
        ``created`` is False — so recording the same seeded run twice
        leaves the store byte-identical.

        ``derivations`` are artifact-to-artifact provenance edges by
        artifact *name*, e.g. ``("trace.json", "profile.folded",
        "collapsed")``.
        """
        identity = {
            "kind": kind,
            "app": app,
            "machine": machine,
            "scenario": scenario,
            "seed": seed,
            "label": label,
            "source": source,
            "knobs": dict(knobs or {}),
        }
        run_id = run_id_for(identity)
        record_path = self.runs_dir / f"{run_id}.json"
        if record_path.exists():
            return run_id, False
        entries: List[Dict[str, object]] = []
        sha_by_name: Dict[str, str] = {}
        for artifact in artifacts:
            sha, _ = self.put_blob(artifact.data, artifact.suffix)
            sha_by_name[artifact.name] = sha
            entries.append(
                {
                    "name": artifact.name,
                    "sha256": sha,
                    "bytes": len(artifact.data),
                    "suffix": artifact.suffix,
                }
            )
        edges: List[Dict[str, str]] = []
        if source:
            edges.append(
                {"src": f"source:{source}", "dst": f"run:{run_id}", "relation": "input"}
            )
        for entry in entries:
            edges.append(
                {
                    "src": f"run:{run_id}",
                    "dst": f"artifact:{entry['sha256']}",
                    "relation": "produced",
                }
            )
        for src_name, dst_name, relation in derivations:
            if src_name in sha_by_name and dst_name in sha_by_name:
                edges.append(
                    {
                        "src": f"artifact:{sha_by_name[src_name]}",
                        "dst": f"artifact:{sha_by_name[dst_name]}",
                        "relation": relation,
                    }
                )
        document: Dict[str, object] = {
            "schema": RUN_SCHEMA,
            "run_id": run_id,
            **identity,
            "metrics": dict(metrics or {}),
            "artifacts": entries,
            "edges": edges,
        }
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        with open(record_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(self.journal_path, "a") as handle:
            handle.write(run_id + "\n")
        return run_id, True

    def run_ids(self) -> List[str]:
        """Run ids in record order (the journal), existing records only."""
        if not self.journal_path.exists():
            return []
        seen: Set[str] = set()
        ids: List[str] = []
        for line in self.journal_path.read_text().splitlines():
            run_id = line.strip()
            if (
                run_id
                and run_id not in seen
                and (self.runs_dir / f"{run_id}.json").exists()
            ):
                seen.add(run_id)
                ids.append(run_id)
        return ids

    def load_run(self, run_id: str) -> Dict[str, object]:
        path = self.runs_dir / f"{run_id}.json"
        try:
            document = json.loads(path.read_text())
        except OSError:
            raise ValueError(f"{self.root}: no run {run_id!r}") from None
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
        validate_run_record(document, label=str(path))
        return document

    def runs(self) -> List[Dict[str, object]]:
        return [self.load_run(run_id) for run_id in self.run_ids()]

    def resolve_run(self, prefix: str) -> str:
        """A full run id from an unambiguous prefix."""
        matches = [run_id for run_id in self.run_ids() if run_id.startswith(prefix)]
        if not matches:
            raise ValueError(f"{self.root}: no run id starts with {prefix!r}")
        if len(matches) > 1:
            raise ValueError(
                f"run id prefix {prefix!r} is ambiguous: {', '.join(matches)}"
            )
        return matches[0]

    # pins

    def pin(self, run_id: str) -> None:
        run_id = self.resolve_run(run_id)
        self.pins_dir.mkdir(parents=True, exist_ok=True)
        (self.pins_dir / run_id).touch()

    def unpin(self, run_id: str) -> None:
        run_id = self.resolve_run(run_id)
        marker = self.pins_dir / run_id
        if marker.exists():
            marker.unlink()

    def pinned(self) -> Set[str]:
        if not self.pins_dir.is_dir():
            return set()
        return {path.name for path in self.pins_dir.iterdir() if path.is_file()}

    # retention

    def _referenced_blobs(self, run_ids: Iterable[str]) -> Set[str]:
        referenced: Set[str] = set()
        for run_id in run_ids:
            record = self.load_run(run_id)
            for entry in record["artifacts"]:  # type: ignore[index]
                referenced.add(str(entry["sha256"]))  # type: ignore[index]
        return referenced

    def gc(
        self, keep: Optional[int] = None, dry_run: bool = False
    ) -> Dict[str, object]:
        """Garbage-collect the store.

        Without ``keep``, only orphan blobs (referenced by no run) are
        swept.  With ``keep=N``, unpinned runs beyond the N most
        recent (journal order) are dropped first, then orphans swept.
        The hard invariant — GC never breaks an edge reachable from a
        pinned run — is enforced twice: pinned runs are
        unconditionally retained, and a full :meth:`verify` pass runs
        afterwards (conservation check), so a bug here fails loudly
        rather than corrupting history.
        """
        if keep is not None and keep < 0:
            raise ValueError(f"--keep must be >= 0, got {keep}")
        ids = self.run_ids()
        pinned = self.pinned()
        removed_runs: List[str] = []
        kept: List[str] = list(ids)
        if keep is not None:
            unpinned = [run_id for run_id in ids if run_id not in pinned]
            drop = set(unpinned[: max(0, len(unpinned) - keep)])
            removed_runs = [run_id for run_id in ids if run_id in drop]
            kept = [run_id for run_id in ids if run_id not in drop]
        referenced = self._referenced_blobs(kept)
        removed_blobs: List[str] = []
        for blob in self.blobs():
            sha = blob.name[: len(blob.name) - len(blob.suffix)] if blob.suffix else blob.name
            if sha not in referenced:
                removed_blobs.append(blob.name)
                if not dry_run:
                    blob.unlink()
                    if not any(blob.parent.iterdir()):
                        blob.parent.rmdir()
        if not dry_run:
            for run_id in removed_runs:
                (self.runs_dir / f"{run_id}.json").unlink()
            if removed_runs and self.journal_path.exists():
                surviving = [run_id for run_id in ids if run_id in set(kept)]
                self.journal_path.write_text(
                    "".join(run_id + "\n" for run_id in surviving)
                )
        summary: Dict[str, object] = {
            "removed_runs": removed_runs,
            "removed_blobs": len(removed_blobs),
            "kept_runs": len(kept),
            "kept_blobs": len(self.blobs()) if not dry_run else None,
            "pinned": sorted(pinned & set(ids)),
            "dry_run": dry_run,
        }
        if not dry_run:
            summary["verified"] = bool(self.verify())
        return summary

    # integrity

    def verify(self) -> Dict[str, object]:
        """Full conservation check; raises ValueError on any violation.

        Every journalled run record must validate (including the
        recomputed run id), and every artifact it references must
        exist as a blob whose content hashes back to its recorded
        sha256 — i.e. no reachable edge is broken.
        """
        runs = 0
        artifact_count = 0
        for run_id in self.run_ids():
            record = self.load_run(run_id)  # validates schema + run id
            runs += 1
            for entry in record["artifacts"]:  # type: ignore[index]
                sha = str(entry["sha256"])  # type: ignore[index]
                suffix = str(entry.get("suffix", ""))  # type: ignore[union-attr]
                blob = self.find_blob(sha, suffix)
                if blob is None:
                    raise ValueError(
                        f"{self.root}: run {run_id} references missing "
                        f"artifact {entry['name']!r} ({sha})"  # type: ignore[index]
                    )
                actual = content_hash(blob.read_bytes())
                if actual != sha:
                    raise ValueError(
                        f"{self.root}: blob {blob.name} content hashes to "
                        f"{actual}, not its recorded {sha} (corrupted?)"
                    )
                artifact_count += 1
        return {
            "runs": runs,
            "artifacts": artifact_count,
            "blobs": len(self.blobs()),
            "pinned": len(self.pinned()),
        }
