"""`repro.obs` — the unified observability subsystem.

One :class:`Observability` object bundles the three pillars that the
rest of the codebase is instrumented against:

* :attr:`Observability.tracer` — hierarchical span tracing
  (:mod:`repro.obs.tracing`), threaded through the toolflow stages,
  engine evaluations (including process-pool workers), DSE sweeps,
  COBAYN training and the adaptive runtime's MAPE-K iterations;
* :attr:`Observability.metrics` — the counter/gauge/histogram registry
  (:mod:`repro.obs.metrics`) that absorbs the engine counters and the
  mARGOt monitor statistics;
* :attr:`Observability.audit` — the adaptation audit log
  (:mod:`repro.obs.audit`) explaining every operating-point switch.

The disabled instance :data:`NULL_OBS` is what every component gets by
default: its tracer and registry are shared no-op singletons and its
audit is ``None``, so instrumentation costs one attribute lookup and
one no-op call on hot paths, and **seeded runs are byte-identical with
observability on or off** (instrumentation never touches any random
stream).

Exports (:mod:`repro.obs.export`) cover a JSONL event stream, Chrome
``trace_event`` JSON for Perfetto/``chrome://tracing``, and a
Prometheus-style text dump; :mod:`repro.obs.validate` checks each
format, and the ``socrates obs`` CLI wires both up.

:mod:`repro.obs.energy` builds on all three pillars: the virtual-RAPL
energy observatory reconstructs per-domain power(t) timelines from
runtime traces, books joules onto operating points in an
:class:`~repro.obs.energy.EnergyLedger`, and watches declared
power/energy budgets (``socrates energy report|timeline|slo``).

The *streaming* layer (:mod:`repro.obs.stream`,
:mod:`repro.obs.alerts`, :mod:`repro.obs.flight`) turns the same
telemetry into online verdicts: construct with ``alerting=True`` and
:attr:`Observability.alerts` carries an
:class:`~repro.obs.alerts.AlertEngine` whose detectors watch span
closures, metric updates and energy samples on a virtual-time bus,
snapshotting a bounded flight recorder into deterministic incident
bundles when an SLO burns (``socrates obs incidents``).  With alerting
off, ``alerts`` is ``None`` and every hook is one attribute lookup.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Optional

from repro.obs.audit import (
    AdaptationAuditLog,
    AdaptationEntry,
    CandidateTrace,
    CheckTrace,
    ConstraintTrace,
    PruneTrace,
    SloTrace,
    compose_reason,
    describe_rank,
)
from repro.obs.energy import (
    BudgetVerdict,
    EnergyBudget,
    EnergyLedger,
    EnergySample,
    EnergyTimeline,
    LedgerConservationError,
    attribute_record,
    build_timeline,
    check_budgets,
)
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.alerts import Alert, AlertEngine, AlertPolicy, latency_slos_from_baselines
from repro.obs.audit import IncidentTrace
from repro.obs.flight import INCIDENT_SCHEMA, FlightRecorder, IncidentBundle
from repro.obs.profile import (
    FlameProfile,
    ProfileNode,
    StackDiff,
    WhatIfReport,
    attribute_energy,
    build_tree,
    diff_flame,
    load_chrome_trace,
    profile_vs_baseline,
    render_svg,
    rescale_tree,
    total_virtual_s,
    whatif,
)
from repro.obs.provenance import ProvenanceEdge, ProvenanceGraph
from repro.obs.store import (
    RUN_SCHEMA,
    ArtifactBlob,
    SlowdownTracer,
    TelemetryStore,
    VirtualClock,
    canonical_json,
    parse_slowdowns,
    recording_observability,
    run_id_for,
)
from repro.obs.stream import NULL_BUS, NullTelemetryBus, StreamEvent, TelemetryBus
from repro.obs.tracing import MAIN_TRACK, NULL_TRACER, NullTracer, Span, Tracer

# NOTE: repro.obs.trend is intentionally not imported here — it pulls
# in repro.bench, whose scenarios import repro.obs, and a top-level
# import would make that cycle real.  Import it as repro.obs.trend.

__all__ = [
    "AdaptationAuditLog",
    "AdaptationEntry",
    "Alert",
    "AlertEngine",
    "AlertPolicy",
    "BudgetVerdict",
    "CandidateTrace",
    "CheckTrace",
    "ConstraintTrace",
    "Counter",
    "EnergyBudget",
    "EnergyLedger",
    "EnergySample",
    "EnergyTimeline",
    "FlightRecorder",
    "INCIDENT_SCHEMA",
    "IncidentBundle",
    "IncidentTrace",
    "LedgerConservationError",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MAIN_TRACK",
    "MetricsRegistry",
    "NULL_BUS",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTelemetryBus",
    "NullTracer",
    "Observability",
    "ProvenanceEdge",
    "ProvenanceGraph",
    "RUN_SCHEMA",
    "ArtifactBlob",
    "SloTrace",
    "SlowdownTracer",
    "Span",
    "StreamEvent",
    "TelemetryBus",
    "TelemetryStore",
    "Tracer",
    "VirtualClock",
    "attribute_record",
    "canonical_json",
    "FlameProfile",
    "ProfileNode",
    "PruneTrace",
    "StackDiff",
    "WhatIfReport",
    "attribute_energy",
    "build_timeline",
    "build_tree",
    "check_budgets",
    "compose_reason",
    "describe_rank",
    "diff_flame",
    "latency_slos_from_baselines",
    "load_chrome_trace",
    "parse_slowdowns",
    "profile_vs_baseline",
    "recording_observability",
    "render_svg",
    "rescale_tree",
    "run_id_for",
    "total_virtual_s",
    "whatif",
]


class Observability:
    """Tracer + metrics registry + adaptation audit log, as one handle."""

    def __init__(
        self,
        enabled: bool = True,
        max_audit_candidates: int = 5,
        clock: Callable[[], float] = time.perf_counter,
        alerting: bool = False,
        alert_policy: Optional[AlertPolicy] = None,
    ) -> None:
        self.enabled = enabled
        self.alerts: Optional[AlertEngine] = None
        if enabled:
            self.tracer: Tracer = Tracer(clock=clock)
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.audit: Optional[AdaptationAuditLog] = AdaptationAuditLog(
                max_candidates=max_audit_candidates
            )
            if alerting:
                self.alerts = AlertEngine(
                    policy=alert_policy, metrics=self.metrics, audit=self.audit
                )
                self.tracer.sink = self.alerts
        else:
            self.tracer = NULL_TRACER
            self.metrics = NULL_METRICS
            self.audit = None

    # -- snapshots of legacy instrumentation ----------------------------------

    def absorb_engine(self, engine) -> None:
        """Mirror an engine's cache/evaluation counters into the registry."""
        self.metrics.absorb_engine_counters(engine.counters)
        if self.alerts is not None:
            self.alerts.observe_engine(engine.counters)

    def absorb_monitors(self, monitors: Mapping[str, object]) -> None:
        """Mirror mARGOt monitor statistics into the registry."""
        self.metrics.absorb_monitors(monitors)

    def __repr__(self) -> str:
        if not self.enabled:
            return "Observability(enabled=False)"
        return (
            f"Observability(spans={len(self.tracer.spans)}, "
            f"metrics={len(self.metrics)}, "
            f"audit_entries={len(self.audit) if self.audit else 0})"
        )


#: Process-wide disabled observability (the default everywhere).
NULL_OBS = Observability(enabled=False)
