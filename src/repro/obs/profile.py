"""`repro.obs.profile` — the causal profiling observatory.

The tracer already records *where time went* (the span tree, including
process-pool worker lanes) and the energy observatory records *where
the joules went* (the ledger).  This module turns both into answers to
the question an optimization effort actually asks: **what is worth
speeding up, and what would that buy end-to-end?**  Three pillars:

* **Virtual-time flame graphs** — :func:`build_tree` reconstructs the
  span tree from live :class:`~repro.obs.tracing.Span` records or an
  exported Chrome trace, and :class:`FlameProfile` collapses it into
  folded-stack format (``a;b;c <self seconds>``), a self/total profile
  table, and a self-contained SVG.  Per-stack ``energy_j`` comes from
  :func:`attribute_energy`, which joins the
  :class:`~repro.obs.energy.EnergyLedger` onto the tree — toolflow
  stage entries onto their ``stage:<name>`` spans, operating-point
  entries onto the ``kernel.execute`` spans that carry the matching
  (compiler, threads, binding) attributes.

* **Differential profiles** — :func:`diff_flame` compares two profiles
  stack by stack (grown / shrunk / new / gone, sorted by ``|Δself|``),
  and :func:`profile_vs_baseline` compares a fresh profile against the
  per-stack medians a ``BENCH_<scenario>.json`` baseline committed, so
  a bench-gate regression names the offending *stack*, not just the
  span name.

* **Causal what-if analysis** — :func:`whatif` replays the tree in
  virtual time with a virtual speedup applied to the *self* time of
  every span matching a target (a span name, a ``prefix:*`` family, or
  a ``knob:key=value`` dimension), recomputes the critical path — the
  serial chain on each span's own track versus the makespan of its
  worker lanes — and reports the predicted end-to-end and energy
  improvement per speedup.  A 0% speedup reproduces the original
  timings *exactly* (unchanged subtrees return their recorded
  durations bit for bit), and energy stays ledger-conserving: matched
  joules scale with time at constant power, everything else is carried
  through unchanged.

Everything is post-hoc and deterministic: profiling a trace consumes
no random stream and never touches the workload, so a seeded run is
byte-identical with profiling on or off.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

PathLike = Union[str, Path]

#: Schema identifier of the JSON profile document.
PROFILE_SCHEMA = "socrates-profile/1"

#: Frame separator of the folded-stack format.
STACK_SEP = ";"

#: Virtual speedups evaluated by default: the fractions of a matched
#: span's self time that the hypothetical optimization removes.
DEFAULT_SPEEDUPS = (0.10, 0.25, 0.50, 0.75)

#: Collapse/expand round-trips and what-if conservation are exact to
#: this absolute-or-relative tolerance (mirrors the energy ledger's).
CONSERVATION_TOL = 1e-9

#: Attribute keys treated as adaptation knob dimensions by the what-if
#: target enumeration.
KNOB_KEYS = ("compiler", "threads", "binding", "cluster")


# -- the span tree -------------------------------------------------------------


@dataclass
class ProfileNode:
    """One span in the reconstructed tree, with its self time."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float
    track: str = "main"
    ok: bool = True
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["ProfileNode"] = field(default_factory=list)
    #: duration minus same-track children (cross-track worker lanes
    #: overlap the parent in virtual time, so they never subtract)
    self_s: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _frame(name: str) -> str:
    """A span name as a folded-stack frame (separator-safe)."""
    return name.replace(STACK_SEP, ":").replace("\n", " ")


def build_tree(spans: Sequence[object]) -> List[ProfileNode]:
    """Reconstruct the span tree from finished spans.

    Accepts :class:`~repro.obs.tracing.Span` objects or any objects
    with the same attributes.  Returns the roots, children ordered by
    (start, span_id); each node's ``self_s`` is its duration minus the
    durations of its same-track children.
    """
    nodes: List[ProfileNode] = []
    for span in spans:
        nodes.append(
            ProfileNode(
                name=str(span.name),
                span_id=int(span.span_id),
                parent_id=span.parent_id if span.parent_id is None else int(span.parent_id),
                start_s=float(span.start_s),
                end_s=float(span.end_s),
                track=str(getattr(span, "track", "main")),
                ok=bool(getattr(span, "ok", True)),
                attributes=dict(getattr(span, "attributes", {}) or {}),
            )
        )
    by_id = {node.span_id: node for node in nodes}
    roots: List[ProfileNode] = []
    for node in sorted(nodes, key=lambda n: (n.start_s, n.span_id)):
        parent = by_id.get(node.parent_id) if node.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes:
        node.self_s = node.duration_s - sum(
            child.duration_s for child in node.children if child.track == node.track
        )
    return roots


def _walk(roots: Sequence[ProfileNode]) -> Iterable[ProfileNode]:
    stack = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def total_virtual_s(roots: Sequence[ProfileNode]) -> float:
    """Total virtual time: the sum of every node's self time.

    Equals the sum of lane-root durations — each genuine root plus
    each adopted worker subtree contributes its own clock lane.
    """
    return sum(node.self_s for node in _walk(roots))


def load_chrome_trace(path: PathLike) -> List[ProfileNode]:
    """Rebuild the span tree from an exported Chrome trace_event file.

    Our exporter stamps every span's ``span_id``/``parent_id`` into
    ``args``, so parentage survives the export exactly.  Traces from
    other producers lack those args; parents are then inferred from
    interval nesting per (pid, tid).
    """
    try:
        document = json.loads(Path(path).read_text())
    except OSError as error:
        raise ValueError(f"{path}: cannot read trace ({error})") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict) or not isinstance(
        document.get("traceEvents"), list
    ):
        raise ValueError(f"{path}: missing top-level 'traceEvents' array")
    track_names: Dict[object, str] = {}
    events: List[dict] = []
    for event in document["traceEvents"]:
        if not isinstance(event, dict):
            continue
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[event.get("tid")] = str(
                dict(event.get("args") or {}).get("name", event.get("tid"))
            )
        elif event.get("ph") == "X":
            events.append(event)
    if not events:
        raise ValueError(f"{path}: trace contains no complete ('X') span events")

    def track_of(event: dict) -> str:
        if "cat" in event:
            return str(event["cat"])
        return track_names.get(event.get("tid"), str(event.get("tid")))

    native = all(
        isinstance(event.get("args"), dict) and "span_id" in event["args"]
        for event in events
    )
    spans: List[ProfileNode] = []
    if native:
        for event in events:
            args = dict(event["args"])
            span_id = int(args.pop("span_id"))
            parent_id = args.pop("parent_id", None)
            ok = bool(args.pop("ok", True))
            start = float(event["ts"]) / 1e6
            spans.append(
                ProfileNode(
                    name=str(event["name"]),
                    span_id=span_id,
                    parent_id=None if parent_id is None else int(parent_id),
                    start_s=start,
                    end_s=start + float(event["dur"]) / 1e6,
                    track=track_of(event),
                    ok=ok,
                    attributes=args,
                )
            )
    else:
        # foreign trace: infer parentage from interval nesting per lane
        by_lane: Dict[Tuple[object, object], List[dict]] = {}
        for event in events:
            by_lane.setdefault((event.get("pid"), event.get("tid")), []).append(event)
        next_id = 1
        for lane in sorted(by_lane, key=str):
            members = sorted(
                by_lane[lane],
                key=lambda e: (float(e["ts"]), -(float(e["ts"]) + float(e["dur"]))),
            )
            open_stack: List[ProfileNode] = []
            for event in members:
                start = float(event["ts"]) / 1e6
                end = start + float(event["dur"]) / 1e6
                while open_stack and start >= open_stack[-1].end_s - 1e-12:
                    open_stack.pop()
                node = ProfileNode(
                    name=str(event["name"]),
                    span_id=next_id,
                    parent_id=open_stack[-1].span_id if open_stack else None,
                    start_s=start,
                    end_s=end,
                    track=track_of(event),
                    attributes=dict(event.get("args") or {}),
                )
                next_id += 1
                spans.append(node)
                open_stack.append(node)
    return build_tree(spans)


# -- energy attribution --------------------------------------------------------


def attribute_energy(
    roots: Sequence[ProfileNode], ledger
) -> Dict[int, float]:
    """Join an :class:`~repro.obs.energy.EnergyLedger` onto the tree.

    Returns ``{span_id: package joules}``.  Toolflow stage entries land
    on their ``stage:<name>`` spans; operating-point entries land on
    the ``kernel.execute`` spans whose (compiler, threads, binding)
    attributes match, entries summed across clusters.  When several
    spans share one ledger entry the joules split proportionally to
    span duration, so the attributed total equals the booked total
    exactly (idle-floor joules stay unattributed — no span ran).
    """
    nodes = list(_walk(roots))
    energy: Dict[int, float] = {}

    def distribute(joules: float, members: List[ProfileNode]) -> None:
        if not members or joules == 0.0:
            return
        weights = [max(node.duration_s, 0.0) for node in members]
        scale = sum(weights)
        if scale <= 0.0:
            weights = [1.0] * len(members)
            scale = float(len(members))
        for node, weight in zip(members, weights):
            energy[node.span_id] = energy.get(node.span_id, 0.0) + joules * (
                weight / scale
            )

    by_stage: Dict[str, List[ProfileNode]] = {}
    by_op: Dict[Tuple[str, int, str], List[ProfileNode]] = {}
    for node in nodes:
        if node.name.startswith("stage:"):
            by_stage.setdefault(node.name[len("stage:"):], []).append(node)
        elif node.name == "kernel.execute":
            attrs = node.attributes
            if {"compiler", "threads", "binding"} <= set(attrs):
                key = (
                    str(attrs["compiler"]),
                    int(attrs["threads"]),  # type: ignore[arg-type]
                    str(attrs["binding"]),
                )
                by_op.setdefault(key, []).append(node)
    for stage in ledger.stages:
        distribute(
            float(stage.energy_j.get("package", 0.0)),
            by_stage.get(stage.stage, []),
        )
    op_joules: Dict[Tuple[str, int, str], float] = {}
    for entry in ledger.entries:
        key = (entry.compiler, entry.threads, entry.binding)
        op_joules[key] = op_joules.get(key, 0.0) + float(
            entry.energy_j.get("package", 0.0)
        )
    for key, joules in op_joules.items():
        distribute(joules, by_op.get(key, []))
    return energy


# -- flame profiles (folded stacks) --------------------------------------------


@dataclass
class StackStat:
    """One folded stack's aggregated cost."""

    self_s: float = 0.0
    count: int = 0
    energy_j: float = 0.0


@dataclass
class NameStat:
    """One span name's profile-table row."""

    count: int = 0
    self_s: float = 0.0
    total_s: float = 0.0
    energy_j: float = 0.0


class FlameProfile:
    """A collapsed span tree: folded stacks with self times.

    The invariant behind every export is *conservation*: the sum of
    all stacks' ``self_s`` equals :func:`total_virtual_s` of the tree
    it was collapsed from, and survives folded-text round-trips to
    better than :data:`CONSERVATION_TOL`.
    """

    def __init__(
        self,
        stacks: Optional[Dict[str, StackStat]] = None,
        label: str = "",
        has_energy: bool = False,
    ) -> None:
        self.stacks: Dict[str, StackStat] = dict(stacks or {})
        self.label = label
        self.has_energy = has_energy

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_tree(
        cls,
        roots: Sequence[ProfileNode],
        label: str = "",
        energy: Optional[Mapping[int, float]] = None,
    ) -> "FlameProfile":
        profile = cls(label=label, has_energy=energy is not None)

        def visit(node: ProfileNode, prefix: str) -> None:
            stack = (
                f"{prefix}{STACK_SEP}{_frame(node.name)}"
                if prefix
                else _frame(node.name)
            )
            stat = profile.stacks.setdefault(stack, StackStat())
            stat.self_s += node.self_s
            stat.count += 1
            if energy is not None:
                stat.energy_j += float(energy.get(node.span_id, 0.0))
            for child in node.children:
                visit(child, stack)

        for root in roots:
            visit(root, "")
        return profile

    @classmethod
    def from_spans(
        cls,
        spans: Sequence[object],
        label: str = "",
        energy: Optional[Mapping[int, float]] = None,
    ) -> "FlameProfile":
        return cls.from_tree(build_tree(spans), label=label, energy=energy)

    @classmethod
    def from_chrome_trace(cls, path: PathLike, label: str = "") -> "FlameProfile":
        return cls.from_tree(load_chrome_trace(path), label=label or str(path))

    # -- totals and tables -----------------------------------------------------

    @property
    def total_self_s(self) -> float:
        return sum(stat.self_s for stat in self.stacks.values())

    @property
    def total_energy_j(self) -> float:
        return sum(stat.energy_j for stat in self.stacks.values())

    def names(self) -> Dict[str, NameStat]:
        """Per span-name table: self, inclusive total, count, energy.

        A name's inclusive total is the self time of every stack that
        contains it as a frame (counted once per stack, so recursive
        occurrences never double-count).
        """
        table: Dict[str, NameStat] = {}
        for stack, stat in self.stacks.items():
            frames = stack.split(STACK_SEP)
            leaf = frames[-1]
            row = table.setdefault(leaf, NameStat())
            row.count += stat.count
            row.self_s += stat.self_s
            row.energy_j += stat.energy_j
            for name in set(frames):
                table.setdefault(name, NameStat()).total_s += stat.self_s
        return table

    def format_table(self, limit: int = 20) -> str:
        """The self/total profile table, hottest self time first."""
        rows = sorted(
            self.names().items(), key=lambda item: (-item[1].self_s, item[0])
        )
        if limit:
            rows = rows[:limit]
        width = max([len(name) for name, _ in rows] + [4])
        header = f"{'span name':{width}s} {'count':>6s} {'self_s':>10s} {'total_s':>10s}"
        if self.has_energy:
            header += f" {'energy_j':>10s}"
        lines = [header]
        for name, row in rows:
            line = (
                f"{name:{width}s} {row.count:6d} "
                f"{row.self_s:10.4f} {row.total_s:10.4f}"
            )
            if self.has_energy:
                line += f" {row.energy_j:10.2f}"
            lines.append(line)
        return "\n".join(lines)

    # -- folded-stack text -----------------------------------------------------

    def as_folded(self) -> str:
        """The canonical folded-stack text: ``stack <self seconds>``.

        Values are written with ``repr`` so a parse restores the exact
        float — the collapse/expand round-trip is lossless.
        """
        lines = [
            f"{stack} {self.stacks[stack].self_s!r}"
            for stack in sorted(self.stacks)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_folded(cls, text: str, label: str = "") -> "FlameProfile":
        profile = cls(label=label)
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                stack, value = line.rsplit(" ", 1)
                self_s = float(value)
            except ValueError:
                raise ValueError(
                    f"folded line {number}: expected 'stack <seconds>', got {line!r}"
                ) from None
            if not stack:
                raise ValueError(f"folded line {number}: empty stack")
            stat = profile.stacks.setdefault(stack, StackStat())
            stat.self_s += self_s
            stat.count += 1
        return profile

    @classmethod
    def load_folded(cls, path: PathLike) -> "FlameProfile":
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise ValueError(f"{path}: cannot read folded profile ({error})") from None
        try:
            return cls.from_folded(text, label=str(path))
        except ValueError as error:
            raise ValueError(f"{path}: {error}") from None

    # -- JSON ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        stacks: Dict[str, object] = {}
        for stack in sorted(self.stacks):
            stat = self.stacks[stack]
            record: Dict[str, object] = {
                "self_s": stat.self_s,
                "count": stat.count,
            }
            if self.has_energy:
                record["energy_j"] = stat.energy_j
            stacks[stack] = record
        document: Dict[str, object] = {
            "schema": PROFILE_SCHEMA,
            "label": self.label,
            "total_self_s": self.total_self_s,
            "stacks": stacks,
        }
        if self.has_energy:
            document["total_energy_j"] = self.total_energy_j
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "FlameProfile":
        if document.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported profile schema {document.get('schema')!r} "
                f"(expected {PROFILE_SCHEMA!r})"
            )
        stacks_raw = document.get("stacks")
        if not isinstance(stacks_raw, Mapping):
            raise ValueError("profile document lacks a 'stacks' object")
        has_energy = any(
            isinstance(record, Mapping) and "energy_j" in record
            for record in stacks_raw.values()
        )
        profile = cls(label=str(document.get("label", "")), has_energy=has_energy)
        for stack, record in stacks_raw.items():
            if not isinstance(record, Mapping):
                raise ValueError(f"stack {stack!r}: record is not an object")
            profile.stacks[str(stack)] = StackStat(
                self_s=float(record["self_s"]),
                count=int(record.get("count", 0)),
                energy_j=float(record.get("energy_j", 0.0)),
            )
        return profile

    # -- per-stack medians (bench integration) ---------------------------------

    def self_by_stack(self) -> Dict[str, float]:
        return {stack: stat.self_s for stack, stat in self.stacks.items()}


# -- SVG rendering -------------------------------------------------------------

_SVG_ROW_H = 17
_SVG_PAD = 10
_SVG_CHAR_W = 6.7  # monospace estimate for label clipping


def _frame_color(name: str) -> str:
    """Deterministic warm color per frame name (crc32, not hash())."""
    digest = zlib.crc32(name.encode("utf-8"))
    hue = digest % 55  # red..yellow band
    light = 52 + (digest >> 8) % 16
    return f"hsl({hue},78%,{light}%)"


def render_svg(
    profile: FlameProfile, title: str = "SOCRATES virtual-time flame graph",
    width: int = 1200,
) -> str:
    """A self-contained SVG flame graph (icicle layout, root on top)."""
    # fold the stacks back into a frame tree
    root: Dict[str, object] = {"self": 0.0, "energy": 0.0, "children": {}}
    for stack in sorted(profile.stacks):
        stat = profile.stacks[stack]
        node = root
        for frame in stack.split(STACK_SEP):
            node = node["children"].setdefault(  # type: ignore[union-attr]
                frame, {"self": 0.0, "energy": 0.0, "children": {}}
            )
        node["self"] += stat.self_s  # type: ignore[operator]
        node["energy"] += stat.energy_j  # type: ignore[operator]

    def value(node: Mapping[str, object]) -> float:
        return float(node["self"]) + sum(  # type: ignore[arg-type]
            value(child) for child in node["children"].values()  # type: ignore[union-attr]
        )

    total = value(root)
    usable = width - 2 * _SVG_PAD
    scale = usable / total if total > 0 else 0.0

    def depth(node: Mapping[str, object]) -> int:
        children = node["children"]
        if not children:  # type: ignore[truthy-bool]
            return 0
        return 1 + max(depth(child) for child in children.values())  # type: ignore[union-attr]

    rows = depth(root) + 1
    height = rows * _SVG_ROW_H + 2 * _SVG_PAD + 24
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{_SVG_PAD}" y="16">{_escape(title)} '
        f"(total {total:.4f}s virtual"
        + (
            f", {profile.total_energy_j:.2f} J attributed"
            if profile.has_energy
            else ""
        )
        + ")</text>",
    ]

    def emit(name: str, node: Mapping[str, object], x: float, level: int, stack: str) -> None:
        node_value = value(node)
        w = node_value * scale
        if w < 0.1:
            return
        y = 24 + _SVG_PAD + level * _SVG_ROW_H
        tip = f"{stack} — {node_value:.6f}s total, {float(node['self']):.6f}s self"
        if profile.has_energy and float(node["energy"]) > 0.0:  # type: ignore[arg-type]
            tip += f", {float(node['energy']):.2f} J"  # type: ignore[arg-type]
        parts.append(
            f'<g><title>{_escape(tip)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w - 0.5, 0.5):.2f}" '
            f'height="{_SVG_ROW_H - 1}" fill="{_frame_color(name)}" rx="1"/>'
        )
        label_chars = int(w / _SVG_CHAR_W)
        if label_chars >= 3:
            text = name if len(name) <= label_chars else name[: label_chars - 1] + "…"
            parts.append(
                f'<text x="{x + 2:.2f}" y="{y + 12}">{_escape(text)}</text>'
            )
        parts.append("</g>")
        cursor = x + float(node["self"]) * scale  # type: ignore[arg-type]
        for child_name in sorted(node["children"]):  # type: ignore[call-overload]
            child = node["children"][child_name]  # type: ignore[index]
            emit(child_name, child, cursor, level + 1, f"{stack}{STACK_SEP}{child_name}")
            cursor += value(child) * scale

    cursor = float(_SVG_PAD)
    for name in sorted(root["children"]):  # type: ignore[call-overload]
        child = root["children"][name]  # type: ignore[index]
        emit(name, child, cursor, 0, name)
        cursor += value(child) * scale
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


# -- differential profiles -----------------------------------------------------


@dataclass(frozen=True)
class StackDelta:
    """One stack's change between two profiles."""

    stack: str
    self_a: float
    self_b: float
    status: str  # "new" | "gone" | "grown" | "shrunk" | "unchanged"

    @property
    def delta_s(self) -> float:
        return self.self_b - self.self_a

    def as_dict(self) -> Dict[str, object]:
        return {
            "stack": self.stack,
            "status": self.status,
            "self_a": self.self_a,
            "self_b": self.self_b,
            "delta_s": self.delta_s,
        }


@dataclass
class StackDiff:
    """Per-stack differential profile, sorted by ``|Δself|``."""

    deltas: List[StackDelta]
    total_a: float
    total_b: float
    label_a: str = "a"
    label_b: str = "b"

    @property
    def changed(self) -> List[StackDelta]:
        return [delta for delta in self.deltas if delta.status != "unchanged"]

    def as_dict(self) -> Dict[str, object]:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "total_a": self.total_a,
            "total_b": self.total_b,
            "delta_total_s": self.total_b - self.total_a,
            "stacks": [delta.as_dict() for delta in self.deltas],
        }


def diff_flame(
    a: FlameProfile,
    b: FlameProfile,
    epsilon: float = 1e-9,
    label_a: str = "a",
    label_b: str = "b",
) -> StackDiff:
    """Compare two flame profiles stack by stack."""
    deltas: List[StackDelta] = []
    for stack in set(a.stacks) | set(b.stacks):
        self_a = a.stacks[stack].self_s if stack in a.stacks else 0.0
        self_b = b.stacks[stack].self_s if stack in b.stacks else 0.0
        if stack not in a.stacks:
            status = "new"
        elif stack not in b.stacks:
            status = "gone"
        elif self_b - self_a > epsilon:
            status = "grown"
        elif self_a - self_b > epsilon:
            status = "shrunk"
        else:
            status = "unchanged"
        deltas.append(
            StackDelta(stack=stack, self_a=self_a, self_b=self_b, status=status)
        )
    deltas.sort(key=lambda delta: (-abs(delta.delta_s), delta.stack))
    return StackDiff(
        deltas=deltas,
        total_a=a.total_self_s,
        total_b=b.total_self_s,
        label_a=label_a,
        label_b=label_b,
    )


def profile_vs_baseline(profile: FlameProfile, baseline) -> StackDiff:
    """Compare a fresh profile against a bench baseline's stacks.

    ``baseline`` is a :class:`~repro.bench.baseline.BenchBaseline`
    whose ``stacks`` map folded stacks to committed self-time medians.
    Raises :class:`ValueError` when the baseline committed no stacks
    (it predates the profiling observatory).
    """
    if not getattr(baseline, "stacks", None):
        raise ValueError(
            f"baseline for scenario {baseline.scenario!r} has no per-stack "
            "profile — regenerate it with `socrates bench run`"
        )
    base = FlameProfile(label=f"BENCH_{baseline.scenario}")
    for stack, record in baseline.stacks.items():
        base.stacks[stack] = StackStat(
            self_s=record.self_s.median, count=record.count
        )
    return diff_flame(
        base, profile, label_a=base.label, label_b=profile.label or "fresh"
    )


def format_stack_diff(
    diff: StackDiff, limit: int = 20, hide_unchanged: bool = True
) -> str:
    """Fixed-width table of a :class:`StackDiff`, |Δself| first."""
    deltas = diff.changed if hide_unchanged else diff.deltas
    shown = deltas[:limit] if limit else deltas
    lines = [
        f"stack diff: {diff.label_a} -> {diff.label_b} "
        f"(total {diff.total_a:.4f}s -> {diff.total_b:.4f}s, "
        f"{len(diff.changed)} stack(s) changed)",
        f"{'status':9s} {'self_a':>10s} {'self_b':>10s} {'delta_s':>10s}  stack",
    ]
    for delta in shown:
        lines.append(
            f"{delta.status:9s} {delta.self_a:10.4f} {delta.self_b:10.4f} "
            f"{delta.delta_s:+10.4f}  {delta.stack}"
        )
    hidden = len(deltas) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more stack(s) not shown")
    return "\n".join(lines)


# -- causal what-if analysis ---------------------------------------------------


@dataclass(frozen=True)
class WhatIfTarget:
    """One hypothetical optimization target.

    ``matcher`` is the general contract; the optional ``name`` /
    ``prefix`` / ``knob`` hints let :func:`whatif` resolve the matched
    spans from a prebuilt index instead of scanning every node per
    target, which is what keeps the default 100+-target sweep cheap.
    A hinted target's matcher must agree with its hint.
    """

    label: str
    kind: str  # "span" | "family" | "knob"
    matcher: Callable[[ProfileNode], bool]
    name: Optional[str] = None  # exact span-name index lookup
    prefix: Optional[str] = None  # family: names starting "<prefix>:"
    knob: Optional[Tuple[str, str]] = None  # (attribute key, value)


def _knob_value(node: ProfileNode, key: str) -> Optional[str]:
    value = node.attributes.get(key)
    return None if value is None else str(value)


def default_targets(roots: Sequence[ProfileNode]) -> List[WhatIfTarget]:
    """Enumerate causal targets: span names, families, knob dimensions.

    Names sharing a ``prefix:`` (the ``truth:``/``build:`` instance
    families) collapse into one ``prefix:*`` family target; remaining
    names become individual targets.  Attribute keys from
    :data:`KNOB_KEYS` with at least two observed values contribute one
    ``knob:key=value`` target per value.
    """
    names: Dict[str, float] = {}
    knob_values: Dict[str, Dict[str, int]] = {}
    for node in _walk(roots):
        names[node.name] = names.get(node.name, 0.0) + node.self_s
        for key in KNOB_KEYS:
            value = _knob_value(node, key)
            if value is not None:
                counts = knob_values.setdefault(key, {})
                counts[value] = counts.get(value, 0) + 1
    by_prefix: Dict[str, List[str]] = {}
    for name in names:
        if ":" in name:
            by_prefix.setdefault(name.split(":", 1)[0], []).append(name)
    targets: List[WhatIfTarget] = []
    covered: set = set()
    for prefix in sorted(by_prefix):
        members = by_prefix[prefix]
        if len(members) < 2:
            continue
        covered.update(members)
        targets.append(
            WhatIfTarget(
                label=f"{prefix}:*",
                kind="family",
                matcher=lambda node, _p=prefix: node.name.startswith(_p + ":"),
                prefix=prefix,
            )
        )
    for name in sorted(set(names) - covered):
        targets.append(
            WhatIfTarget(
                label=name,
                kind="span",
                matcher=lambda node, _n=name: node.name == _n,
                name=name,
            )
        )
    for key in sorted(knob_values):
        values = knob_values[key]
        if len(values) < 2:
            continue  # one observed value is not a dimension to tune
        for value in sorted(values):
            targets.append(
                WhatIfTarget(
                    label=f"knob:{key}={value}",
                    kind="knob",
                    matcher=lambda node, _k=key, _v=value: _knob_value(node, _k)
                    == _v,
                    knob=(key, value),
                )
            )
    return targets


def _scaled_duration(
    node: ProfileNode,
    factors: Mapping[int, float],
    dirty: Optional[AbstractSet[int]] = None,
) -> Tuple[float, bool]:
    """(new duration, changed) of a subtree under self-time scaling.

    The replay model: a span's serial chain is its own self time plus
    its same-track children in sequence; adopted worker lanes run
    concurrently, each lane's makespan being the sum of its members.
    The new duration is the critical path — the longest of the serial
    chain and every lane.  An *unchanged* subtree short-circuits to the
    recorded duration, so a 0% speedup reproduces the original timings
    exactly (no float re-association).

    ``dirty`` is an optional pruning set — span ids whose subtree may
    contain a scaled span (matched spans plus their ancestors).  Any
    subtree outside it returns its recorded duration without
    recursing, which turns a replay from O(trace) into O(matched x
    depth) and keeps ``socrates obs whatif`` cheap on big traces.
    """
    if dirty is not None and node.span_id not in dirty:
        return node.duration_s, False
    factor = factors.get(node.span_id, 1.0)
    changed = factor != 1.0
    serial = node.self_s * factor
    # each worker lane is its own serial chain: members in order with
    # their measured gaps (idle lane time belongs to the parent, so it
    # scales with the parent's factor), makespan measured from the
    # parent's start
    lanes: Dict[str, Tuple[float, float]] = {}  # track -> (makespan, prev_end)
    for child in node.children:
        child_dur, child_changed = _scaled_duration(child, factors, dirty)
        changed = changed or child_changed
        if child.track == node.track:
            serial += child_dur
        else:
            makespan, previous_end = lanes.get(child.track, (0.0, node.start_s))
            gap = child.start_s - previous_end
            lanes[child.track] = (makespan + gap * factor + child_dur, child.end_s)
    if not changed:
        return node.duration_s, False
    return max([serial] + [makespan for makespan, _ in lanes.values()]), True


def scaled_end_to_end_s(
    roots: Sequence[ProfileNode],
    factors: Mapping[int, float],
    dirty: Optional[AbstractSet[int]] = None,
) -> float:
    """End-to-end virtual wall time under self-time scaling.

    Root spans execute in sequence on the main track, so the end-to-end
    time is the sum of their (replayed) durations.
    """
    return sum(_scaled_duration(root, factors, dirty)[0] for root in roots)


def _ancestor_closure(
    matched: Sequence[ProfileNode], parent_of: Mapping[int, int]
) -> AbstractSet[int]:
    """Matched span ids plus every ancestor's — the replay's dirty set."""
    dirty: set = set()
    for node in matched:
        span_id: Optional[int] = node.span_id
        while span_id is not None and span_id not in dirty:
            dirty.add(span_id)
            span_id = parent_of.get(span_id)
    return dirty


def rescale_tree(
    roots: Sequence[ProfileNode], factors: Mapping[int, float]
) -> List[ProfileNode]:
    """Physically re-lay the trace with scaled self times.

    An independent replay (used to cross-check :func:`whatif`): every
    span's own work — including the gaps between its children, which
    are part of its self time — scales by its factor; same-track
    children are laid back out in order with their gaps, worker lanes
    keep their relative offsets scaled, and each span closes when its
    serial chain and all lanes have finished.
    """

    def rebuild(node: ProfileNode, start: float) -> ProfileNode:
        factor = factors.get(node.span_id, 1.0)
        clone = ProfileNode(
            name=node.name,
            span_id=node.span_id,
            parent_id=node.parent_id,
            start_s=start,
            end_s=start,
            track=node.track,
            ok=node.ok,
            attributes=dict(node.attributes),
        )
        cursor = start
        previous_end = node.start_s
        lanes: Dict[str, Tuple[float, float]] = {}  # track -> (cursor, prev_end)
        lane_ends: List[float] = []
        for child in node.children:
            if child.track == node.track:
                gap = child.start_s - previous_end
                child_clone = rebuild(child, cursor + gap * factor)
                cursor = child_clone.end_s
                previous_end = child.end_s
            else:
                lane_cursor, lane_prev = lanes.get(child.track, (start, node.start_s))
                gap = child.start_s - lane_prev
                child_clone = rebuild(child, lane_cursor + gap * factor)
                lanes[child.track] = (child_clone.end_s, child.end_s)
                lane_ends.append(child_clone.end_s)
            clone.children.append(child_clone)
        trailing = node.end_s - previous_end
        serial_end = cursor + trailing * factor
        clone.end_s = max([serial_end] + lane_ends)
        clone.self_s = clone.duration_s - sum(
            child.duration_s
            for child in clone.children
            if child.track == clone.track
        )
        return clone

    rebuilt: List[ProfileNode] = []
    cursor: Optional[float] = None
    previous_end: Optional[float] = None
    for root in roots:
        if cursor is None:
            start = root.start_s
        else:
            start = cursor + (root.start_s - previous_end)
        clone = rebuild(root, start)
        rebuilt.append(clone)
        cursor = clone.end_s
        previous_end = root.end_s
    return rebuilt


@dataclass
class WhatIfOutcome:
    """One (target, speedup) cell of the what-if table."""

    speedup: float
    end_to_end_s: float
    improvement: float
    energy_j: Optional[float] = None
    energy_improvement: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "speedup": self.speedup,
            "end_to_end_s": self.end_to_end_s,
            "improvement": self.improvement,
        }
        if self.energy_j is not None:
            record["energy_j"] = self.energy_j
            record["energy_improvement"] = self.energy_improvement
        return record


@dataclass
class WhatIfRow:
    """One causal target's predicted payoffs."""

    target: str
    kind: str
    matched_spans: int
    matched_self_s: float
    matched_energy_j: Optional[float]
    outcomes: List[WhatIfOutcome]

    def outcome_at(self, speedup: float) -> Optional[WhatIfOutcome]:
        for outcome in self.outcomes:
            if abs(outcome.speedup - speedup) < 1e-12:
                return outcome
        return None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "target": self.target,
            "kind": self.kind,
            "matched_spans": self.matched_spans,
            "matched_self_s": self.matched_self_s,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }
        if self.matched_energy_j is not None:
            record["matched_energy_j"] = self.matched_energy_j
        return record


@dataclass
class WhatIfReport:
    """The ranked what-if table."""

    baseline_end_to_end_s: float
    rows: List[WhatIfRow]
    speedups: Tuple[float, ...]
    rank_speedup: float
    baseline_energy_j: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "baseline_end_to_end_s": self.baseline_end_to_end_s,
            "speedups": list(self.speedups),
            "rank_speedup": self.rank_speedup,
            "rows": [row.as_dict() for row in self.rows],
        }
        if self.baseline_energy_j is not None:
            record["baseline_energy_j"] = self.baseline_energy_j
        return record

    def format(self, limit: int = 15) -> str:
        rows = self.rows[:limit] if limit else self.rows
        width = max([len(row.target) for row in rows] + [6])
        header = (
            f"what-if: end-to-end {self.baseline_end_to_end_s:.4f}s"
            + (
                f", energy {self.baseline_energy_j:.2f} J"
                if self.baseline_energy_j is not None
                else ""
            )
            + f", {len(self.rows)} causal target(s); "
            "cells are predicted end-to-end improvement"
        )
        columns = " ".join(f"{speedup:>6.0%}" for speedup in self.speedups)
        lines = [
            header,
            f"{'target':{width}s} {'spans':>5s} {'self_s':>9s} {columns}"
            + (
                f" {'energy@' + format(self.rank_speedup, '.0%'):>11s}"
                if self.baseline_energy_j is not None
                else ""
            ),
        ]
        for row in rows:
            cells = " ".join(
                f"{outcome.improvement:>6.1%}" for outcome in row.outcomes
            )
            line = (
                f"{row.target:{width}s} {row.matched_spans:5d} "
                f"{row.matched_self_s:9.4f} {cells}"
            )
            if self.baseline_energy_j is not None:
                at_rank = self.outcome_energy(row)
                line += f" {at_rank:>11.1%}" if at_rank is not None else f" {'-':>11s}"
            lines.append(line)
        hidden = len(self.rows) - len(rows)
        if hidden > 0:
            lines.append(f"... {hidden} more target(s) not shown")
        return "\n".join(lines)

    def outcome_energy(self, row: WhatIfRow) -> Optional[float]:
        outcome = row.outcome_at(self.rank_speedup)
        return None if outcome is None else outcome.energy_improvement


def whatif(
    roots: Sequence[ProfileNode],
    speedups: Sequence[float] = DEFAULT_SPEEDUPS,
    targets: Optional[Sequence[WhatIfTarget]] = None,
    energy: Optional[Mapping[int, float]] = None,
    total_energy_j: Optional[float] = None,
    rank_speedup: float = 0.50,
) -> WhatIfReport:
    """Rank causal targets by predicted end-to-end payoff.

    For every target and every speedup ``s`` the matched spans' *self*
    time is scaled by ``1 - s`` and the tree replayed in virtual time
    (see :func:`_scaled_duration`).  With an ``energy`` attribution
    map the matched joules scale with time at constant power and the
    rest of the ledger is carried through unchanged, so the predicted
    total stays conserving: ``new = total - matched * s``.
    """
    for speedup in speedups:
        if not 0.0 <= speedup < 1.0:
            raise ValueError(f"speedup must be in [0, 1), got {speedup!r}")
    roots = list(roots)
    baseline = sum(root.duration_s for root in roots)
    if targets is None:
        targets = default_targets(roots)
    all_nodes = list(_walk(roots))
    parent_of: Dict[int, int] = {}
    by_name: Dict[str, List[ProfileNode]] = {}
    by_knob: Dict[Tuple[str, str], List[ProfileNode]] = {}
    for node in all_nodes:
        for child in node.children:
            parent_of[child.span_id] = node.span_id
        by_name.setdefault(node.name, []).append(node)
        for key in KNOB_KEYS:
            value = _knob_value(node, key)
            if value is not None:
                by_knob.setdefault((key, value), []).append(node)
    if total_energy_j is None and energy is not None:
        total_energy_j = sum(energy.values())

    def resolve(target: WhatIfTarget) -> List[ProfileNode]:
        if target.name is not None:
            return by_name.get(target.name, [])
        if target.prefix is not None:
            marker = target.prefix + ":"
            return [
                node
                for name in sorted(by_name)
                if name.startswith(marker)
                for node in by_name[name]
            ]
        if target.knob is not None:
            return by_knob.get(target.knob, [])
        return [node for node in all_nodes if target.matcher(node)]

    rows: List[WhatIfRow] = []
    for target in targets:
        matched = resolve(target)
        if not matched:
            continue
        dirty = _ancestor_closure(matched, parent_of)
        matched_self = sum(node.self_s for node in matched)
        matched_energy = (
            sum(energy.get(node.span_id, 0.0) for node in matched)
            if energy is not None
            else None
        )
        outcomes: List[WhatIfOutcome] = []
        for speedup in speedups:
            factors = {node.span_id: 1.0 - speedup for node in matched}
            new_total = scaled_end_to_end_s(roots, factors, dirty)
            improvement = (
                (baseline - new_total) / baseline if baseline > 0 else 0.0
            )
            outcome = WhatIfOutcome(
                speedup=speedup,
                end_to_end_s=new_total,
                improvement=improvement,
            )
            if matched_energy is not None and total_energy_j:
                saved = matched_energy * speedup
                outcome.energy_j = total_energy_j - saved
                outcome.energy_improvement = saved / total_energy_j
            outcomes.append(outcome)
        rows.append(
            WhatIfRow(
                target=target.label,
                kind=target.kind,
                matched_spans=len(matched),
                matched_self_s=matched_self,
                matched_energy_j=matched_energy,
                outcomes=outcomes,
            )
        )

    def rank_key(row: WhatIfRow) -> Tuple[float, str]:
        outcome = row.outcome_at(rank_speedup)
        improvement = (
            outcome.improvement if outcome is not None else -float("inf")
        )
        return (-improvement, row.target)

    rows.sort(key=rank_key)
    return WhatIfReport(
        baseline_end_to_end_s=baseline,
        rows=rows,
        speedups=tuple(speedups),
        rank_speedup=rank_speedup,
        baseline_energy_j=total_energy_j,
    )


# -- validation ----------------------------------------------------------------


def validate_folded_text(path: PathLike) -> Dict[str, object]:
    """Validate a folded-stack export; raise :class:`ValueError`."""
    profile = FlameProfile.load_folded(path)
    if not profile.stacks:
        raise ValueError(f"{path}: folded profile contains no stacks")
    for stack, stat in profile.stacks.items():
        if stat.self_s != stat.self_s or stat.self_s in (
            float("inf"),
            -float("inf"),
        ):
            raise ValueError(f"{path}: stack {stack!r} self_s is not finite")
        if stat.self_s < 0:
            raise ValueError(
                f"{path}: stack {stack!r} has negative self time "
                f"({stat.self_s!r}s)"
            )
        frames = stack.split(STACK_SEP)
        if any(not frame for frame in frames):
            raise ValueError(f"{path}: stack {stack!r} has an empty frame")
    return {
        "stacks": len(profile.stacks),
        "total_self_s": profile.total_self_s,
    }


def validate_profile_json(path: PathLike) -> Dict[str, object]:
    """Validate a ``socrates-profile/1`` JSON document."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as error:
        raise ValueError(f"{path}: cannot read profile ({error})") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: profile document is not a JSON object")
    try:
        profile = FlameProfile.from_dict(document)
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"{path}: malformed profile ({error})") from None
    if not profile.stacks:
        raise ValueError(f"{path}: profile contains no stacks")
    declared = document.get("total_self_s")
    if not isinstance(declared, (int, float)):
        raise ValueError(f"{path}: profile lacks a numeric 'total_self_s'")
    actual = profile.total_self_s
    if abs(actual - float(declared)) > CONSERVATION_TOL * max(
        1.0, abs(float(declared))
    ):
        raise ValueError(
            f"{path}: declared total_self_s {declared!r} does not match "
            f"the stacks' sum {actual!r} — the profile does not conserve "
            "virtual time"
        )
    summary: Dict[str, object] = {
        "stacks": len(profile.stacks),
        "total_self_s": actual,
    }
    if profile.has_energy:
        summary["total_energy_j"] = profile.total_energy_j
    return summary
