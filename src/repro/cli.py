"""Command-line interface: the ``socrates`` tool.

Subcommands cover the whole reproduction workflow:

===============  ==========================================================
``list``         list the available benchmarks
``features``     print the Milepost feature vector of a kernel
``predict``      print COBAYN's CF1..CF4 predictions for a kernel
``weave``        weave a benchmark and print the adaptive source + metrics
``build``        run the full toolflow; optionally save the oplist/source
``trace``        run a runtime scenario from a JSON mARGOt configuration
``check``        static analysis: OpenMP race lint + weave verification
``obs``          export/validate/diff traces, metrics dumps; live dashboard
``energy``       virtual-RAPL energy observatory: report, timeline, budget SLOs
``bench``        performance observatory: baselines and the regression gate
``table1``       regenerate Table I
``fig3``         regenerate Figure 3 (ASCII boxplots)
``fig4``         regenerate Figure 4 (budget sweep table)
``fig5``         regenerate Figure 5 (ASCII trace)
===============  ==========================================================

All output goes to stdout; every command returns a process exit code,
so ``main`` is directly testable.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", help="benchmark name (see `socrates list`)")


def _add_machine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        metavar="NAME",
        help="machine model from the registry (e.g. xeon_2s, biglittle_4p4e; "
        "default: the paper's dual-socket Xeon)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="also record this invocation into the telemetry warehouse at DIR "
        "(runs under the deterministic virtual clock)",
    )
    parser.add_argument(
        "--store-label",
        default="",
        metavar="LABEL",
        help="label mixed into the recorded run's identity "
        "(distinguishes otherwise identical runs)",
    )


def _make_obs(args: argparse.Namespace):
    """An enabled Observability when any obs flag asks for one, else None."""
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "audit_out", None)
        or getattr(args, "metrics_out", None)
    ):
        from repro.obs import Observability

        return Observability()
    return None


def _toolflow(args: argparse.Namespace, obs=None):
    from repro.core.toolflow import SocratesToolflow

    threads = None
    if getattr(args, "threads", None):
        threads = sorted({int(t) for t in args.threads.split(",")})
    backend = None
    if getattr(args, "workers", None):
        from repro.engine import ProcessPoolBackend

        backend = ProcessPoolBackend(max_workers=args.workers)
    kwargs = {}
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return SocratesToolflow(
        machine=getattr(args, "machine", None),
        dse_repetitions=getattr(args, "repetitions", 3),
        thread_counts=threads,
        backend=backend,
        obs=obs,
        **kwargs,
    )


def _write_obs_artifacts(obs, args: argparse.Namespace) -> None:
    """Honor --trace-out / --audit-out / --metrics-out from any
    obs-enabled command.

    Notices go to stderr so they never corrupt a --json document on
    stdout."""
    if getattr(args, "trace_out", None):
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(obs.tracer.spans, args.trace_out)
        print(
            f"Wrote Chrome trace to {args.trace_out} ({count} spans)",
            file=sys.stderr,
        )
    if getattr(args, "audit_out", None):
        from repro.obs.export import write_audit_jsonl

        count = write_audit_jsonl(obs.audit, args.audit_out)
        print(
            f"Wrote adaptation audit to {args.audit_out} ({count} entries)",
            file=sys.stderr,
        )
    if getattr(args, "metrics_out", None):
        from repro.obs.export import write_prometheus

        count = write_prometheus(obs.metrics, args.metrics_out)
        print(
            f"Wrote metrics to {args.metrics_out} ({count} series)",
            file=sys.stderr,
        )


def _load_app(name: str):
    from repro.polybench.suite import load

    return load(name)


def _standard_space(machine):
    """The toolflow's default autotuning lattice on ``machine``:
    standard optimization levels x all thread counts x both bindings
    (x one pin per cluster type on heterogeneous machines)."""
    from repro.engine.model import DesignSpace
    from repro.gcc.flags import standard_levels

    if machine.is_homogeneous:
        pins, capacities = (None,), None
    else:
        pins = tuple(machine.cluster_names())
        capacities = {name: machine.cluster_logical_cpus(name) for name in pins}
    return DesignSpace(
        compiler_configs=standard_levels(),
        thread_counts=list(range(1, machine.logical_cpus + 1)),
        clusters=pins,
        cluster_capacities=capacities,
    )


def _pareto_keys(front):
    """Canonical (knobs, metrics) form of a Pareto front for equality
    checks — bit-exact means/stds, stable ordering."""
    return [
        {
            "knobs": dict(op.knobs),
            "metrics": {
                name: [stats.mean, stats.std]
                for name, stats in sorted(op.metrics.items())
            },
        }
        for op in front
    ]


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    from repro.polybench.suite import all_apps

    print(f"{'name':14s} {'category':24s} {'kernels'}")
    for app in all_apps():
        print(f"{app.name:14s} {app.category:24s} {', '.join(app.kernels)}")
    return 0


def cmd_features(args: argparse.Namespace) -> int:
    from repro.milepost.features import extract_features

    app = _load_app(args.app)
    vector = extract_features(app.parse(), app.kernels[0])
    print(f"Milepost features of {app.name} / {vector.kernel}:")
    for name, value in vector.values.items():
        print(f"  {name:28s} {value:12.4g}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.cobayn.autotuner import CobaynAutotuner
    from repro.cobayn.corpus import build_corpus
    from repro.milepost.features import extract_features
    from repro.polybench.suite import all_apps

    flow = _toolflow(args)
    app = _load_app(args.app)
    training = [candidate for candidate in all_apps() if candidate.name != app.name]
    corpus = build_corpus(training, flow.compiler, flow.executor, flow.omp)
    tuner = CobaynAutotuner()
    tuner.train(corpus)
    features = extract_features(app.parse(), app.kernels[0])
    prediction = tuner.predict(features, k=args.k)
    print(f"COBAYN predictions for {app.name} (trained on the other {len(training)}):")
    for index, (config, posterior) in enumerate(prediction.ranked[: args.k], start=1):
        print(f"  CF{index}: p={posterior:.4f}  {config.label}")
    return 0


def cmd_weave(args: argparse.Namespace) -> int:
    from repro.cir import to_source
    from repro.gcc.flags import paper_custom_flags, standard_levels
    from repro.lara.metrics import weave_benchmark

    app = _load_app(args.app)
    configs = standard_levels() + paper_custom_flags()
    report, weaver = weave_benchmark(app, configs)
    if args.source:
        print(to_source(weaver.unit))
    print(
        f"# {report.benchmark}: Att={report.attributes} Act={report.actions} "
        f"O-LOC={report.original_loc} W-LOC={report.weaved_loc} "
        f"D-LOC={report.delta_loc} Bloat={report.bloat:.2f}"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    import json

    json_mode = getattr(args, "json", False)
    store_dir = getattr(args, "store", None)
    if store_dir:
        # warehouse mode: the build runs under the deterministic
        # virtual tracer clock so the recorded run id and artifact
        # hashes are pure functions of (source, machine, seed, knobs)
        from repro.obs.store import recording_observability

        obs = recording_observability()
    else:
        obs = _make_obs(args)
    flow = _toolflow(args, obs=obs)
    app = _load_app(args.app)
    if not json_mode:
        print(f"Building adaptive {app.name}...")
    if store_dir:
        with obs.tracer.span(f"build:{app.name}") as build_span:
            result = flow.build(app)
        obs.absorb_engine(flow.engine)
        run_id, created = _store_build_run(
            _open_store(store_dir),
            flow,
            app,
            result,
            obs,
            build_span.duration_s,
            getattr(args, "store_label", "") or "",
            {},
        )
        verb = "recorded" if created else "already recorded"
        print(f"{verb} build run {run_id} in {store_dir}", file=sys.stderr)
    else:
        result = flow.build(app)
    if not json_mode:
        print("Custom flags (COBAYN):")
        for index, config in enumerate(result.custom_flags, start=1):
            print(f"  CF{index}: {config.label}")
        print(
            f"Knowledge base: {len(result.exploration.knowledge)} operating points "
            f"({result.exploration.coverage:.0%} of the space)"
        )
    if args.oplist:
        from repro.margot.oplist import save_knowledge

        save_knowledge(
            result.exploration.knowledge,
            args.oplist,
            machine=flow.machine.name if getattr(args, "machine", None) else None,
        )
        if not json_mode:
            print(f"Wrote oplist to {args.oplist}")
    if args.source_out:
        with open(args.source_out, "w") as handle:
            handle.write(result.adaptive_source)
        if not json_mode:
            print(f"Wrote adaptive source to {args.source_out}")
    if json_mode:
        payload = {
            "app": app.name,
            "custom_flags": [config.label for config in result.custom_flags],
            "knowledge_points": len(result.exploration.knowledge),
            "coverage": result.exploration.coverage,
        }
        if args.stage_report:
            payload["stage_report"] = result.stage_report()
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.stage_report:
        print(json.dumps(result.stage_report(), indent=2))
    if obs is not None:
        _write_obs_artifacts(obs, args)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Build an app and dump the stage-event + engine-cache telemetry."""
    import json

    flow = _toolflow(args)
    app = _load_app(args.app)
    result = flow.build(app)
    payload = {
        "app": app.name,
        "backend": flow.engine.backend.name,
        **result.stage_report(),
        "engine": flow.engine.stats(),
    }
    if getattr(args, "json", False):
        # machine mode: one line, stable key order, no screen-scraping
        print(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    else:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.scenario import Phase, Scenario
    from repro.core.trace import summarize_phases, trace_to_csv
    from repro.margot.config import apply_configuration, load_config

    import contextlib

    config = load_config(args.config)
    store_dir = getattr(args, "store", None)
    if store_dir:
        from repro.obs.store import recording_observability

        obs = recording_observability()
    else:
        obs = _make_obs(args)
    flow = _toolflow(args, obs=obs)
    app_def = _load_app(config.kernel)
    print(f"Building adaptive {config.kernel}...")
    with contextlib.ExitStack() as stack:
        trace_span = (
            stack.enter_context(obs.tracer.span(f"trace:{config.kernel}"))
            if store_dir
            else None
        )
        result = flow.build(app_def)
        app = result.adaptive
        apply_configuration(config, app)

        phase_specs = []
        names = config.state_names()
        interval = args.duration / len(names)
        for index, name in enumerate(names):
            phase_specs.append(Phase(index * interval, name))
        scenario = Scenario(phases=phase_specs, duration_s=args.duration)
        print(f"Running {args.duration:.0f}s over states: {', '.join(names)}")
        records = scenario.run(app)

    def record_trace_run() -> None:
        import hashlib

        identity = flow.run_identity()
        machine = str(identity.pop("machine"))
        seed = int(identity.pop("seed"))
        with open(args.config, "rb") as handle:
            config_sha = hashlib.sha256(handle.read()).hexdigest()
        blobs, derivations = _warehouse_artifacts(obs)
        run_id, created = _open_store(store_dir).record(
            "trace",
            app=config.kernel,
            machine=machine,
            seed=seed,
            label=getattr(args, "store_label", "") or "",
            source=app_def.source_fingerprint(),
            knobs={
                **identity,
                "config_sha256": config_sha,
                "duration": args.duration,
                "slowdowns": [],
            },
            metrics={
                "wall_s": trace_span.duration_s,
                "invocations": len(records),
            },
            artifacts=blobs,
            derivations=derivations,
        )
        verb = "recorded" if created else "already recorded"
        print(f"{verb} trace run {run_id} in {store_dir}", file=sys.stderr)
    for summary in summarize_phases(records, scenario):
        print(
            f"  [{summary.start_s:6.1f}-{summary.end_s:6.1f}s] {summary.state:14s} "
            f"{summary.invocations:5d} inv  {summary.mean_power_w:6.1f} W  "
            f"{summary.mean_time_s * 1e3:8.1f} ms  T={summary.dominant_threads} "
            f"{summary.dominant_binding} {summary.dominant_compiler}"
        )
    if args.csv:
        trace_to_csv(records, args.csv)
        print(f"Wrote trace to {args.csv}")
    if obs is not None:
        obs.absorb_engine(flow.engine)
        obs.absorb_monitors(app.manager.monitors)
        _write_obs_artifacts(obs, args)
    if store_dir:
        # record only after the engine counters and monitor statistics
        # were absorbed, so the stored metrics.prom carries them
        record_trace_run()
    return 0


def cmd_profiles(args: argparse.Namespace) -> int:
    """Print the AST-derived workload profile of every benchmark."""
    from repro.polybench.suite import all_apps
    from repro.polybench.workload import profile_kernel

    print(
        f"{'benchmark':12s} {'GFLOP':>7s} {'WS[MB]':>7s} {'AI':>6s} {'par':>5s} "
        f"{'regions':>8s} {'dep':>4s} {'red':>4s} {'depth':>6s}"
    )
    for app in all_apps():
        profile = profile_kernel(app)
        print(
            f"{app.name:12s} {profile.flops / 1e9:7.2f} "
            f"{profile.working_set_bytes / 1e6:7.1f} "
            f"{profile.arithmetic_intensity:6.3f} {profile.parallel_fraction:5.2f} "
            f"{profile.parallel_regions:8.0f} "
            f"{'yes' if profile.loop_carried_dependence else 'no':>4s} "
            f"{'yes' if profile.reduction_innermost else 'no':>4s} "
            f"{profile.max_depth:6d}"
        )
    return 0


def cmd_loocv(args: argparse.Namespace) -> int:
    """COBAYN leave-one-out cross-validation over the suite."""
    from repro.cobayn.evaluation import loocv_report
    from repro.polybench.suite import all_apps

    flow = _toolflow(args)
    names = args.apps.split(",") if args.apps else None
    apps = [app for app in all_apps() if names is None or app.name in names]
    report = loocv_report(apps, flow.compiler, flow.executor, flow.omp, k=args.k)
    print("COBAYN leave-one-out cross-validation")
    print(report.to_table())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Interpret a benchmark source (optionally weaved) at a tiny size."""
    from repro.cir import parse
    from repro.cir.interp import Interpreter
    from repro.polybench.datasets import DATASETS

    obs = _make_obs(args)
    if obs is None:
        from repro.obs import NULL_OBS

        obs = NULL_OBS
    app = _load_app(args.app)
    overrides = {name: max(4, args.size) for name in app.sizes}
    for name in overrides:
        if name.startswith("TSTEPS"):
            overrides[name] = 2

    with obs.tracer.span(f"run:{app.name}", app=app.name, weaved=args.weaved):
        if args.weaved:
            from repro.gcc.flags import paper_custom_flags, standard_levels
            from repro.lara.metrics import weave_benchmark

            configs = standard_levels() + paper_custom_flags()
            with obs.tracer.span("weave"):
                _, weaver = weave_benchmark(app, configs)
            stubs = {
                "margot_init": lambda: None,
                "margot_update": lambda v, t: (v.set(args.version), t.set(1)),
                "margot_start_monitor": lambda: None,
                "margot_stop_monitor": lambda: None,
                "margot_log": lambda: None,
            }
            interp = Interpreter(
                weaver.unit, macro_overrides=overrides, intrinsics=stubs
            )
            print(
                f"Interpreting weaved {app.name} (version {args.version}) at {overrides}..."
            )
        else:
            with obs.tracer.span("parse"):
                unit = app.parse()
            interp = Interpreter(unit, macro_overrides=overrides)
            print(f"Interpreting {app.name} at {overrides}...")

        with obs.tracer.span("interpret", size=args.size):
            code = interp.run_main()
    print(f"main() returned {code}")
    if obs.enabled:
        _write_obs_artifacts(obs, args)
    import numpy as np

    for decl_name in sorted(
        name
        for name in ("D", "G", "y", "corr", "A", "w", "x1", "table", "C")
        if interp.globals.has(name)
    ):
        value = interp.global_value(decl_name)
        if isinstance(value, np.ndarray):
            print(f"  {decl_name}: shape={value.shape} checksum={float(np.sum(value)):.6f}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Static analysis: race lint + flag safety + weave verifier, exit 0/2/3.

    ``socrates check 2mm`` lints one benchmark (pristine + woven);
    ``--all`` covers the whole suite; ``--source FILE`` lints an
    arbitrary C file (race + flag-safety rules only).
    ``--json``/``--sarif`` emit a machine-readable document, to stdout
    or ``--out FILE``.  ``--prune-plan FILE`` (single app) compiles
    the static verdicts into a lattice prune plan for ``socrates dse``.
    """
    import json

    from repro.analysis import CheckReport, check_app, check_source_text

    include_woven = not args.pristine_only
    obs = _make_obs(args)
    if args.source:
        if getattr(args, "prune_plan", None):
            print("error: --prune-plan needs a benchmark app", file=sys.stderr)
            return 2
        with open(args.source) as handle:
            text = handle.read()
        report = CheckReport()
        report.extend(check_source_text(text, filename=args.source), units=1)
    elif getattr(args, "all", False) or args.app:
        if getattr(args, "all", False):
            from repro.polybench.suite import all_apps

            apps = all_apps()
            if getattr(args, "prune_plan", None):
                print(
                    "error: --prune-plan needs a single benchmark, not --all",
                    file=sys.stderr,
                )
                return 2
        else:
            apps = [_load_app(args.app)]
        report = CheckReport()
        for app in apps:
            diagnostics = check_app(app, include_woven=include_woven)
            report.extend(diagnostics, units=2 if include_woven else 1)
            if obs is not None:
                # mirror the toolflow's post-weave gate: per-rule
                # counters and one audit trace per diagnostic, exactly
                # once per app on this CLI path
                from repro.obs import CheckTrace

                for diag in diagnostics:
                    obs.metrics.counter(
                        "socrates_check_diagnostics_total",
                        "Static-analysis diagnostics emitted by socrates check",
                        labels={"rule": diag.rule},
                    ).inc()
                    if obs.audit is not None:
                        obs.audit.record_check(
                            CheckTrace(
                                app=app.name,
                                rule=diag.rule,
                                severity=diag.severity.value,
                                message=diag.message,
                                location=diag.location,
                                phase=diag.phase,
                            )
                        )
        if getattr(args, "prune_plan", None):
            from repro.analysis.cost import build_prune_plan
            from repro.machine.registry import resolve_machine

            machine = resolve_machine(getattr(args, "machine", None))
            plan = build_prune_plan(apps[0], _standard_space(machine))
            with open(args.prune_plan, "w") as handle:
                json.dump(plan.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(
                f"Wrote prune plan to {args.prune_plan}: "
                f"{plan.masked_count}/{plan.space_size} points masked "
                f"({plan.masked_fraction():.0%}), trusted={plan.trusted}"
            )
    else:
        print(
            "error: name a benchmark, or use --all / --source FILE",
            file=sys.stderr,
        )
        return 2

    if obs is not None:
        _write_obs_artifacts(obs, args)
    document = None
    if args.json:
        document = report.as_dict()
    elif args.sarif:
        document = report.as_sarif()
    if document is not None:
        rendered = json.dumps(document, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered + "\n")
        else:
            print(rendered)
    else:
        for diag in report.diagnostics:
            print(diag.format())
        print(report.summary())
    return report.exit_code


def cmd_dse(args: argparse.Namespace) -> int:
    """Run one design-space exploration, optionally statically pruned.

    ``socrates dse 2mm --prune`` builds the static prune plan (cost
    oracle + flag safety) and explores only the unmasked lattice;
    ``--prune-plan FILE`` loads a plan written by ``socrates check``.
    ``--verify-front`` additionally runs the *unpruned* exploration in
    a fresh engine and fails (exit 1) unless both seeded Pareto fronts
    are bit-identical — the soundness gate CI runs.
    """
    import json

    from repro.dse.explorer import DesignSpaceExplorer
    from repro.dse.pareto import pareto_front
    from repro.engine.core import EvaluationEngine
    from repro.obs import Observability

    app = _load_app(args.app)
    machine = getattr(args, "machine", None)
    store_dir = getattr(args, "store", None)

    def explore(plan, recording=False):
        if recording:
            from repro.obs.store import recording_observability

            obs = recording_observability()
        else:
            obs = Observability()
        engine = EvaluationEngine(machine=machine, obs=obs)
        explorer = DesignSpaceExplorer(
            engine.compiler,
            engine.executor,
            engine.omp,
            repetitions=args.repetitions,
            engine=engine,
        )
        profile = engine.profile(app)
        space = _standard_space(engine.machine)
        result = explorer.explore(
            profile, space, seed=args.seed, prune_plan=plan
        )
        front = pareto_front(
            result.knowledge, [("throughput", True), ("power", False)]
        )
        return engine, result, front, obs

    plan = None
    if getattr(args, "prune_plan", None):
        from repro.analysis.cost import PrunePlan

        with open(args.prune_plan) as handle:
            plan = PrunePlan.from_dict(json.load(handle))
        if plan.app != app.name:
            print(
                f"error: prune plan is for {plan.app!r}, not {app.name!r}",
                file=sys.stderr,
            )
            return 2
    elif args.prune:
        from repro.analysis.cost import build_prune_plan
        from repro.machine.registry import resolve_machine

        resolved = resolve_machine(machine)
        plan = build_prune_plan(app, _standard_space(resolved), machine=resolved)

    engine, result, front, obs = explore(plan, recording=bool(store_dir))
    counters = engine.counters
    if store_dir:
        knobs = {
            "repetitions": args.repetitions,
            "pruned": plan is not None,
            "slowdowns": [],
        }
        wall = sum(
            span.duration_s for span in obs.tracer.spans if span.parent_id is None
        )
        blobs, derivations = _warehouse_artifacts(obs)
        run_id, created = _open_store(store_dir).record(
            "dse",
            app=app.name,
            machine=engine.machine.name,
            seed=args.seed,
            label=getattr(args, "store_label", "") or "",
            source=app.source_fingerprint(),
            knobs=knobs,
            metrics={
                "wall_s": wall,
                "points_evaluated": counters.points_evaluated,
                "front_size": len(front),
                "space_size": result.space_size,
            },
            artifacts=blobs,
            derivations=derivations,
        )
        verb = "recorded" if created else "already recorded"
        print(f"{verb} dse run {run_id} in {store_dir}", file=sys.stderr)
    fronts_identical = None
    if args.verify_front:
        _, baseline_result, baseline_front, _ = explore(None)
        fronts_identical = _pareto_keys(front) == _pareto_keys(baseline_front)

    document = {
        "app": app.name,
        "seed": args.seed,
        "repetitions": args.repetitions,
        "space_size": result.space_size,
        "points_evaluated": counters.points_evaluated,
        "points_masked": counters.points_masked,
        "pruned_points": result.pruned_points,
        "prune_audit_records": len(obs.audit.prunes) if obs.audit is not None else 0,
        "front_size": len(front),
        "front": _pareto_keys(front),
        "pruned": plan is not None,
        "fronts_identical": fronts_identical,
    }
    _write_obs_artifacts(obs, args)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"dse {app.name}: {counters.points_evaluated} evaluated, "
            f"{counters.points_masked} masked "
            f"({result.pruned_points}/{result.space_size} statically pruned), "
            f"front size {len(front)}"
        )
        if fronts_identical is not None:
            print(
                "pruned and unpruned Pareto fronts are "
                + ("bit-identical" if fronts_identical else "DIFFERENT")
            )
    if fronts_identical is False:
        return 1
    return 0


def _fig5_scenario(args: argparse.Namespace, obs):
    """Build an adaptive app and run the fig5-style requirement flip.

    The shared workload behind ``obs export``, the ``energy`` commands
    and warehouse ``trace`` records: Thr/W^2 for the first third of
    ``--duration``, plain Throughput for the middle third, Thr/W^2
    again for the last.  Returns ``(toolflow_result, app, records,
    toolflow)``.
    """
    from repro.core.scenario import Phase, Scenario
    from repro.margot.state import (
        OptimizationState,
        maximize_throughput,
        maximize_throughput_per_watt_squared,
    )

    flow = _toolflow(args, obs=obs)
    app_def = _load_app(args.app)
    print(f"Building adaptive {app_def.name} (traced)...")
    result = flow.build(app_def)
    app = result.adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    third = args.duration / 3.0
    scenario = Scenario(
        phases=[
            Phase(0.0, "Thr/W^2"),
            Phase(third, "Throughput"),
            Phase(2 * third, "Thr/W^2"),
        ],
        duration_s=args.duration,
    )
    print(f"Running fig5-style scenario for {args.duration:.0f}s...")
    records = scenario.run(app)
    obs.absorb_engine(flow.engine)
    obs.absorb_monitors(app.manager.monitors)
    return result, app, records, flow


def cmd_obs_export(args: argparse.Namespace) -> int:
    """Build an app, run a fig5-style scenario, export all obs formats.

    Produces ``trace.json`` (Chrome trace_event), ``events.jsonl``
    (full event stream), ``metrics.prom`` (Prometheus text) and
    ``audit.jsonl`` (adaptation audit) under ``--out-dir``.
    """
    from pathlib import Path

    from repro.obs import Observability
    from repro.obs.export import (
        write_audit_jsonl,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )

    obs = Observability()
    _, _, records, _ = _fig5_scenario(args, obs)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    spans = obs.tracer.spans
    written = {
        "trace.json": write_chrome_trace(spans, out_dir / "trace.json"),
        "events.jsonl": write_jsonl(
            out_dir / "events.jsonl", spans, obs.metrics, obs.audit
        ),
        "metrics.prom": write_prometheus(obs.metrics, out_dir / "metrics.prom"),
        "audit.jsonl": write_audit_jsonl(obs.audit, out_dir / "audit.jsonl"),
    }
    print(
        f"Scenario: {len(records)} invocations, "
        f"{len(obs.audit)} operating-point switches explained"
    )
    for name, count in written.items():
        print(f"Wrote {out_dir / name} ({count} records)")
    return 0


def cmd_obs_validate(args: argparse.Namespace) -> int:
    """Validate exported observability artifacts (exit 2 on failure).

    Arguments may be files or directories; a directory is walked
    recursively, every artifact with a recognized suffix is sniffed
    and validated (per-file verdict lines), files no validator claims
    are counted as skipped, and the first malformed artifact stops
    the walk with exit 2 — so a whole telemetry warehouse or artifact
    dump is checked in one call.
    """
    from pathlib import Path

    from repro.obs.validate import VALIDATABLE_SUFFIXES, validate_file

    def describe(path, summary) -> None:
        details = ", ".join(
            f"{key}={value}" for key, value in sorted(summary.items())
        )
        print(f"{path}: OK ({details})")

    validated = 0
    skipped = 0
    for raw in args.files:
        target = Path(raw)
        if target.is_dir():
            members = [path for path in sorted(target.rglob("*")) if path.is_file()]
            if not members:
                raise ValueError(f"{target}: directory contains no files")
            for path in members:
                if path.suffix.lower() not in VALIDATABLE_SUFFIXES:
                    skipped += 1
                    continue
                try:
                    summary = validate_file(path)
                except ValueError as error:
                    message = str(error)
                    prefix = f"{path}: "
                    if message.startswith(prefix):
                        message = message[len(prefix):]
                    print(f"{path}: FAIL ({message})")
                    return 2
                describe(path, summary)
                validated += 1
        else:
            # plain files keep the historical contract: a ValueError
            # propagates to main() and exits 2 with the error on stderr
            describe(target, validate_file(target))
            validated += 1
    print(f"validated {validated} file(s), skipped {skipped}")
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    """Span-level diff of two Chrome trace exports."""
    import json

    from repro.obs.diff import diff_chrome_traces, format_diff

    diff = diff_chrome_traces(args.trace_a, args.trace_b)
    if args.json:
        # machine mode, matching `socrates stats --json`: one line,
        # stable key order, no screen-scraping
        print(json.dumps(diff.as_dict(), sort_keys=True, separators=(",", ":")))
        return 0
    print(f"trace diff: a={args.trace_a}  b={args.trace_b}")
    print(
        format_diff(
            diff,
            limit=args.limit,
            hide_unchanged=not args.show_unchanged,
        )
    )
    return 0


def _load_flame_profile(path):
    """Load a :class:`FlameProfile` from any of the three exchange forms.

    ``.folded`` text, a ``socrates-profile/1`` JSON document, or a raw
    Chrome trace export (which is collapsed on the fly).
    """
    import json
    from pathlib import Path

    from repro.obs.profile import PROFILE_SCHEMA, FlameProfile

    source = Path(path)
    if source.suffix == ".folded":
        return FlameProfile.load_folded(source)
    try:
        document = json.loads(source.read_text())
    except OSError as error:
        raise ValueError(f"{path}: cannot read profile ({error})") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if isinstance(document, dict) and document.get("schema") == PROFILE_SCHEMA:
        profile = FlameProfile.from_dict(document)
        if not profile.label:
            profile.label = str(path)
        return profile
    return FlameProfile.from_chrome_trace(source)


def _profile_source(args: argparse.Namespace):
    """Spans + optional energy attribution behind flame/what-if.

    Three sources: ``--trace FILE`` reconstructs the tree from an
    exported Chrome trace, ``--scenario NAME`` runs a bench scenario
    once, and a benchmark APP runs the fig5-style adaptive workload
    with the energy ledger joined per stack.  Returns
    ``(roots, energy, total_energy_j, label)``.
    """
    from repro.obs.profile import attribute_energy, build_tree, load_chrome_trace

    if getattr(args, "trace", None):
        return load_chrome_trace(args.trace), None, None, str(args.trace)
    if getattr(args, "scenario", None):
        from repro.bench.scenarios import run_scenario

        result = run_scenario(args.scenario, repeats=1)
        return build_tree(result.spans), None, None, f"bench:{args.scenario}"
    if not getattr(args, "app", None):
        raise ValueError(
            "pass a benchmark APP, --trace FILE, or --scenario NAME"
        )
    from repro.obs.energy import EnergyLedger

    obs, result, app, records, timeline = _energy_scenario(args)
    idle_power = app.executor.idle_breakdown().totals()
    ledger = EnergyLedger.from_timeline(
        timeline, stage_events=result.stage_events, idle_power_w=idle_power
    )
    roots = build_tree(obs.tracer.spans)
    energy = attribute_energy(roots, ledger)
    # the what-if total spans both ledger accounts the attribution maps
    # from: the adaptive run (operating points + idle floor) and the
    # host-side toolflow stages
    total_energy_j = (
        ledger.totals_j()["package"] + ledger.stage_totals_j()["package"]
    )
    return roots, energy, total_energy_j, app.name


def cmd_obs_flame(args: argparse.Namespace) -> int:
    """Virtual-time flame graph: table, folded, JSON, SVG, or diffs."""
    import json
    from pathlib import Path

    from repro.obs.profile import (
        FlameProfile,
        diff_flame,
        format_stack_diff,
        profile_vs_baseline,
        render_svg,
    )

    if args.diff:
        profile_a = _load_flame_profile(args.diff[0])
        profile_b = _load_flame_profile(args.diff[1])
        diff = diff_flame(
            profile_a,
            profile_b,
            label_a=profile_a.label or str(args.diff[0]),
            label_b=profile_b.label or str(args.diff[1]),
        )
        if args.json:
            print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_stack_diff(diff, limit=args.limit))
        return 0

    roots, energy, _, label = _profile_source(args)
    profile = FlameProfile.from_tree(roots, label=label, energy=energy)

    if args.against_baseline:
        from repro.bench.baseline import load_baseline

        baseline = load_baseline(args.against_baseline)
        if not baseline.stacks:
            raise ValueError(
                f"{args.against_baseline}: baseline carries no committed "
                "stacks; regenerate it with `socrates bench run ... --out`"
            )
        diff = profile_vs_baseline(profile, baseline)
        if args.json:
            print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_stack_diff(diff, limit=args.limit))
        return 0

    title = f"{label} — virtual-time flame graph"
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        written = {
            "profile.folded": profile.as_folded(),
            "profile.json": json.dumps(
                profile.as_dict(), indent=2, sort_keys=True
            )
            + "\n",
            "flame.svg": render_svg(profile, title=title),
        }
        for name, text in written.items():
            (out_dir / name).write_text(text)
            print(f"Wrote {out_dir / name}")
        return 0

    if args.folded:
        text = profile.as_folded()
    elif args.json:
        text = json.dumps(profile.as_dict(), indent=2, sort_keys=True) + "\n"
    elif args.svg:
        text = render_svg(profile, title=title)
    else:
        text = profile.format_table(limit=args.limit) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"Wrote {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_obs_whatif(args: argparse.Namespace) -> int:
    """Causal what-if: ranked payoff of speeding up each target."""
    import json

    from repro.obs.profile import DEFAULT_SPEEDUPS, whatif

    speedups = tuple(DEFAULT_SPEEDUPS)
    if args.speedups:
        try:
            speedups = tuple(
                float(token) / 100.0
                for token in args.speedups.split(",")
                if token.strip()
            )
        except ValueError:
            raise ValueError(
                f"--speedups expects comma-separated percentages, "
                f"got {args.speedups!r}"
            ) from None
    if not speedups:
        raise ValueError("--speedups names no speedups")
    # rank by the 50% column when present, else the deepest hypothetical
    rank_speedup = (
        0.50
        if any(abs(speedup - 0.50) < 1e-12 for speedup in speedups)
        else max(speedups)
    )
    roots, energy, total_energy_j, label = _profile_source(args)
    report = whatif(
        roots,
        speedups=speedups,
        energy=energy,
        total_energy_j=total_energy_j,
        rank_speedup=rank_speedup,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"what-if analysis: {label}")
        print(report.format(limit=args.limit))
    return 0


def _resolve_incident(args: argparse.Namespace):
    """Pick one bundle under ``--dir`` by id prefix or ``--latest``.

    Returns the loaded document.  Raises ValueError (exit 2) when the
    selection is ambiguous, missing, or the directory has no bundles.
    """
    from repro.obs.flight import incident_paths, load_incident

    paths = incident_paths(args.dir)
    if not paths:
        raise ValueError(f"{args.dir}: no INC_*.json incident bundles found")
    prefix = getattr(args, "incident_id", None)
    if prefix:
        matches = [
            path
            for path in paths
            if path.stem.removeprefix("INC_").startswith(prefix)
        ]
        if not matches:
            raise ValueError(
                f"{args.dir}: no incident id starts with {prefix!r} "
                f"({len(paths)} bundle(s) present)"
            )
        if len(matches) > 1:
            names = ", ".join(path.stem.removeprefix("INC_") for path in matches)
            raise ValueError(f"incident id prefix {prefix!r} is ambiguous: {names}")
        return load_incident(matches[0])
    # --latest: highest alert timestamp wins, path name as tie-break
    documents = [load_incident(path) for path in paths]
    return max(documents, key=lambda doc: (doc.get("t", 0.0), doc.get("incident_id")))


def cmd_obs_incidents_record(args: argparse.Namespace) -> int:
    """Inject a power-cap violation and record the incident bundles.

    Runs a 3-phase MAPE-K scenario on ``--machine`` where the outer
    phases optimize throughput and blow through ``--power-budget``
    while the middle phase caps power below it — so the burn-rate
    detector fires once per violating phase, each alert snapshots the
    flight recorder into an ``INC_*.json`` bundle, and the run is
    fully seeded: repeated invocations produce byte-identical bundle
    ids.
    """
    from pathlib import Path

    from repro.core.scenario import Phase, Scenario
    from repro.margot.goal import ComparisonFunction, Goal
    from repro.margot.state import (
        Constraint,
        OptimizationState,
        maximize_throughput,
    )
    from repro.obs import Observability
    from repro.obs.alerts import AlertPolicy
    from repro.obs.energy import EnergyBudget

    policy = AlertPolicy(
        budgets=(EnergyBudget("package_cap", power_w=args.power_budget),),
        burn_short_s=0.1,
        burn_long_s=0.5,
    )
    obs = Observability(alerting=True, alert_policy=policy)
    engine = obs.alerts
    assert engine is not None
    if args.baseline:
        from repro.bench import load_baseline

        engine.baseline = load_baseline(args.baseline)
    flow = _toolflow(args, obs=obs)
    app_def = _load_app(args.app)
    print(f"Building adaptive {app_def.name} on {flow.machine.name} (alerting)...")
    result = flow.build(app_def)
    app = result.adaptive
    app.add_state(
        OptimizationState("Throughput", rank=maximize_throughput()), activate=True
    )
    capped = OptimizationState("PowerCap", rank=maximize_throughput())
    capped.add_constraint(
        Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, args.power_cap))
    )
    app.add_state(capped)
    third = args.duration / 3.0
    scenario = Scenario(
        phases=[
            Phase(0.0, "Throughput"),
            Phase(third, "PowerCap"),
            Phase(2 * third, "Throughput"),
        ],
        duration_s=args.duration,
    )
    print(
        f"Injecting power-cap violation: Throughput phases exceed the "
        f"{args.power_budget:g} W budget, PowerCap holds {args.power_cap:g} W..."
    )
    records = scenario.run(app)
    print(
        f"{len(records)} invocations, {len(engine.alerts)} alert(s), "
        f"{len(engine.incidents)} incident(s), "
        f"{engine.suppressed} suppressed by cooldown"
    )
    out_dir = Path(args.out_dir)
    for bundle in engine.incidents:
        path = bundle.write(out_dir)
        offender = bundle.attribution.get("span", "?")
        print(f"  {bundle.incident_id}  t={bundle.t:7.3f}s  {bundle.alert['name']}")
        print(f"    attribution: {offender}")
        print(f"    -> {path}")
    if obs.audit is not None and obs.audit.incidents:
        print(
            f"audit log: {len(obs.audit.incidents)} incident trace(s) "
            f"cross-linked into {len(obs.audit)} adaptation entries"
        )
    if not engine.incidents:
        print("no incidents fired (nothing written)")
        return 1
    return 0


def cmd_obs_incidents_list(args: argparse.Namespace) -> int:
    """One line per bundle under ``--dir``."""
    from repro.obs.flight import incident_paths, load_incident

    paths = incident_paths(args.dir)
    if not paths:
        print(f"{args.dir}: no incident bundles")
        return 0
    print(f"{'incident id':18s} {'t':>8s} {'kernel':8s} alert")
    for path in paths:
        document = load_incident(path)
        alert = document.get("alert", {})
        print(
            f"{document.get('incident_id', '?'):18s} "
            f"{document.get('t', 0.0):8.3f} "
            f"{document.get('kernel', '?'):8s} "
            f"{alert.get('name', '?')} [{alert.get('severity', '?')}]"
        )
    return 0


def cmd_obs_incidents_show(args: argparse.Namespace) -> int:
    """Dump one bundle (JSON, schema-complete)."""
    import json

    document = _resolve_incident(args)
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def cmd_obs_incidents_report(args: argparse.Namespace) -> int:
    """Human-readable incident report with root-cause attribution."""
    document = _resolve_incident(args)
    alert = document.get("alert", {})
    attribution = document.get("attribution", {})
    counts = document.get("counts", {})
    print(f"incident {document.get('incident_id', '?')}")
    print(f"  kernel:    {document.get('kernel', '?')}")
    print(f"  fired at:  t={document.get('t', 0.0):.3f}s (virtual)")
    print(
        f"  alert:     {alert.get('name', '?')} "
        f"[{alert.get('detector', '?')}, {alert.get('severity', '?')}]"
    )
    print(f"  message:   {alert.get('message', '')}")
    print(
        "  window:    "
        + ", ".join(f"{count} {kind}" for kind, count in sorted(counts.items()))
    )
    print("  attribution:")
    print(f"    domain:  {attribution.get('domain', 'package')}")
    if "span" in attribution:
        print(f"    span:    {attribution['span']}")
    point = attribution.get("operating_point")
    if isinstance(point, dict):
        state = point.get("state") or "?"
        print(f"    state:   {state}")
    if "energy_j" in attribution:
        share = attribution.get("energy_share", 0.0)
        print(
            f"    energy:  {attribution['energy_j']:.2f} J in window "
            f"({share:.0%} of window total)"
        )
    if "diff_top" in attribution:
        print(f"    vs baseline: largest span regression {attribution['diff_top']}")
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    """Live ASCII dashboard over the metrics registry.

    With ``--from FILE.prom`` the dashboard renders a Prometheus text
    export (re-parsed every refresh, so a workload writing the file
    periodically is watchable); without it, a bench scenario runs in a
    background thread and the dashboard tracks it live.  ``--once``
    prints a single frame and exits (CI logs, tests).
    """
    from repro.obs.dashboard import live_dashboard, render_dashboard

    if args.from_file:
        from pathlib import Path

        from repro.obs.export import parse_prometheus_text

        source = Path(args.from_file)

        def frame(number: int) -> str:
            try:
                text = source.read_text()
            except OSError as error:
                raise ValueError(
                    f"{source}: cannot read metrics file ({error})"
                ) from None
            try:
                registry = parse_prometheus_text(text)
            except ValueError as error:
                raise ValueError(f"{source}: {error}") from None
            return render_dashboard(
                registry,
                width=args.width,
                frame=None if args.once else number,
            )

        if args.once:
            print(frame(0))
            return 0
        try:
            live_dashboard(frame, done=lambda: False, refresh_s=args.refresh)
        except KeyboardInterrupt:
            print()
        return 0

    import threading

    from repro.bench.scenarios import get_scenario
    from repro.obs import Observability

    scenario = get_scenario(args.scenario)
    obs = Observability(alerting=args.alerts)
    if args.once:
        scenario.runner(obs)
        print(
            render_dashboard(
                obs.metrics,
                obs.tracer,
                obs.audit,
                width=args.width,
                alerts=obs.alerts,
            )
        )
        return 0
    done = threading.Event()

    def work() -> None:
        try:
            scenario.runner(obs)
        finally:
            done.set()

    def frame(number: int) -> str:
        return render_dashboard(
            obs.metrics,
            obs.tracer,
            obs.audit,
            width=args.width,
            frame=number,
            alerts=obs.alerts,
        )

    worker = threading.Thread(target=work, daemon=True)
    worker.start()
    try:
        live_dashboard(frame, done.is_set, refresh_s=args.refresh)
    except KeyboardInterrupt:
        print()
    worker.join(timeout=5.0)
    return 0


# ---------------------------------------------------------------------------
# obs runs / lineage / query / trend: the telemetry warehouse
# ---------------------------------------------------------------------------


def _open_store(path):
    from repro.obs.store import TelemetryStore

    return TelemetryStore(path)


def _slowdown_knob(slowdowns) -> List[str]:
    """Canonical knob encoding of an injected-slowdown map."""
    return [f"{name}:{factor}" for name, factor in sorted((slowdowns or {}).items())]


def _warehouse_artifacts(obs):
    """(ArtifactBlob list, derivation edges) for one recorded run.

    Only formats `obs validate` can sniff become blobs: the Chrome
    trace, the Prometheus dump, the audit JSONL (when non-empty — the
    events validator rejects empty streams) and the folded stacks the
    trend gate's stack attribution reads back.
    """
    import tempfile
    from pathlib import Path

    from repro.obs import FlameProfile
    from repro.obs.export import (
        write_audit_jsonl,
        write_chrome_trace,
        write_prometheus,
    )
    from repro.obs.store import ArtifactBlob

    blobs = []
    derivations = []
    with tempfile.TemporaryDirectory() as tmp:
        staging = Path(tmp)
        write_chrome_trace(obs.tracer.spans, staging / "trace.json")
        blobs.append(ArtifactBlob("trace.json", (staging / "trace.json").read_bytes()))
        write_prometheus(obs.metrics, staging / "metrics.prom")
        blobs.append(
            ArtifactBlob("metrics.prom", (staging / "metrics.prom").read_bytes())
        )
        if obs.audit is not None:
            write_audit_jsonl(obs.audit, staging / "audit.jsonl")
            data = (staging / "audit.jsonl").read_bytes()
            if data.strip():
                blobs.append(ArtifactBlob("audit.jsonl", data))
    folded = FlameProfile.from_spans(obs.tracer.spans).as_folded()
    if folded.strip():
        blobs.append(ArtifactBlob("profile.folded", folded.encode()))
        derivations.append(("trace.json", "profile.folded", "collapsed"))
    return blobs, derivations


def _store_build_run(store, flow, app, result, obs, wall_s, label, slowdowns):
    identity = flow.run_identity()
    machine = str(identity.pop("machine"))
    seed = int(identity.pop("seed"))
    knobs = {**identity, "slowdowns": _slowdown_knob(slowdowns)}
    metrics = {
        "wall_s": wall_s,
        "knowledge_points": len(result.exploration.knowledge),
        "coverage": result.exploration.coverage,
        "points_evaluated": flow.engine.counters.points_evaluated,
    }
    blobs, derivations = _warehouse_artifacts(obs)
    return store.record(
        "build",
        app=app.name,
        machine=machine,
        seed=seed,
        label=label,
        source=app.source_fingerprint(),
        knobs=knobs,
        metrics=metrics,
        artifacts=blobs,
        derivations=derivations,
    )


def _record_build_run(args, store, slowdowns, label):
    from repro.obs.store import recording_observability

    obs = recording_observability(slowdowns or None)
    flow = _toolflow(args, obs=obs)
    app = _load_app(args.app)
    with obs.tracer.span(f"build:{app.name}") as root:
        result = flow.build(app)
    obs.absorb_engine(flow.engine)
    return _store_build_run(
        store, flow, app, result, obs, root.duration_s, label, slowdowns
    )


def _record_dse_run(args, store, slowdowns, label):
    from repro.dse.explorer import DesignSpaceExplorer
    from repro.dse.pareto import pareto_front
    from repro.engine.core import EvaluationEngine
    from repro.obs.store import recording_observability

    obs = recording_observability(slowdowns or None)
    app = _load_app(args.app)
    engine = EvaluationEngine(machine=getattr(args, "machine", None), obs=obs)
    explorer = DesignSpaceExplorer(
        engine.compiler,
        engine.executor,
        engine.omp,
        repetitions=args.repetitions,
        engine=engine,
    )
    seed = getattr(args, "seed", None)
    if seed is None:
        seed = 0xD5E
    with obs.tracer.span(f"dse:{app.name}") as root:
        profile = engine.profile(app)
        space = _standard_space(engine.machine)
        result = explorer.explore(profile, space, seed=seed)
    front = pareto_front(result.knowledge, [("throughput", True), ("power", False)])
    obs.absorb_engine(engine)
    metrics = {
        "wall_s": root.duration_s,
        "points_evaluated": engine.counters.points_evaluated,
        "front_size": len(front),
        "space_size": result.space_size,
    }
    knobs = {
        "repetitions": args.repetitions,
        "slowdowns": _slowdown_knob(slowdowns),
    }
    blobs, derivations = _warehouse_artifacts(obs)
    return store.record(
        "dse",
        app=app.name,
        machine=engine.machine.name,
        seed=seed,
        label=label,
        source=app.source_fingerprint(),
        knobs=knobs,
        metrics=metrics,
        artifacts=blobs,
        derivations=derivations,
    )


def _record_trace_run(args, store, slowdowns, label):
    """Record the fig5-style adaptive scenario plus its energy ledger."""
    import tempfile
    from pathlib import Path

    from repro.obs.energy import EnergyLedger, build_timeline
    from repro.obs.store import ArtifactBlob, recording_observability

    obs = recording_observability(slowdowns or None)
    result, app, records, flow = _fig5_scenario(args, obs)
    timeline = build_timeline(app, records)
    timeline.record_metrics(obs.metrics)
    ledger = EnergyLedger.from_timeline(
        timeline,
        stage_events=result.stage_events,
        idle_power_w=app.executor.idle_breakdown().totals(),
    )
    blobs, derivations = _warehouse_artifacts(obs)
    with tempfile.TemporaryDirectory() as tmp:
        path = ledger.write(Path(tmp) / "energy.json")
        blobs.append(ArtifactBlob("energy.json", path.read_bytes()))
    derivations.append(("trace.json", "energy.json", "derived"))
    identity = flow.run_identity()
    machine = str(identity.pop("machine"))
    seed = int(identity.pop("seed"))
    knobs = {
        **identity,
        "duration": args.duration,
        "slowdowns": _slowdown_knob(slowdowns),
    }
    metrics = {
        "wall_s": timeline.duration_s,
        "invocations": len(records),
        "package_j": ledger.totals_j().get("package", 0.0),
    }
    return store.record(
        "trace",
        app=args.app,
        machine=machine,
        seed=seed,
        label=label,
        source=_load_app(args.app).source_fingerprint(),
        knobs=knobs,
        metrics=metrics,
        artifacts=blobs,
        derivations=derivations,
    )


def _store_bench_result(store, result, label, slowdowns, machine=""):
    """Record one virtual-clock ScenarioResult as a ``bench`` run.

    The stored ``bench.json`` strips the two real-clock fields
    (peak RSS, ratio gauges) so the same seeded scenario always
    produces byte-identical blobs.
    """
    import dataclasses
    import tempfile
    from pathlib import Path

    from repro.bench import BenchBaseline, median, save_baseline
    from repro.obs import FlameProfile
    from repro.obs.export import write_chrome_trace
    from repro.obs.store import ArtifactBlob

    baseline = dataclasses.replace(
        BenchBaseline.from_result(result), peak_rss_kb=0, ratios={}
    )
    with tempfile.TemporaryDirectory() as tmp:
        staging = Path(tmp)
        save_baseline(baseline, staging / "bench.json")
        bench_bytes = (staging / "bench.json").read_bytes()
        write_chrome_trace(result.spans, staging / "trace.json")
        trace_bytes = (staging / "trace.json").read_bytes()
    folded = FlameProfile.from_spans(result.spans).as_folded()
    blobs = [
        ArtifactBlob("bench.json", bench_bytes),
        ArtifactBlob("trace.json", trace_bytes),
        ArtifactBlob("profile.folded", folded.encode()),
    ]
    derivations = [("trace.json", "profile.folded", "collapsed")]
    metrics = {"wall_s": median(result.wall_s)}
    for key, value in sorted(result.fingerprint.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = value
    knobs = {"repeats": result.repeats, "slowdowns": _slowdown_knob(slowdowns)}
    return store.record(
        "bench",
        machine=machine,
        scenario=result.scenario,
        label=label,
        knobs=knobs,
        metrics=metrics,
        artifacts=blobs,
        derivations=derivations,
    )


def _record_bench_run(args, store, slowdowns, label):
    from repro.bench import run_scenario
    from repro.obs.store import recording_observability

    result = run_scenario(
        args.target,
        repeats=args.repeats,
        obs_factory=lambda: recording_observability(slowdowns or None),
    )
    return _store_bench_result(
        store, result, label, slowdowns, machine=getattr(args, "machine", None) or ""
    )


_WAREHOUSE_RECORDERS = {
    "build": _record_build_run,
    "dse": _record_dse_run,
    "trace": _record_trace_run,
    "bench": _record_bench_run,
}


def cmd_obs_runs_record(args: argparse.Namespace) -> int:
    """Run one pipeline invocation under the virtual clock and record it.

    The run executes with a deterministic virtual tracer clock, so the
    run id, every metric and every artifact blob are pure functions of
    (source, machine, seed, knobs) — recording the same invocation
    twice is a no-op.  ``--inject-slowdown SPAN:FACTOR`` stretches the
    named span (CI uses this to prove the trend gate catches drift).
    """
    import contextlib
    import json

    from repro.obs.store import parse_slowdowns

    store = _open_store(args.store)
    slowdowns = parse_slowdowns(args.inject_slowdown)
    # build/dse/trace address an app; bench addresses a scenario
    args.app = args.target
    recorder = _WAREHOUSE_RECORDERS[args.kind]
    if args.json:
        # workload prose (e.g. the fig5 scenario banner) must not
        # corrupt the one-line JSON document on stdout
        with contextlib.redirect_stdout(sys.stderr):
            run_id, created = recorder(args, store, slowdowns, args.label)
    else:
        run_id, created = recorder(args, store, slowdowns, args.label)
    if args.json:
        document = {"run_id": run_id, "created": created, "kind": args.kind}
        print(json.dumps(document, sort_keys=True, separators=(",", ":")))
    elif created:
        print(f"recorded {args.kind} run {run_id} in {store.root}")
    else:
        print(f"{args.kind} run {run_id} already recorded in {store.root}")
    return 0


def _run_summary(record, pinned) -> dict:
    return {
        "run_id": record.get("run_id", ""),
        "kind": record.get("kind", ""),
        "app": record.get("app", ""),
        "scenario": record.get("scenario", ""),
        "machine": record.get("machine", ""),
        "seed": record.get("seed", 0),
        "label": record.get("label", ""),
        "artifacts": len(record.get("artifacts", ())),
        "pinned": record.get("run_id", "") in pinned,
    }


def cmd_obs_runs_list(args: argparse.Namespace) -> int:
    import json

    store = _open_store(args.store)
    pinned = store.pinned()
    summaries = [_run_summary(record, pinned) for record in store.runs()]
    if args.json:
        print(json.dumps(summaries, sort_keys=True, separators=(",", ":")))
        return 0
    print(
        f"{'run_id':16s} {'kind':6s} {'target':14s} {'machine':14s} "
        f"{'seed':>8s} {'arts':>4s} label"
    )
    for row in summaries:
        target = row["app"] or row["scenario"]
        pin_mark = "*" if row["pinned"] else ""
        print(
            f"{row['run_id']:16s} {row['kind']:6s} {target:14s} "
            f"{row['machine']:14s} {row['seed']:>8d} {row['artifacts']:>4d} "
            f"{row['label']}{pin_mark}"
        )
    print(f"{len(summaries)} run(s), {len(pinned)} pinned")
    return 0


def cmd_obs_runs_show(args: argparse.Namespace) -> int:
    import json

    store = _open_store(args.store)
    record = store.load_run(store.resolve_run(args.run_id))
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def cmd_obs_runs_pin(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    run_id = store.resolve_run(args.run_id)
    if args.unpin:
        store.unpin(run_id)
        print(f"unpinned {run_id}")
    else:
        store.pin(run_id)
        print(f"pinned {run_id}")
    return 0


def cmd_obs_runs_gc(args: argparse.Namespace) -> int:
    import json

    store = _open_store(args.store)
    summary = store.gc(keep=args.keep, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(summary, sort_keys=True, separators=(",", ":")))
        return 0
    verb = "would remove" if summary["dry_run"] else "removed"
    kept_blobs = summary["kept_blobs"]
    blobs_note = "" if kept_blobs is None else f" / {kept_blobs} blob(s)"
    print(
        f"gc: {verb} {len(summary['removed_runs'])} run(s) and "
        f"{summary['removed_blobs']} blob(s); kept {summary['kept_runs']} "
        f"run(s){blobs_note}, {len(summary['pinned'])} pinned"
    )
    if summary.get("verified"):
        print("gc: store verified (every kept artifact present and hash-clean)")
    return 0


def cmd_obs_lineage(args: argparse.Namespace) -> int:
    """Walk the provenance DAG around a run, artifact or source node."""
    import json

    from repro.obs.provenance import ProvenanceGraph

    store = _open_store(args.store)
    graph = ProvenanceGraph.from_runs(store.runs())
    node = graph.resolve(args.ref)
    if args.json:
        print(json.dumps(graph.lineage_dict(node), sort_keys=True, separators=(",", ":")))
    else:
        print(graph.ascii_tree(node))
    return 0


def cmd_obs_query(args: argparse.Namespace) -> int:
    """Filter/aggregate recorded runs with the small expression grammar."""
    import json

    from repro.obs.store import aggregate_runs, filter_runs, parse_query

    store = _open_store(args.store)
    clauses = parse_query(args.where or "")
    selected = filter_runs(store.runs(), clauses)
    if args.agg:
        document = aggregate_runs(selected, args.agg)
        if args.json:
            print(json.dumps(document, sort_keys=True, separators=(",", ":")))
        else:
            print(f"{document['agg']}: {document['value']}")
        return 0
    pinned = store.pinned()
    summaries = [_run_summary(record, pinned) for record in selected]
    if args.json:
        print(json.dumps(summaries, sort_keys=True, separators=(",", ":")))
        return 0
    for row in summaries:
        target = row["app"] or row["scenario"]
        print(
            f"{row['run_id']} {row['kind']} {target} {row['machine']} "
            f"seed={row['seed']} {row['label']}".rstrip()
        )
    print(f"{len(summaries)} run(s) matched")
    return 0


def cmd_obs_trend(args: argparse.Namespace) -> int:
    """History-aware drift gate over the warehouse (exit 3 on drift)."""
    import json

    import repro.obs.trend as trend_mod

    store = _open_store(args.store)
    records = store.runs()
    matching = [
        record
        for record in records
        if record.get("scenario") == args.target or record.get("app") == args.target
    ]
    if matching:
        scoped, metric = matching, args.metric
    else:
        # no scenario/app by that name: treat the target as a metric
        # judged across every recorded run
        scoped, metric = records, args.target
    verdict = trend_mod.trend_over_runs(
        store,
        scoped,
        args.target,
        metric=metric,
        window=args.window,
        threshold=args.threshold,
        mad_k=args.mad_k,
    )
    if args.json:
        print(json.dumps(verdict.as_dict(), sort_keys=True, separators=(",", ":")))
    else:
        print(verdict.format())
    return 3 if verdict.drift else 0


# ---------------------------------------------------------------------------
# energy: the virtual-RAPL energy observatory
# ---------------------------------------------------------------------------


def _energy_scenario(args: argparse.Namespace):
    """Run the fig5-style workload and reconstruct its energy timeline.

    Returns ``(obs, toolflow_result, app, records, timeline)``.
    """
    from repro.obs import Observability
    from repro.obs.energy import build_timeline

    obs = Observability()
    result, app, records, _ = _fig5_scenario(args, obs)
    timeline = build_timeline(app, records)
    timeline.record_metrics(obs.metrics)
    return obs, result, app, records, timeline


def _print_domain_table(title: str, totals, means, duration_s: float) -> None:
    print(title)
    print(f"  {'domain':9s} {'energy':>12s} {'mean power':>12s}")
    # totals is ordered machine-wide domains first, then any per-cluster
    # planes a heterogeneous machine adds
    for domain in totals:
        print(
            f"  {domain:9s} {totals[domain]:10.2f} J {means[domain]:10.2f} W"
        )
    print(f"  over {duration_s:.2f}s of virtual time")


def cmd_energy_report(args: argparse.Namespace) -> int:
    """Per-domain energy report with the attribution ledger."""
    import json

    from repro.obs.energy import EnergyLedger

    obs, result, app, records, timeline = _energy_scenario(args)
    idle_power = app.executor.idle_breakdown().totals()
    ledger = EnergyLedger.from_timeline(
        timeline, stage_events=result.stage_events, idle_power_w=idle_power
    )
    ledger.verify(records=records)

    if args.json:
        print(json.dumps(ledger.as_dict(), indent=2, sort_keys=True))
    else:
        print()
        _print_domain_table(
            f"energy report: {app.name} ({len(records)} invocations)",
            timeline.totals_j(),
            timeline.mean_power_w(),
            timeline.duration_s,
        )
        print()
        print("attribution ledger (operating points, most joules first):")
        package_total = ledger.totals_j()["package"]
        for entry in ledger.entries:
            joules = entry.energy_j["package"]
            share = joules / package_total if package_total > 0 else 0.0
            pin = f" @{entry.cluster}" if entry.cluster else ""
            print(
                f"  {entry.compiler:>6s} x{entry.threads:<3d} {entry.binding:7s}"
                f"{pin} {joules:10.2f} J  ({share:6.1%}, "
                f"{entry.invocations} invocations, {entry.time_s:.2f}s)"
            )
        idle_j = ledger.idle.energy_j["package"]
        if idle_j > 0:
            print(f"  {'idle floor':18s} {idle_j:10.2f} J")
        stage_j = ledger.stage_totals_j()["package"]
        if ledger.stages:
            print(
                f"  toolflow stages: {stage_j:.2f} J host-side over "
                f"{sum(s.time_s for s in ledger.stages):.2f}s "
                f"({len(ledger.stages)} stages)"
            )
        print("  conservation: domain sums match package totals (verified)")
    if args.ledger_out:
        path = ledger.write(args.ledger_out)
        print(f"Wrote energy ledger to {path}")
    return 0


def cmd_energy_timeline(args: argparse.Namespace) -> int:
    """Export the reconstructed power(t) timeline."""
    obs, _, app, records, timeline = _energy_scenario(args)
    print(
        f"timeline: {len(timeline)} segments over {timeline.duration_s:.2f}s, "
        f"peak {timeline.peak_power_w():.1f} W package"
    )
    wrote_any = False
    if args.trace_out:
        from repro.obs.export import write_chrome_trace

        counters = timeline.counter_events()
        write_chrome_trace(obs.tracer.spans, args.trace_out, counters=counters)
        print(
            f"Wrote Chrome trace to {args.trace_out} "
            f"({len(obs.tracer.spans)} spans + {len(counters)} power counters; "
            "open in Perfetto to see the power tracks)"
        )
        wrote_any = True
    if args.csv:
        rows = timeline.to_csv(args.csv)
        print(f"Wrote timeline CSV to {args.csv} ({rows} segments)")
        wrote_any = True
    if not wrote_any:
        _print_domain_table(
            f"energy timeline: {app.name}",
            timeline.totals_j(),
            timeline.mean_power_w(),
            timeline.duration_s,
        )
    return 0


def cmd_energy_slo(args: argparse.Namespace) -> int:
    """Check declared power/energy budgets; exit 3 on violation."""
    from repro.obs.energy import EnergyBudget, check_budgets

    domain = getattr(args, "budget_domain", None) or "package"
    suffix = "" if domain == "package" else f"-{domain}"
    budgets = []
    if args.power_budget is not None:
        budgets.append(
            EnergyBudget(
                f"power-{args.power_budget:g}W{suffix}",
                power_w=args.power_budget,
                domain=domain,
            )
        )
    if args.peak_power_budget is not None:
        budgets.append(
            EnergyBudget(
                f"peak-{args.peak_power_budget:g}W{suffix}",
                peak_power_w=args.peak_power_budget,
                domain=domain,
            )
        )
    if args.energy_budget is not None:
        budgets.append(
            EnergyBudget(
                f"energy-{args.energy_budget:g}J{suffix}",
                energy_j=args.energy_budget,
                domain=domain,
            )
        )
    if not budgets:
        raise ValueError(
            "declare at least one budget "
            "(--power-budget / --peak-power-budget / --energy-budget)"
        )
    obs, _, app, records, timeline = _energy_scenario(args)
    verdicts = check_budgets(timeline, budgets, metrics=obs.metrics, audit=obs.audit)
    print()
    for verdict in verdicts:
        print(verdict.message())
    if args.audit_out:
        from repro.obs.export import write_audit_jsonl

        count = write_audit_jsonl(obs.audit, args.audit_out)
        print(f"Wrote adaptation audit to {args.audit_out} ({count} entries)")
    violated = [verdict for verdict in verdicts if not verdict.ok]
    print()
    if violated:
        print(
            f"energy slo: FAIL "
            f"({len(violated)}/{len(verdicts)} budget(s) violated)"
        )
        return 3
    print(f"energy slo: OK ({len(verdicts)} budget(s) met)")
    return 0


# ---------------------------------------------------------------------------
# bench: the performance observatory
# ---------------------------------------------------------------------------


def _bench_scenario_names(args: argparse.Namespace) -> List[str]:
    """--scenario selections, or every quick scenario (--all: everything)."""
    from repro.bench import all_scenarios, get_scenario, quick_scenarios

    if args.scenario:
        # validate up front so typos fail before any scenario runs
        return [get_scenario(name).name for name in args.scenario]
    if getattr(args, "all", False):
        return [scenario.name for scenario in all_scenarios()]
    return [scenario.name for scenario in quick_scenarios()]


def cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import all_scenarios

    print(f"{'scenario':18s} {'tier':6s} description")
    for scenario in all_scenarios():
        tier = "quick" if scenario.quick else "full"
        print(f"{scenario.name:18s} {tier:6s} {scenario.description}")
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run scenarios and write ``BENCH_<scenario>.json`` baselines."""
    from pathlib import Path

    from repro.bench import (
        BenchBaseline,
        baseline_filename,
        load_baseline,
        run_scenario,
        save_baseline,
    )

    store_dir = getattr(args, "store", None)
    obs_factory = None
    if store_dir:
        # warehouse mode: run under the virtual tracer clock so the
        # recorded wall times and artifact hashes are deterministic
        from repro.obs.store import recording_observability

        obs_factory = recording_observability
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in _bench_scenario_names(args):
        result = run_scenario(name, repeats=args.repeats, obs_factory=obs_factory)
        if store_dir:
            run_id, created = _store_bench_result(
                _open_store(store_dir),
                result,
                getattr(args, "store_label", "") or "",
                {},
            )
            verb = "recorded" if created else "already recorded"
            print(f"{verb} bench run {run_id} in {store_dir}", file=sys.stderr)
        # ratio caps are hand-committed policy, never measured: when
        # regenerating over an existing baseline, carry its caps through
        ratio_limits = None
        target = out_dir / baseline_filename(name)
        if target.exists():
            try:
                ratio_limits = load_baseline(target).ratio_limits
            except ValueError:
                ratio_limits = None
        baseline = BenchBaseline.from_result(result, ratio_limits=ratio_limits)
        path = save_baseline(baseline, target)
        print(
            f"{name}: wall median {baseline.wall_s.median:.4f}s "
            f"(MAD {baseline.wall_s.mad:.4f}s, {result.repeats} repeats, "
            f"{len(baseline.stages)} span names) -> {path}"
        )
        if args.trace_out_dir:
            from repro.obs.export import write_chrome_trace

            trace_dir = Path(args.trace_out_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            trace_path = trace_dir / f"TRACE_{name}.json"
            count = write_chrome_trace(result.spans, trace_path)
            print(f"{name}: wrote {trace_path} ({count} spans)")
    return 0


def _bench_compare_reports(args: argparse.Namespace):
    """(GateReport, ScenarioResult, BenchBaseline) per selected scenario."""
    from pathlib import Path

    from repro.bench import (
        baseline_filename,
        compare_result,
        load_baseline,
        run_scenario,
    )

    baseline_dir = Path(args.baseline_dir)
    pairs = []
    for name in _bench_scenario_names(args):
        baseline = load_baseline(baseline_dir / baseline_filename(name))
        result = run_scenario(name, repeats=args.repeats)
        report = compare_result(
            baseline,
            result,
            threshold=args.threshold,
            mad_k=args.mad_k,
            min_delta_s=args.min_delta_s,
            energy_tolerance=args.energy_tolerance,
        )
        pairs.append((report, result, baseline))
    return pairs


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Informational comparison against the baselines (always exit 0)."""
    import json

    pairs = _bench_compare_reports(args)
    if args.json:
        # machine mode: one line, stable key order, no screen-scraping —
        # the same contract as `stats --json` and `obs diff --json`
        print(
            json.dumps(
                [report.as_dict() for report, _, _ in pairs],
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        return 0
    for index, (report, _, _) in enumerate(pairs):
        if index:
            print()
        print(report.format(diff_limit=args.limit))
    return 0


def cmd_bench_gate(args: argparse.Namespace) -> int:
    """The regression gate: exit 3 when any scenario regresses."""
    import json

    pairs = _bench_compare_reports(args)
    if args.out_dir:
        from pathlib import Path

        from repro.bench import BenchBaseline, baseline_filename, save_baseline
        from repro.obs.diff import format_diff

        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for report, result, baseline in pairs:
            save_baseline(
                BenchBaseline.from_result(
                    result, ratio_limits=baseline.ratio_limits
                ),
                out_dir / baseline_filename(result.scenario),
            )
            with open(out_dir / f"GATE_{result.scenario}.json", "w") as handle:
                json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            if report.diff is not None:
                with open(out_dir / f"DIFF_{result.scenario}.txt", "w") as handle:
                    handle.write(
                        format_diff(
                            report.diff,
                            limit=0,
                            label_a="base",
                            label_b="new",
                        )
                        + "\n"
                    )
    failed = []
    for index, (report, _, _) in enumerate(pairs):
        if index:
            print()
        print(report.format(diff_limit=args.limit))
        if not report.ok:
            failed.append(report.scenario)
    if getattr(args, "history_store", None):
        # history-aware mode: additionally judge each scenario's newest
        # *recorded* run against the sliding window before it in the
        # telemetry warehouse (virtual-clock runs compare only against
        # virtual-clock runs, never against this process's fresh
        # real-clock measurements)
        import repro.obs.trend as trend_mod

        store = _open_store(args.history_store)
        records = store.runs()
        for name in _bench_scenario_names(args):
            scoped = [
                record
                for record in records
                if record.get("kind") == "bench" and record.get("scenario") == name
            ]
            print()
            try:
                verdict = trend_mod.trend_over_runs(
                    store,
                    scoped,
                    name,
                    window=args.history_window,
                    threshold=args.threshold,
                    mad_k=args.mad_k,
                )
            except ValueError as error:
                print(f"history {name}: skipped ({error})")
                continue
            print(verdict.format())
            if verdict.drift:
                failed.append(f"{name} (history)")
    print()
    if failed:
        print(f"bench gate: FAIL ({', '.join(failed)} regressed)")
        return 3
    print(f"bench gate: OK ({len(pairs)} scenario(s) within thresholds)")
    return 0


def cmd_margot_header(args: argparse.Namespace) -> int:
    from repro.margot.config import load_config

    config = load_config(args.config)
    flow = _toolflow(args)
    result = flow.build(_load_app(config.kernel))
    header = result.margot_header(config.states)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(header)
        print(f"Wrote {args.out} ({len(header.splitlines())} lines)")
    else:
        print(header)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run the paper's full evaluation (Table I + Figures 3-5) in order."""
    import copy

    banner = lambda title: print("\n" + "=" * 72 + f"\n{title}\n" + "=" * 72)
    banner("Table I -- LARA weaving metrics")
    cmd_table1(args)
    banner("Figure 3 -- Pareto power/throughput distributions")
    fig3_args = copy.copy(args)
    fig3_args.apps = None
    cmd_fig3(fig3_args)
    banner("Figure 4 -- power-budget sweep (2mm)")
    fig4_args = copy.copy(args)
    fig4_args.app = "2mm"
    fig4_args.steps = 20
    cmd_fig4(fig4_args)
    banner("Figure 5 -- 300 s runtime trace (2mm)")
    fig5_args = copy.copy(args)
    fig5_args.app = "2mm"
    fig5_args.duration = 300.0
    cmd_fig5(fig5_args)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.gcc.flags import paper_custom_flags, standard_levels
    from repro.lara.metrics import strategy_loc, weave_benchmark
    from repro.polybench.suite import BENCHMARK_NAMES, load

    configs = standard_levels() + paper_custom_flags()
    print(f"Table I (strategy: {strategy_loc()} logical lines)")
    print(f"{'Benchmark':12s} {'Att':>6s} {'Act':>5s} {'O-LOC':>6s} {'W-LOC':>6s} {'D-LOC':>6s} {'Bloat':>6s}")
    for name in BENCHMARK_NAMES:
        report, _ = weave_benchmark(load(name), configs)
        print(
            f"{name:12s} {report.attributes:6d} {report.actions:5d} "
            f"{report.original_loc:6d} {report.weaved_loc:6d} "
            f"{report.delta_loc:6d} {report.bloat:6.2f}"
        )
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    from repro.dse.pareto import pareto_filter
    from repro.polybench.suite import BENCHMARK_NAMES
    from repro.viz.ascii import boxplot

    flow = _toolflow(args)
    names = args.apps.split(",") if args.apps else BENCHMARK_NAMES
    power_rows = []
    throughput_rows = []
    for name in names:
        result = flow.build(_load_app(name))
        front = pareto_filter(
            result.exploration.knowledge.points(),
            [("throughput", True), ("power", False)],
        )
        powers = np.array([p.metric("power").mean for p in front])
        throughputs = np.array([p.metric("throughput").mean for p in front])
        power_rows.append((name, powers / powers.mean()))
        throughput_rows.append((name, throughputs / throughputs.mean()))
    print("Figure 3 -- normalized POWER over the Pareto curve")
    print(boxplot(power_rows, bounds=(0.0, 2.5)))
    print("\nFigure 3 -- normalized THROUGHPUT over the Pareto curve")
    print(boxplot(throughput_rows, bounds=(0.0, 2.5)))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.margot.asrtm import ApplicationRuntimeManager
    from repro.margot.goal import ComparisonFunction, Goal
    from repro.margot.state import Constraint, OptimizationState, minimize_time

    flow = _toolflow(args)
    result = flow.build(_load_app(args.app))
    asrtm = ApplicationRuntimeManager(result.exploration.knowledge)
    goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 45.0)
    state = OptimizationState("budget", rank=minimize_time())
    state.add_constraint(Constraint(goal))
    asrtm.add_state(state)
    print(f"Figure 4 -- minimize exec time of {args.app} under a power budget")
    print(f"{'Budget[W]':>9s} {'Exec[ms]':>9s} {'Thr':>4s} {'Bind':>6s}  Compiler")
    for budget in np.linspace(45.0, 140.0, args.steps):
        goal.value = float(budget)
        point = asrtm.update()
        print(
            f"{budget:9.1f} {point.metric('time').mean * 1e3:9.1f} "
            f"{point.knob('threads'):4d} {str(point.knob('binding')):>6s}  "
            f"{point.knob('compiler')}"
        )
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.core.scenario import Phase, Scenario
    from repro.margot.state import (
        OptimizationState,
        maximize_throughput,
        maximize_throughput_per_watt_squared,
    )
    from repro.viz.ascii import timeseries

    flow = _toolflow(args)
    result = flow.build(_load_app(args.app))
    app = result.adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    third = args.duration / 3.0
    scenario = Scenario(
        phases=[
            Phase(0.0, "Thr/W^2"),
            Phase(third, "Throughput"),
            Phase(2 * third, "Thr/W^2"),
        ],
        duration_s=args.duration,
    )
    records = scenario.run(app)
    times = [r.timestamp for r in records]
    print(timeseries(times, [r.power_w for r in records], title="Power [W]"))
    print()
    print(timeseries(times, [r.time_s * 1e3 for r in records], title="Exec time [ms]"))
    print()
    print(timeseries(times, [float(r.threads) for r in records], title="OMP threads"))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="socrates",
        description="SOCRATES reproduction: compiler + runtime autotuning toolchain",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list benchmarks").set_defaults(func=cmd_list)

    p = subparsers.add_parser("features", help="Milepost features of a kernel")
    _add_app_argument(p)
    p.set_defaults(func=cmd_features)

    p = subparsers.add_parser("predict", help="COBAYN flag predictions")
    _add_app_argument(p)
    p.add_argument("-k", type=int, default=4, help="number of combinations")
    p.set_defaults(func=cmd_predict)

    p = subparsers.add_parser("weave", help="weave and report Table I metrics")
    _add_app_argument(p)
    p.add_argument("--source", action="store_true", help="print the weaved source")
    p.set_defaults(func=cmd_weave)

    p = subparsers.add_parser("build", help="run the full toolflow")
    _add_app_argument(p)
    _add_machine_argument(p)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--oplist", help="write the knowledge base to this JSON file")
    p.add_argument("--source-out", help="write the adaptive source to this file")
    p.add_argument(
        "--stage-report",
        action="store_true",
        help="print per-stage telemetry (wall time, cache hits) as JSON",
    )
    p.add_argument(
        "--workers",
        type=int,
        help="evaluate design points on a process pool of this size",
    )
    p.add_argument(
        "--trace-out",
        help="write the build's span tree as Chrome trace_event JSON",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of prose",
    )
    _add_store_arguments(p)
    p.set_defaults(func=cmd_build)

    p = subparsers.add_parser(
        "stats", help="build an app and print stage/cache telemetry as JSON"
    )
    _add_app_argument(p)
    _add_machine_argument(p)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument(
        "--workers",
        type=int,
        help="evaluate design points on a process pool of this size",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="single-line JSON with stable key order (for scripts)",
    )
    p.set_defaults(func=cmd_stats)

    p = subparsers.add_parser("trace", help="run a scenario from a margot config")
    p.add_argument("config", help="JSON configuration (see repro.margot.config)")
    _add_machine_argument(p)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--csv", help="write the trace to this CSV file")
    p.add_argument(
        "--trace-out",
        help="write the build+scenario span tree as Chrome trace_event JSON",
    )
    p.add_argument(
        "--audit-out",
        help="write the adaptation audit log as JSONL",
    )
    _add_store_arguments(p)
    p.set_defaults(func=cmd_trace)

    p = subparsers.add_parser("profiles", help="workload profiles of all benchmarks")
    p.set_defaults(func=cmd_profiles)

    p = subparsers.add_parser("loocv", help="COBAYN leave-one-out evaluation")
    _add_machine_argument(p)
    p.add_argument("--apps", help="comma-separated subset (default: all twelve)")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("--threads", help="unused placeholder for symmetry")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_loocv)

    p = subparsers.add_parser(
        "run", help="interpret a benchmark source at a tiny dataset"
    )
    _add_app_argument(p)
    p.add_argument("--size", type=int, default=8, help="dimension override")
    p.add_argument("--weaved", action="store_true", help="run the weaved source")
    p.add_argument("--version", type=int, default=0, help="clone to dispatch (with --weaved)")
    p.add_argument(
        "--trace-out",
        help="write parse/weave/interpret spans as Chrome trace_event JSON",
    )
    p.set_defaults(func=cmd_run)

    p = subparsers.add_parser(
        "check",
        help="static analysis: OpenMP race lint + weave verification (exit 0/2/3)",
    )
    p.add_argument(
        "app", nargs="?", help="benchmark name (see `socrates list`)"
    )
    p.add_argument(
        "--all", action="store_true", help="check every benchmark in the suite"
    )
    p.add_argument(
        "--source", metavar="FILE", help="lint an arbitrary C file (race rules only)"
    )
    p.add_argument(
        "--pristine-only",
        action="store_true",
        help="skip the weave + weave-verifier pass",
    )
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true", help="emit one JSON report document"
    )
    fmt.add_argument(
        "--sarif", action="store_true", help="emit a SARIF 2.1.0 document"
    )
    p.add_argument("--out", help="write the JSON/SARIF document to this file")
    p.add_argument(
        "--prune-plan",
        metavar="FILE",
        help="also build the static lattice prune plan and write it as JSON",
    )
    _add_machine_argument(p)
    p.add_argument(
        "--trace-out",
        help="write analysis spans as Chrome trace_event JSON",
    )
    p.add_argument(
        "--audit-out",
        help="write per-diagnostic check records as JSONL",
    )
    p.add_argument(
        "--metrics-out",
        help="write socrates_check_diagnostics_total counters as Prometheus text",
    )
    p.set_defaults(func=cmd_check)

    p = subparsers.add_parser(
        "dse",
        help="one seeded design-space exploration, optionally statically pruned",
    )
    _add_app_argument(p)
    _add_machine_argument(p)
    p.add_argument(
        "--prune",
        action="store_true",
        help="build the static prune plan and skip masked lattice points",
    )
    p.add_argument(
        "--prune-plan",
        metavar="FILE",
        help="load a prune plan written by `socrates check --prune-plan`",
    )
    p.add_argument("--seed", type=lambda s: int(s, 0), default=0xD5E)
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument(
        "--verify-front",
        action="store_true",
        help="also run unpruned and fail unless both Pareto fronts are bit-identical",
    )
    p.add_argument("--json", action="store_true", help="emit a JSON document")
    p.add_argument(
        "--trace-out",
        help="write engine/DSE spans as Chrome trace_event JSON",
    )
    p.add_argument(
        "--audit-out",
        help="write the audit log (one record per pruned point) as JSONL",
    )
    p.add_argument(
        "--metrics-out",
        help="write engine counters as Prometheus text",
    )
    _add_store_arguments(p)
    p.set_defaults(func=cmd_dse)

    p = subparsers.add_parser(
        "obs",
        help="observability: export/validate artifacts, telemetry warehouse "
        "(runs/lineage/query/trend), flame graphs, dashboard",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "export", help="build + fig5-style scenario, export every obs format"
    )
    _add_app_argument(p)
    _add_machine_argument(p)
    p.add_argument("--out-dir", default="obs-out", help="output directory")
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument(
        "--workers",
        type=int,
        help="evaluate design points on a process pool of this size",
    )
    p.set_defaults(func=cmd_obs_export)
    p = obs_sub.add_parser(
        "validate",
        help="validate exported artifacts or whole directories/stores "
        "(.json traces/ledgers/records, .jsonl events, .prom metrics, .folded stacks)",
    )
    p.add_argument(
        "files",
        nargs="+",
        help="artifact files, or directories to walk recursively",
    )
    p.set_defaults(func=cmd_obs_validate)

    p = obs_sub.add_parser(
        "runs",
        help="telemetry warehouse: record, list, inspect, pin and GC run records",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    p = runs_sub.add_parser(
        "record",
        help="run one pipeline invocation under the virtual clock and record it",
    )
    p.add_argument(
        "kind",
        choices=("build", "dse", "trace", "bench"),
        help="which pipeline invocation to run and record",
    )
    p.add_argument(
        "target", help="app name (build/dse/trace) or bench scenario name"
    )
    p.add_argument(
        "--store", required=True, metavar="DIR", help="warehouse directory"
    )
    p.add_argument(
        "--label",
        default="",
        help="label mixed into the run identity (distinguishes otherwise "
        "identical runs, e.g. history points r1..r5)",
    )
    p.add_argument(
        "--seed",
        type=lambda s: int(s, 0),
        default=None,
        help="toolflow/DSE seed override (default: each stage's own seed)",
    )
    _add_machine_argument(p)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument(
        "--repeats", type=int, default=1, help="bench scenario repeats"
    )
    p.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="virtual seconds of the fig5-style scenario (trace kind)",
    )
    p.add_argument(
        "--inject-slowdown",
        action="append",
        metavar="SPAN:FACTOR",
        help="stretch the named span by FACTOR >= 1.0 under the virtual "
        "clock (repeatable; CI uses this to prove the trend gate trips)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit one {run_id, created, kind} line"
    )
    p.set_defaults(func=cmd_obs_runs_record)
    p = runs_sub.add_parser("list", help="list recorded runs in journal order")
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument("--json", action="store_true", help="emit one JSON line")
    p.set_defaults(func=cmd_obs_runs_list)
    p = runs_sub.add_parser("show", help="dump one run record as JSON")
    p.add_argument("run_id", help="run id (unambiguous prefix ok)")
    p.add_argument("--store", required=True, metavar="DIR")
    p.set_defaults(func=cmd_obs_runs_show)
    p = runs_sub.add_parser(
        "pin", help="protect a run (and everything it reaches) from gc"
    )
    p.add_argument("run_id", help="run id (unambiguous prefix ok)")
    p.add_argument("--store", required=True, metavar="DIR")
    p.set_defaults(func=cmd_obs_runs_pin, unpin=False)
    p = runs_sub.add_parser("unpin", help="drop a run's gc protection")
    p.add_argument("run_id", help="run id (unambiguous prefix ok)")
    p.add_argument("--store", required=True, metavar="DIR")
    p.set_defaults(func=cmd_obs_runs_pin, unpin=True)
    p = runs_sub.add_parser(
        "gc",
        help="retention sweep: drop old unpinned runs and orphan blobs, "
        "then verify the store",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument(
        "--keep",
        type=int,
        help="keep only the N most recent unpinned runs (pinned always kept)",
    )
    p.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    p.add_argument("--json", action="store_true", help="emit one JSON line")
    p.set_defaults(func=cmd_obs_runs_gc)

    p = obs_sub.add_parser(
        "lineage",
        help="walk the provenance DAG around a run/artifact/source node",
    )
    p.add_argument(
        "ref",
        help="node reference: run:<id>, artifact:<sha>, source:<sha>, "
        "or a bare unambiguous hash prefix",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical one-line lineage document",
    )
    p.set_defaults(func=cmd_obs_lineage)

    p = obs_sub.add_parser(
        "query",
        help="filter/aggregate recorded runs with a small expression grammar",
    )
    p.add_argument(
        "where",
        nargs="?",
        default="",
        help="filter expression, ' and '-joined clauses like "
        "\"kind=bench and machine=xeon_2s and wall_s<2.5\" (empty: all runs)",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument(
        "--agg",
        metavar="SPEC",
        help="aggregate instead of listing: count, or median:|mean:|min:|"
        "max:|sum:<metric>",
    )
    p.add_argument("--json", action="store_true", help="emit one JSON line")
    p.set_defaults(func=cmd_obs_query)

    p = obs_sub.add_parser(
        "trend",
        help="median+MAD drift gate over recorded history (exit 3 on drift)",
    )
    p.add_argument(
        "target",
        help="scenario or app name (judged on --metric), or a bare metric "
        "name judged across all recorded runs",
    )
    p.add_argument("--store", required=True, metavar="DIR")
    p.add_argument(
        "--metric", default="wall_s", help="metric to judge (default: wall_s)"
    )
    p.add_argument(
        "--window",
        type=int,
        default=5,
        help="sliding window of historical runs the latest is judged against",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative drift threshold (fraction of the history median)",
    )
    p.add_argument(
        "--mad-k",
        type=float,
        default=6.0,
        help="MAD multiplier absorbing the history's own jitter",
    )
    p.add_argument("--json", action="store_true", help="emit one JSON line")
    p.set_defaults(func=cmd_obs_trend)
    p = obs_sub.add_parser(
        "diff", help="span-level diff of two Chrome trace exports"
    )
    p.add_argument("trace_a", help="baseline trace (Chrome trace_event JSON)")
    p.add_argument("trace_b", help="fresh trace to compare against it")
    p.add_argument(
        "--limit", type=int, default=20, help="rows to print (0 = all)"
    )
    p.add_argument(
        "--show-unchanged",
        action="store_true",
        help="also list span names with identical totals",
    )
    p.add_argument("--json", action="store_true", help="emit the diff as JSON")
    p.set_defaults(func=cmd_obs_diff)

    def _add_profile_source_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "app",
            nargs="?",
            help="benchmark name to build + run adaptively (see `socrates list`)",
        )
        _add_machine_argument(p)
        p.add_argument(
            "--duration",
            type=float,
            default=10.0,
            help="virtual seconds of the fig5-style scenario (APP source)",
        )
        p.add_argument(
            "--threads", help="comma-separated thread counts for the DSE"
        )
        p.add_argument("--repetitions", type=int, default=3)
        p.add_argument(
            "--workers",
            type=int,
            help="evaluate design points on a process pool of this size",
        )
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="reconstruct from an exported Chrome trace instead of running",
        )
        p.add_argument(
            "--scenario",
            metavar="NAME",
            help="profile one run of a bench scenario (see `socrates bench list`)",
        )

    p = obs_sub.add_parser(
        "flame",
        help="virtual-time flame graph from the span trace "
        "(table/folded/JSON/SVG, stack diffs)",
    )
    _add_profile_source_arguments(p)
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument(
        "--folded", action="store_true", help="emit folded-stack text"
    )
    fmt.add_argument(
        "--json",
        action="store_true",
        help="emit the socrates-profile/1 JSON document",
    )
    fmt.add_argument(
        "--svg",
        action="store_true",
        help="emit a self-contained SVG flame graph",
    )
    p.add_argument(
        "--out", metavar="FILE", help="write the selected format to this file"
    )
    p.add_argument(
        "--out-dir",
        metavar="DIR",
        help="write profile.folded + profile.json + flame.svg here",
    )
    p.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        help="stack diff of two profiles "
        "(.folded, profile JSON, or Chrome trace each)",
    )
    p.add_argument(
        "--against-baseline",
        metavar="BENCH.json",
        help="stack diff of this run against a committed bench baseline",
    )
    p.add_argument(
        "--limit", type=int, default=20, help="table/diff rows to print (0 = all)"
    )
    p.set_defaults(func=cmd_obs_flame)

    p = obs_sub.add_parser(
        "whatif",
        help="causal what-if: replay the trace with virtual speedups, "
        "rank targets by end-to-end payoff",
    )
    _add_profile_source_arguments(p)
    p.add_argument(
        "--speedups",
        metavar="PCT,PCT,...",
        help="hypothetical speedups in percent (default: 10,25,50,75)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the ranked table as JSON"
    )
    p.add_argument(
        "--limit", type=int, default=15, help="targets to print (0 = all)"
    )
    p.set_defaults(func=cmd_obs_whatif)

    p = obs_sub.add_parser(
        "top", help="live ASCII dashboard of the metrics registry"
    )
    p.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE.prom",
        help="render a Prometheus text export instead of running a workload",
    )
    p.add_argument(
        "--scenario",
        default="adaptation_loop",
        help="bench scenario to run live (ignored with --from)",
    )
    p.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    p.add_argument(
        "--refresh", type=float, default=1.0, help="seconds between redraws"
    )
    p.add_argument("--width", type=int, default=72)
    p.add_argument(
        "--alerts",
        action="store_true",
        help="run the scenario with streaming SLO alerting and show the alerts panel",
    )
    p.set_defaults(func=cmd_obs_top)

    p = obs_sub.add_parser(
        "incidents",
        help="flight-recorder incident pipeline: record, list, inspect bundles",
    )
    incidents_sub = p.add_subparsers(dest="incidents_command", required=True)
    p = incidents_sub.add_parser(
        "record",
        help="inject a power-cap violation and write INC_*.json bundles",
    )
    p.add_argument(
        "app",
        nargs="?",
        default="mvt",
        help="benchmark name (default: mvt; see `socrates list`)",
    )
    _add_machine_argument(p)
    p.set_defaults(machine="biglittle_8p8e")
    p.add_argument(
        "--duration",
        type=float,
        default=3.0,
        help="virtual seconds of the 3-phase scenario",
    )
    p.add_argument(
        "--power-budget",
        type=float,
        default=40.0,
        help="package power budget in W the Throughput phases violate",
    )
    p.add_argument(
        "--power-cap",
        type=float,
        default=22.0,
        help="power constraint in W of the compliant PowerCap state",
    )
    p.add_argument(
        "--baseline",
        metavar="BENCH.json",
        help="bench baseline for span-diff attribution inside the bundles",
    )
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=2)
    p.add_argument("--out-dir", default="incidents", help="bundle output directory")
    p.set_defaults(func=cmd_obs_incidents_record)
    p = incidents_sub.add_parser("list", help="list recorded incident bundles")
    p.add_argument("--dir", default="incidents", help="bundle directory")
    p.set_defaults(func=cmd_obs_incidents_list)
    p = incidents_sub.add_parser("show", help="dump one bundle as JSON")
    p.add_argument("incident_id", help="incident id (unambiguous prefix ok)")
    p.add_argument("--dir", default="incidents", help="bundle directory")
    p.set_defaults(func=cmd_obs_incidents_show)
    p = incidents_sub.add_parser(
        "report", help="human-readable report with root-cause attribution"
    )
    p.add_argument(
        "incident_id",
        nargs="?",
        help="incident id prefix (omit for --latest behavior)",
    )
    p.add_argument(
        "--latest",
        action="store_true",
        help="report the most recent incident (default when no id given)",
    )
    p.add_argument("--dir", default="incidents", help="bundle directory")
    p.set_defaults(func=cmd_obs_incidents_report)

    p = subparsers.add_parser(
        "energy",
        help="virtual-RAPL energy observatory: report, timeline, budget SLOs",
    )
    energy_sub = p.add_subparsers(dest="energy_command", required=True)

    def _add_energy_scenario_args(p: argparse.ArgumentParser) -> None:
        _add_app_argument(p)
        _add_machine_argument(p)
        p.add_argument(
            "--duration",
            type=float,
            default=30.0,
            help="virtual seconds of the fig5-style scenario",
        )
        p.add_argument("--threads", help="comma-separated thread counts for the DSE")
        p.add_argument("--repetitions", type=int, default=3)
        p.add_argument(
            "--workers",
            type=int,
            help="evaluate design points on a process pool of this size",
        )

    p = energy_sub.add_parser(
        "report",
        help="per-domain energy totals and the operating-point attribution ledger",
    )
    _add_energy_scenario_args(p)
    p.add_argument("--json", action="store_true", help="emit the ledger as JSON")
    p.add_argument(
        "--ledger-out",
        metavar="FILE.json",
        help="write the socrates-energy/1 ledger document here",
    )
    p.set_defaults(func=cmd_energy_report)
    p = energy_sub.add_parser(
        "timeline",
        help="reconstructed power(t): Chrome counter tracks and/or CSV",
    )
    _add_energy_scenario_args(p)
    p.add_argument(
        "--trace-out",
        metavar="FILE.json",
        help="Chrome trace with spans + per-domain power counter tracks",
    )
    p.add_argument(
        "--csv", metavar="FILE.csv", help="write the step timeline as CSV"
    )
    p.set_defaults(func=cmd_energy_timeline)
    p = energy_sub.add_parser(
        "slo",
        help="check power/energy budgets over the scenario (exit 3 on violation)",
    )
    _add_energy_scenario_args(p)
    p.add_argument(
        "--power-budget",
        type=float,
        metavar="WATTS",
        help="cap on the time-averaged package power (Fig. 4 sweep values)",
    )
    p.add_argument(
        "--peak-power-budget",
        type=float,
        metavar="WATTS",
        help="cap on the instantaneous package power of any segment",
    )
    p.add_argument(
        "--energy-budget",
        type=float,
        metavar="JOULES",
        help="cap on the total package energy",
    )
    p.add_argument(
        "--budget-domain",
        metavar="DOMAIN",
        help="power plane the budgets apply to (default: package; "
        "per-cluster planes like P:package work on heterogeneous machines)",
    )
    p.add_argument(
        "--audit-out",
        metavar="FILE.jsonl",
        help="write the adaptation audit (with SLO context) here",
    )
    p.set_defaults(func=cmd_energy_slo)

    p = subparsers.add_parser(
        "bench",
        help="performance observatory: scenario baselines and the regression gate",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def _add_bench_selection(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scenario",
            action="append",
            help="scenario name (repeatable; default: every quick scenario)",
        )
        p.add_argument(
            "--all",
            action="store_true",
            help="select every scenario, including the slow ones",
        )
        p.add_argument(
            "--repeats", type=int, default=3, help="repeats per scenario"
        )

    def _add_gate_knobs(p: argparse.ArgumentParser) -> None:
        from repro.bench.gate import (
            DEFAULT_ENERGY_TOLERANCE,
            DEFAULT_MAD_K,
            DEFAULT_MIN_DELTA_S,
            DEFAULT_THRESHOLD,
        )

        p.add_argument(
            "--baseline-dir",
            default="benchmarks/baselines",
            help="directory holding the committed BENCH_<scenario>.json files",
        )
        p.add_argument(
            "--threshold",
            type=float,
            default=DEFAULT_THRESHOLD,
            help="relative regression threshold (fraction of the baseline median)",
        )
        p.add_argument(
            "--mad-k",
            type=float,
            default=DEFAULT_MAD_K,
            help="MAD multiplier absorbing the scenario's measured jitter",
        )
        p.add_argument(
            "--min-delta-s",
            type=float,
            default=DEFAULT_MIN_DELTA_S,
            help="absolute floor in seconds below which deltas never regress",
        )
        p.add_argument(
            "--energy-tolerance",
            type=float,
            default=DEFAULT_ENERGY_TOLERANCE,
            help="relative tolerance for the baseline's energy columns",
        )
        p.add_argument(
            "--limit", type=int, default=15, help="trace-diff rows to print"
        )

    p = bench_sub.add_parser("list", help="list the registered scenarios")
    p.set_defaults(func=cmd_bench_list)
    p = bench_sub.add_parser(
        "run", help="run scenarios and write BENCH_<scenario>.json baselines"
    )
    _add_bench_selection(p)
    p.add_argument(
        "--out-dir", default=".", help="where to write the baseline files"
    )
    p.add_argument(
        "--trace-out-dir",
        help="also write each scenario's Chrome trace as TRACE_<scenario>.json",
    )
    _add_store_arguments(p)
    p.set_defaults(func=cmd_bench_run)
    p = bench_sub.add_parser(
        "compare",
        help="re-run scenarios and report against the baselines (always exit 0)",
    )
    _add_bench_selection(p)
    _add_gate_knobs(p)
    p.add_argument("--json", action="store_true", help="emit the reports as JSON")
    p.set_defaults(func=cmd_bench_compare)
    p = bench_sub.add_parser(
        "gate",
        help="the regression gate: exit 3 when any scenario regresses",
    )
    _add_bench_selection(p)
    _add_gate_knobs(p)
    p.add_argument(
        "--out-dir",
        help="write fresh BENCH/GATE/DIFF artifacts here (CI uploads)",
    )
    p.add_argument(
        "--history-store",
        metavar="DIR",
        help="history-aware mode: additionally judge each scenario's newest "
        "recorded run in this telemetry warehouse against the window before it",
    )
    p.add_argument(
        "--history-window",
        type=int,
        default=5,
        help="sliding window of recorded runs for --history-store",
    )
    p.set_defaults(func=cmd_bench_gate)

    p = subparsers.add_parser(
        "margot-header", help="generate margot.h from a margot config"
    )
    p.add_argument("config", help="JSON configuration (see repro.margot.config)")
    p.add_argument("--out", help="write the header to this file")
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_margot_header)

    p = subparsers.add_parser("table1", help="regenerate Table I")
    p.set_defaults(func=cmd_table1)

    p = subparsers.add_parser(
        "experiments", help="run the paper's full evaluation (Table I + Figs 3-5)"
    )
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_experiments)

    p = subparsers.add_parser("fig3", help="regenerate Figure 3")
    _add_machine_argument(p)
    p.add_argument("--apps", help="comma-separated subset of benchmarks")
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_fig3)

    p = subparsers.add_parser("fig4", help="regenerate Figure 4")
    _add_machine_argument(p)
    p.add_argument("--app", default="2mm")
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_fig4)

    p = subparsers.add_parser("fig5", help="regenerate Figure 5")
    _add_machine_argument(p)
    p.add_argument("--app", default="2mm")
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--threads", help="comma-separated thread counts for the DSE")
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_fig5)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
