"""Polybench dataset presets (MINI .. EXTRALARGE).

Polybench/C ships five dataset sizes per benchmark, selected at compile
time through ``-DMINI_DATASET`` etc.  The tables below follow the
Polybench 4.2 headers for the common sizes; the suite's default in this
reproduction (the values baked into the benchmark sources) is LARGE,
matching the paper's evaluation platform scale.  A few EXTRALARGE
entries are approximated as 2x LARGE where the original headers
diverge — they serve scaling experiments, not Table-value fidelity.

Use together with
:func:`repro.polybench.workload.profile_kernel`::

    profile = profile_kernel(app, size_overrides=dataset_sizes("2mm", "MEDIUM"))
"""

from __future__ import annotations

from typing import Dict, List, Mapping

PRESETS = ("MINI", "SMALL", "MEDIUM", "LARGE", "EXTRALARGE")

DATASETS: Mapping[str, Mapping[str, Dict[str, int]]] = {
    "2mm": {
        "MINI": {"NI": 16, "NJ": 18, "NK": 22, "NL": 24},
        "SMALL": {"NI": 40, "NJ": 50, "NK": 70, "NL": 80},
        "MEDIUM": {"NI": 180, "NJ": 190, "NK": 210, "NL": 220},
        "LARGE": {"NI": 800, "NJ": 900, "NK": 1100, "NL": 1200},
        "EXTRALARGE": {"NI": 1600, "NJ": 1800, "NK": 2200, "NL": 2400},
    },
    "3mm": {
        "MINI": {"NI": 16, "NJ": 18, "NK": 20, "NL": 22, "NM": 24},
        "SMALL": {"NI": 40, "NJ": 50, "NK": 60, "NL": 70, "NM": 80},
        "MEDIUM": {"NI": 180, "NJ": 190, "NK": 200, "NL": 210, "NM": 220},
        "LARGE": {"NI": 800, "NJ": 900, "NK": 1000, "NL": 1100, "NM": 1200},
        "EXTRALARGE": {"NI": 1600, "NJ": 1800, "NK": 2000, "NL": 2200, "NM": 2400},
    },
    "atax": {
        "MINI": {"M": 38, "N": 42},
        "SMALL": {"M": 116, "N": 124},
        "MEDIUM": {"M": 390, "N": 410},
        "LARGE": {"M": 1900, "N": 2100},
        "EXTRALARGE": {"M": 3800, "N": 4200},
    },
    "correlation": {
        "MINI": {"M": 28, "N": 32},
        "SMALL": {"M": 80, "N": 100},
        "MEDIUM": {"M": 240, "N": 260},
        "LARGE": {"M": 1200, "N": 1400},
        "EXTRALARGE": {"M": 2600, "N": 3000},
    },
    "doitgen": {
        "MINI": {"NQ": 8, "NR": 10, "NP": 12},
        "SMALL": {"NQ": 20, "NR": 25, "NP": 30},
        "MEDIUM": {"NQ": 40, "NR": 50, "NP": 60},
        "LARGE": {"NQ": 140, "NR": 150, "NP": 160},
        "EXTRALARGE": {"NQ": 220, "NR": 250, "NP": 270},
    },
    "gemver": {
        "MINI": {"N": 40},
        "SMALL": {"N": 120},
        "MEDIUM": {"N": 400},
        "LARGE": {"N": 2000},
        "EXTRALARGE": {"N": 4000},
    },
    "jacobi-2d": {
        "MINI": {"N": 30, "TSTEPS": 20},
        "SMALL": {"N": 90, "TSTEPS": 40},
        "MEDIUM": {"N": 250, "TSTEPS": 100},
        "LARGE": {"N": 1300, "TSTEPS": 500},
        "EXTRALARGE": {"N": 2800, "TSTEPS": 1000},
    },
    "mvt": {
        "MINI": {"N": 40},
        "SMALL": {"N": 120},
        "MEDIUM": {"N": 400},
        "LARGE": {"N": 2000},
        "EXTRALARGE": {"N": 4000},
    },
    "nussinov": {
        "MINI": {"N": 60},
        "SMALL": {"N": 180},
        "MEDIUM": {"N": 500},
        "LARGE": {"N": 2500},
        "EXTRALARGE": {"N": 5500},
    },
    "seidel-2d": {
        "MINI": {"N": 40, "TSTEPS": 20},
        "SMALL": {"N": 120, "TSTEPS": 40},
        "MEDIUM": {"N": 400, "TSTEPS": 100},
        "LARGE": {"N": 2000, "TSTEPS": 500},
        "EXTRALARGE": {"N": 4000, "TSTEPS": 1000},
    },
    "syr2k": {
        "MINI": {"M": 20, "N": 30},
        "SMALL": {"M": 60, "N": 80},
        "MEDIUM": {"M": 200, "N": 240},
        "LARGE": {"M": 1000, "N": 1200},
        "EXTRALARGE": {"M": 2000, "N": 2600},
    },
    "syrk": {
        "MINI": {"M": 20, "N": 30},
        "SMALL": {"M": 60, "N": 80},
        "MEDIUM": {"M": 200, "N": 240},
        "LARGE": {"M": 1000, "N": 1200},
        "EXTRALARGE": {"M": 2000, "N": 2600},
    },
}


def dataset_sizes(app_name: str, preset: str) -> Dict[str, int]:
    """Dimension macros of ``app_name`` at dataset ``preset``.

    Raises ``KeyError`` with the valid options on unknown inputs.
    """
    try:
        presets = DATASETS[app_name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {app_name!r}; valid: {sorted(DATASETS)}"
        ) from None
    preset = preset.upper()
    try:
        return dict(presets[preset])
    except KeyError:
        raise KeyError(f"unknown preset {preset!r}; valid: {PRESETS}") from None


def preset_names() -> List[str]:
    return list(PRESETS)
