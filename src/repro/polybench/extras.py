"""Extra (non-Table-I) applications exercising multi-kernel weaving.

The paper's methodology "targets applications with one or more kernels
representing different phases of the computation"; the twelve
evaluation benchmarks all expose one kernel, so this module provides a
two-phase application — a gemver-style update followed by an
atax-style solve — used by tests and examples to exercise the
multi-kernel path of the LARA strategies (per-kernel clones, wrappers
and call rewrites in one weaving run).

Not registered in :mod:`repro.polybench.suite`: Table I and Figures
3-5 stay exactly the paper's twelve benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, init_vector, scaled

SIZES = {"N": 1500}

SOURCE = r"""
/* two_phase.c: rank-1 update phase followed by a normal-equations phase. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 1500
#define DATA_TYPE double

static DATA_TYPE A[N][N];
static DATA_TYPE u[N];
static DATA_TYPE v[N];
static DATA_TYPE x[N];
static DATA_TYPE y[N];
static DATA_TYPE tmp[N];

static void init_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
  {
    u[i] = (DATA_TYPE)((i + 1) % n) / n;
    v[i] = (DATA_TYPE)((i + 2) % n) / n;
    x[i] = (DATA_TYPE)((i + 3) % n) / n;
    for (j = 0; j < n; j++)
      A[i][j] = (DATA_TYPE)(i * j % n) / n;
  }
}

void kernel_update(int n)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = A[i][j] + u[i] * v[j];
}

void kernel_solve(int n)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
  {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++)
      tmp[i] += A[i][j] * x[j];
  }
#pragma omp parallel for private(i)
  for (j = 0; j < n; j++)
  {
    y[j] = 0.0;
    for (i = 0; i < n; i++)
      y[j] += A[i][j] * tmp[i];
  }
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_update(n);
  kernel_solve(n);
  if (argc > 42)
    fprintf(stderr, "%f\n", y[0]);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    return {
        "A": init_matrix(rng, n, n),
        "u": init_vector(rng, n),
        "v": init_vector(rng, n),
        "x": init_vector(rng, n),
    }


def reference(inputs: Arrays) -> Arrays:
    a_hat = inputs["A"] + np.outer(inputs["u"], inputs["v"])
    tmp = a_hat @ inputs["x"]
    y = a_hat.T @ tmp
    return {"A": a_hat, "tmp": tmp, "y": y}


TWO_PHASE = BenchmarkApp(
    name="two-phase",
    source=SOURCE,
    kernels=("kernel_update", "kernel_solve"),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="extras/multi-kernel",
)
