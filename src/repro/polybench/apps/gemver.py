"""gemver: vector multiplication and matrix addition (BLAS-like)."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, init_vector, scaled

SIZES = {"N": 2000}

SOURCE = r"""
/* gemver.c: A = A + u1.v1^T + u2.v2^T; x = x + beta.A^T.y + z; w = alpha.A.x. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 2000
#define DATA_TYPE double

static DATA_TYPE A[N][N];
static DATA_TYPE u1[N];
static DATA_TYPE v1[N];
static DATA_TYPE u2[N];
static DATA_TYPE v2[N];
static DATA_TYPE w[N];
static DATA_TYPE x[N];
static DATA_TYPE y[N];
static DATA_TYPE z[N];

static void init_array(int n, DATA_TYPE *alpha, DATA_TYPE *beta)
{
  int i, j;
  DATA_TYPE fn;
  fn = (DATA_TYPE)n;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < n; i++)
  {
    u1[i] = i;
    u2[i] = ((i + 1) / fn) / 2.0;
    v1[i] = ((i + 1) / fn) / 4.0;
    v2[i] = ((i + 1) / fn) / 6.0;
    y[i] = ((i + 1) / fn) / 8.0;
    z[i] = ((i + 1) / fn) / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < n; j++)
      A[i][j] = (DATA_TYPE)(i * j % n) / n;
  }
}

static void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf ", w[i]);
  fprintf(stderr, "\n");
}

void kernel_gemver(int n, DATA_TYPE alpha, DATA_TYPE beta)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
#pragma omp parallel for
  for (i = 0; i < n; i++)
    x[i] = x[i] + z[i];
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
}

int main(int argc, char **argv)
{
  int n = N;
  DATA_TYPE alpha;
  DATA_TYPE beta;
  init_array(n, &alpha, &beta);
  kernel_gemver(n, alpha, beta);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    return {
        "alpha": np.float64(1.5),
        "beta": np.float64(1.2),
        "A": init_matrix(rng, n, n),
        "u1": init_vector(rng, n),
        "v1": init_vector(rng, n),
        "u2": init_vector(rng, n),
        "v2": init_vector(rng, n),
        "x": np.zeros(n),
        "w": np.zeros(n),
        "y": init_vector(rng, n),
        "z": init_vector(rng, n),
    }


def reference(inputs: Arrays) -> Arrays:
    a_hat = (
        inputs["A"]
        + np.outer(inputs["u1"], inputs["v1"])
        + np.outer(inputs["u2"], inputs["v2"])
    )
    x = inputs["x"] + inputs["beta"] * (a_hat.T @ inputs["y"]) + inputs["z"]
    w = inputs["w"] + inputs["alpha"] * (a_hat @ x)
    return {"A": a_hat, "x": x, "w": w}


APP = BenchmarkApp(
    name="gemver",
    source=SOURCE,
    kernels=("kernel_gemver",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/blas",
)
