"""syr2k: symmetric rank-2k update, C := alpha*(A.B^T + B.A^T) + beta*C."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, scaled

SIZES = {"M": 1000, "N": 1200}

SOURCE = r"""
/* syr2k.c: symmetric rank-2k update (lower triangular). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define M 1000
#define N 1200
#define DATA_TYPE double

static DATA_TYPE C[N][N];
static DATA_TYPE A[N][M];
static DATA_TYPE B[N][M];

static void init_array(int n, int m, DATA_TYPE *alpha, DATA_TYPE *beta)
{
  int i, j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
    {
      A[i][j] = (DATA_TYPE)((i * j + 1) % n) / n;
      B[i][j] = (DATA_TYPE)((i * j + 2) % m) / m;
    }
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      C[i][j] = (DATA_TYPE)((i * j + 3) % n) / m;
}

static void print_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", C[i][j]);
  fprintf(stderr, "\n");
}

void kernel_syr2k(int n, int m, DATA_TYPE alpha, DATA_TYPE beta)
{
  int i, j, k;
#pragma omp parallel for private(j, k)
  for (i = 0; i < n; i++)
  {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < m; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}

int main(int argc, char **argv)
{
  int n = N;
  int m = M;
  DATA_TYPE alpha;
  DATA_TYPE beta;
  init_array(n, m, &alpha, &beta);
  kernel_syr2k(n, m, alpha, beta);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    m, n = dims["M"], dims["N"]
    return {
        "alpha": np.float64(1.5),
        "beta": np.float64(1.2),
        "A": init_matrix(rng, n, m),
        "B": init_matrix(rng, n, m),
        "C": init_matrix(rng, n, n),
    }


def reference(inputs: Arrays) -> Arrays:
    alpha, beta = inputs["alpha"], inputs["beta"]
    a, b, c = inputs["A"], inputs["B"], inputs["C"].copy()
    n = c.shape[0]
    full = alpha * (a @ b.T + b @ a.T)
    lower = np.tril_indices(n)
    c_out = c.copy()
    c_out[lower] = beta * c[lower] + full[lower]
    return {"C": c_out}


APP = BenchmarkApp(
    name="syr2k",
    source=SOURCE,
    kernels=("kernel_syr2k",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/blas",
)
