"""doitgen: multiresolution analysis kernel (MADNESS)."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, scaled

SIZES = {"NQ": 140, "NR": 150, "NP": 160}

SOURCE = r"""
/* doitgen.c: multiresolution analysis kernel (MADNESS). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define NQ 140
#define NR 150
#define NP 160
#define DATA_TYPE double

static DATA_TYPE A[NR][NQ][NP];
static DATA_TYPE sum[NP];
static DATA_TYPE C4[NP][NP];

static void init_array(int nr, int nq, int np)
{
  int i, j, k;
  for (i = 0; i < nr; i++)
    for (j = 0; j < nq; j++)
      for (k = 0; k < np; k++)
        A[i][j][k] = (DATA_TYPE)((i * j + k) % np) / np;
  for (i = 0; i < np; i++)
    for (j = 0; j < np; j++)
      C4[i][j] = (DATA_TYPE)(i * j % np) / np;
}

static void print_array(int nr, int nq, int np)
{
  int i, j, k;
  for (i = 0; i < nr; i++)
    for (j = 0; j < nq; j++)
      for (k = 0; k < np; k++)
        fprintf(stderr, "%0.2lf ", A[i][j][k]);
  fprintf(stderr, "\n");
}

void kernel_doitgen(int nr, int nq, int np)
{
  int r, q, p, s;
#pragma omp parallel for private(q, p, s)
  for (r = 0; r < nr; r++)
    for (q = 0; q < nq; q++)
    {
      DATA_TYPE acc[NP];
      for (p = 0; p < np; p++)
      {
        acc[p] = 0.0;
        for (s = 0; s < np; s++)
          acc[p] += A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < np; p++)
        A[r][q][p] = acc[p];
    }
}

int main(int argc, char **argv)
{
  int nr = NR;
  int nq = NQ;
  int np = NP;
  init_array(nr, nq, np);
  kernel_doitgen(nr, nq, np);
  if (argc > 42)
    print_array(nr, nq, np);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    nq, nr, npp = dims["NQ"], dims["NR"], dims["NP"]
    a = np.stack([init_matrix(rng, nq, npp, modulus=npp) for _ in range(nr)])
    return {"A": a, "C4": init_matrix(rng, npp, npp, modulus=npp)}


def reference(inputs: Arrays) -> Arrays:
    # A[r][q][p] := sum_s A[r][q][s] * C4[s][p] for every (r, q) slice
    a_out = np.einsum("rqs,sp->rqp", inputs["A"], inputs["C4"])
    return {"A": a_out}


APP = BenchmarkApp(
    name="doitgen",
    source=SOURCE,
    kernels=("kernel_doitgen",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/kernels",
)
