"""nussinov: RNA secondary-structure dynamic programming."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, scaled

SIZES = {"N": 2500}

SOURCE = r"""
/* nussinov.c: RNA folding dynamic programming (Nussinov algorithm). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 2500
#define DATA_TYPE int

static DATA_TYPE seq[N];
static DATA_TYPE table[N][N];

static DATA_TYPE max_score(DATA_TYPE s1, DATA_TYPE s2)
{
  return s1 >= s2 ? s1 : s2;
}

static DATA_TYPE match(DATA_TYPE b1, DATA_TYPE b2)
{
  return b1 + b2 == 3 ? 1 : 0;
}

static void init_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    seq[i] = (i + 1) % 4;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      table[i][j] = 0;
}

static void print_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = i; j < n; j++)
      fprintf(stderr, "%d ", table[i][j]);
  fprintf(stderr, "\n");
}

void kernel_nussinov(int n)
{
  int i, j, k;
  for (i = n - 1; i >= 0; i--)
  {
#pragma omp parallel for private(k)
    for (j = i + 1; j < n; j++)
    {
      if (j - 1 >= 0)
        table[i][j] = max_score(table[i][j], table[i][j - 1]);
      if (i + 1 < n)
        table[i][j] = max_score(table[i][j], table[i + 1][j]);
      if (j - 1 >= 0 && i + 1 < n)
      {
        if (i < j - 1)
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1] + match(seq[i], seq[j]));
        else
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1]);
      }
      for (k = i + 1; k < j; k++)
        table[i][j] = max_score(table[i][j], table[i][k] + table[k + 1][j]);
    }
  }
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_nussinov(n);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    seq = np.mod(np.arange(1, n + 1), 4).astype(np.int64)
    return {"seq": seq}


def reference(inputs: Arrays) -> Arrays:
    seq = inputs["seq"]
    n = len(seq)
    table = np.zeros((n, n), dtype=np.int64)
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            best = table[i, j]
            if j - 1 >= 0:
                best = max(best, table[i, j - 1])
            if i + 1 < n:
                best = max(best, table[i + 1, j])
            if j - 1 >= 0 and i + 1 < n:
                pair = 1 if seq[i] + seq[j] == 3 else 0
                if i < j - 1:
                    best = max(best, table[i + 1, j - 1] + pair)
                else:
                    best = max(best, table[i + 1, j - 1])
            if j > i + 1:
                split = table[i, i + 1 : j] + table[i + 2 : j + 1, j]
                if split.size:
                    best = max(best, int(split.max()))
            table[i, j] = best
    return {"table": table}


APP = BenchmarkApp(
    name="nussinov",
    source=SOURCE,
    kernels=("kernel_nussinov",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="medley",
)
