"""The twelve Polybench/C applications used in the paper's evaluation."""

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, init_vector, scaled

__all__ = ["Arrays", "BenchmarkApp", "init_matrix", "init_vector", "scaled"]
