"""mvt: matrix-vector product and transpose-product."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, init_vector, scaled

SIZES = {"N": 2000}

SOURCE = r"""
/* mvt.c: x1 = x1 + A.y1; x2 = x2 + A^T.y2. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 2000
#define DATA_TYPE double

static DATA_TYPE A[N][N];
static DATA_TYPE x1[N];
static DATA_TYPE x2[N];
static DATA_TYPE y1[N];
static DATA_TYPE y2[N];

static void init_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
  {
    x1[i] = (DATA_TYPE)(i % n) / n;
    x2[i] = (DATA_TYPE)((i + 1) % n) / n;
    y1[i] = (DATA_TYPE)((i + 3) % n) / n;
    y2[i] = (DATA_TYPE)((i + 4) % n) / n;
    for (j = 0; j < n; j++)
      A[i][j] = (DATA_TYPE)(i * j % n) / n;
  }
}

static void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf %0.2lf ", x1[i], x2[i]);
  fprintf(stderr, "\n");
}

void kernel_mvt(int n)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_mvt(n);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    return {
        "A": init_matrix(rng, n, n),
        "x1": init_vector(rng, n),
        "x2": init_vector(rng, n),
        "y1": init_vector(rng, n),
        "y2": init_vector(rng, n),
    }


def reference(inputs: Arrays) -> Arrays:
    x1 = inputs["x1"] + inputs["A"] @ inputs["y1"]
    x2 = inputs["x2"] + inputs["A"].T @ inputs["y2"]
    return {"x1": x1, "x2": x2}


APP = BenchmarkApp(
    name="mvt",
    source=SOURCE,
    kernels=("kernel_mvt",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/kernels",
)
