"""jacobi-2d: 2-D Jacobi five-point stencil over TSTEPS time steps."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, scaled

SIZES = {"N": 1300, "TSTEPS": 500}

SOURCE = r"""
/* jacobi-2d.c: 2-D Jacobi stencil over TSTEPS time steps. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 1300
#define TSTEPS 500
#define DATA_TYPE double

static DATA_TYPE A[N][N];
static DATA_TYPE B[N][N];

static void init_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
    {
      A[i][j] = ((DATA_TYPE)i * (j + 2) + 2) / n;
      B[i][j] = ((DATA_TYPE)i * (j + 3) + 3) / n;
    }
}

static void print_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", A[i][j]);
  fprintf(stderr, "\n");
}

void kernel_jacobi_2d(int tsteps, int n)
{
  int t, i, j;
  for (t = 0; t < tsteps; t++)
  {
#pragma omp parallel for private(j)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j] + A[1 + i][j] + A[i - 1][j]);
#pragma omp parallel for private(j)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j] + B[1 + i][j] + B[i - 1][j]);
  }
}

int main(int argc, char **argv)
{
  int n = N;
  int tsteps = TSTEPS;
  init_array(n);
  kernel_jacobi_2d(tsteps, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    i = np.arange(n, dtype=np.float64)[:, None]
    j = np.arange(n, dtype=np.float64)[None, :]
    a = (i * (j + 2.0) + 2.0) / n
    b = (i * (j + 3.0) + 3.0) / n
    return {"A": a, "B": b, "tsteps": np.int64(dims["TSTEPS"])}


def _relax(src: np.ndarray, dst: np.ndarray) -> None:
    dst[1:-1, 1:-1] = 0.2 * (
        src[1:-1, 1:-1]
        + src[1:-1, :-2]
        + src[1:-1, 2:]
        + src[2:, 1:-1]
        + src[:-2, 1:-1]
    )


def reference(inputs: Arrays) -> Arrays:
    a = inputs["A"].copy()
    b = inputs["B"].copy()
    for _ in range(int(inputs["tsteps"])):
        _relax(a, b)
        _relax(b, a)
    return {"A": a, "B": b}


APP = BenchmarkApp(
    name="jacobi-2d",
    source=SOURCE,
    kernels=("kernel_jacobi_2d",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="stencils",
)
