"""3mm: three matrix multiplications, G := (A*B) * (C*D)."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, scaled

SIZES = {"NI": 800, "NJ": 900, "NK": 1000, "NL": 1100, "NM": 1200}

SOURCE = r"""
/* 3mm.c: 3 matrix multiplications (E := A.B, F := C.D, G := E.F). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define NI 800
#define NJ 900
#define NK 1000
#define NL 1100
#define NM 1200
#define DATA_TYPE double

static DATA_TYPE E[NI][NJ];
static DATA_TYPE A[NI][NK];
static DATA_TYPE B[NK][NJ];
static DATA_TYPE F[NJ][NL];
static DATA_TYPE C[NJ][NM];
static DATA_TYPE D[NM][NL];
static DATA_TYPE G[NI][NL];

static void init_array(int ni, int nj, int nk, int nl, int nm)
{
  int i, j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nk; j++)
      A[i][j] = (DATA_TYPE)((i * j + 1) % ni) / (5 * ni);
  for (i = 0; i < nk; i++)
    for (j = 0; j < nj; j++)
      B[i][j] = (DATA_TYPE)((i * (j + 1) + 2) % nj) / (5 * nj);
  for (i = 0; i < nj; i++)
    for (j = 0; j < nm; j++)
      C[i][j] = (DATA_TYPE)(i * (j + 3) % nl) / (5 * nl);
  for (i = 0; i < nm; i++)
    for (j = 0; j < nl; j++)
      D[i][j] = (DATA_TYPE)((i * (j + 2) + 2) % nk) / (5 * nk);
}

static void print_array(int ni, int nl)
{
  int i, j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
      fprintf(stderr, "%0.2lf ", G[i][j]);
  fprintf(stderr, "\n");
}

void kernel_3mm(int ni, int nj, int nk, int nl, int nm)
{
  int i, j, k;
#pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nj; j++)
    {
      E[i][j] = 0.0;
      for (k = 0; k < nk; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
#pragma omp parallel for private(j, k)
  for (i = 0; i < nj; i++)
    for (j = 0; j < nl; j++)
    {
      F[i][j] = 0.0;
      for (k = 0; k < nm; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
#pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
    {
      G[i][j] = 0.0;
      for (k = 0; k < nj; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}

int main(int argc, char **argv)
{
  int ni = NI;
  int nj = NJ;
  int nk = NK;
  int nl = NL;
  int nm = NM;
  init_array(ni, nj, nk, nl, nm);
  kernel_3mm(ni, nj, nk, nl, nm);
  if (argc > 42)
    print_array(ni, nl);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    ni, nj, nk, nl, nm = dims["NI"], dims["NJ"], dims["NK"], dims["NL"], dims["NM"]
    return {
        "A": init_matrix(rng, ni, nk),
        "B": init_matrix(rng, nk, nj),
        "C": init_matrix(rng, nj, nm),
        "D": init_matrix(rng, nm, nl),
    }


def reference(inputs: Arrays) -> Arrays:
    e = inputs["A"] @ inputs["B"]
    f = inputs["C"] @ inputs["D"]
    g = e @ f
    return {"E": e, "F": f, "G": g}


APP = BenchmarkApp(
    name="3mm",
    source=SOURCE,
    kernels=("kernel_3mm",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/kernels",
)
