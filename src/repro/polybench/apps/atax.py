"""atax: matrix-transpose-vector product, y := A^T (A x)."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, init_vector, scaled

SIZES = {"M": 1900, "N": 2100}

SOURCE = r"""
/* atax.c: y := A^T.(A.x). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define M 1900
#define N 2100
#define DATA_TYPE double

static DATA_TYPE A[M][N];
static DATA_TYPE x[N];
static DATA_TYPE y[N];
static DATA_TYPE tmp[M];

static void init_array(int m, int n)
{
  int i, j;
  DATA_TYPE fn;
  fn = (DATA_TYPE)n;
  for (i = 0; i < n; i++)
    x[i] = 1.0 + (i / fn);
  for (i = 0; i < m; i++)
    for (j = 0; j < n; j++)
      A[i][j] = (DATA_TYPE)((i + j) % n) / (5 * m);
}

static void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf ", y[i]);
  fprintf(stderr, "\n");
}

void kernel_atax(int m, int n)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    y[i] = 0.0;
#pragma omp parallel for private(j)
  for (i = 0; i < m; i++)
  {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
  }
#pragma omp parallel for private(i)
  for (j = 0; j < n; j++)
    for (i = 0; i < m; i++)
      y[j] = y[j] + A[i][j] * tmp[i];
}

int main(int argc, char **argv)
{
  int m = M;
  int n = N;
  init_array(m, n);
  kernel_atax(m, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    m, n = dims["M"], dims["N"]
    return {"A": init_matrix(rng, m, n), "x": init_vector(rng, n)}


def reference(inputs: Arrays) -> Arrays:
    tmp = inputs["A"] @ inputs["x"]
    y = inputs["A"].T @ tmp
    return {"y": y, "tmp": tmp}


APP = BenchmarkApp(
    name="atax",
    source=SOURCE,
    kernels=("kernel_atax",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/kernels",
)
