"""2mm: two matrix multiplications, D := alpha*A*B*C + beta*D."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, scaled

SIZES = {"NI": 800, "NJ": 900, "NK": 1100, "NL": 1200}

SOURCE = r"""
/* 2mm.c: 2 matrix multiplications (D := alpha.A.B.C + beta.D). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define NI 800
#define NJ 900
#define NK 1100
#define NL 1200
#define DATA_TYPE double

static DATA_TYPE tmp[NI][NJ];
static DATA_TYPE A[NI][NK];
static DATA_TYPE B[NK][NJ];
static DATA_TYPE C[NJ][NL];
static DATA_TYPE D[NI][NL];

static void init_array(int ni, int nj, int nk, int nl, DATA_TYPE *alpha, DATA_TYPE *beta)
{
  int i, j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nk; j++)
      A[i][j] = (DATA_TYPE)((i * j + 1) % ni) / ni;
  for (i = 0; i < nk; i++)
    for (j = 0; j < nj; j++)
      B[i][j] = (DATA_TYPE)(i * (j + 1) % nj) / nj;
  for (i = 0; i < nj; i++)
    for (j = 0; j < nl; j++)
      C[i][j] = (DATA_TYPE)((i * (j + 3) + 1) % nl) / nl;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
      D[i][j] = (DATA_TYPE)(i * (j + 2) % nk) / nk;
}

static void print_array(int ni, int nl)
{
  int i, j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
      fprintf(stderr, "%0.2lf ", D[i][j]);
  fprintf(stderr, "\n");
}

void kernel_2mm(int ni, int nj, int nk, int nl, DATA_TYPE alpha, DATA_TYPE beta)
{
  int i, j, k;
#pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nj; j++)
    {
      tmp[i][j] = 0.0;
      for (k = 0; k < nk; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
#pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
    {
      D[i][j] *= beta;
      for (k = 0; k < nj; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}

int main(int argc, char **argv)
{
  int ni = NI;
  int nj = NJ;
  int nk = NK;
  int nl = NL;
  DATA_TYPE alpha;
  DATA_TYPE beta;
  init_array(ni, nj, nk, nl, &alpha, &beta);
  kernel_2mm(ni, nj, nk, nl, alpha, beta);
  if (argc > 42)
    print_array(ni, nl);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    ni, nj, nk, nl = dims["NI"], dims["NJ"], dims["NK"], dims["NL"]
    return {
        "alpha": np.float64(1.5),
        "beta": np.float64(1.2),
        "A": init_matrix(rng, ni, nk),
        "B": init_matrix(rng, nk, nj),
        "C": init_matrix(rng, nj, nl),
        "D": init_matrix(rng, ni, nl),
    }


def reference(inputs: Arrays) -> Arrays:
    tmp = inputs["alpha"] * (inputs["A"] @ inputs["B"])
    d_out = inputs["beta"] * inputs["D"] + tmp @ inputs["C"]
    return {"D": d_out, "tmp": tmp}


APP = BenchmarkApp(
    name="2mm",
    source=SOURCE,
    kernels=("kernel_2mm",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="linear-algebra/kernels",
)
