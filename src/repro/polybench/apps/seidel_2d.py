"""seidel-2d: 2-D Gauss-Seidel nine-point stencil over TSTEPS steps."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, scaled

SIZES = {"N": 2000, "TSTEPS": 500}

SOURCE = r"""
/* seidel-2d.c: 2-D Gauss-Seidel stencil over TSTEPS time steps. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define N 2000
#define TSTEPS 500
#define DATA_TYPE double

static DATA_TYPE A[N][N];

static void init_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = ((DATA_TYPE)i * (j + 2) + 2) / n;
}

static void print_array(int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", A[i][j]);
  fprintf(stderr, "\n");
}

void kernel_seidel_2d(int tsteps, int n)
{
  int t, i, j;
  for (t = 0; t <= tsteps - 1; t++)
#pragma omp parallel for private(j)
    for (i = 1; i <= n - 2; i++)
      for (j = 1; j <= n - 2; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
}

int main(int argc, char **argv)
{
  int n = N;
  int tsteps = TSTEPS;
  init_array(n);
  kernel_seidel_2d(tsteps, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    n = dims["N"]
    i = np.arange(n, dtype=np.float64)[:, None]
    j = np.arange(n, dtype=np.float64)[None, :]
    return {"A": (i * (j + 2.0) + 2.0) / n, "tsteps": np.int64(dims["TSTEPS"])}


def reference(inputs: Arrays) -> Arrays:
    a = inputs["A"].copy()
    n = a.shape[0]
    for _ in range(int(inputs["tsteps"])):
        # Gauss-Seidel updates in place: row-major sweep with true
        # sequential dependencies, so the loop nest cannot vectorize.
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i, j] = (
                    a[i - 1, j - 1] + a[i - 1, j] + a[i - 1, j + 1]
                    + a[i, j - 1] + a[i, j] + a[i, j + 1]
                    + a[i + 1, j - 1] + a[i + 1, j] + a[i + 1, j + 1]
                ) / 9.0
    return {"A": a}


APP = BenchmarkApp(
    name="seidel-2d",
    source=SOURCE,
    kernels=("kernel_seidel_2d",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="stencils",
)
