"""correlation: correlation matrix of a data set (datamining)."""

from __future__ import annotations

import numpy as np

from repro.polybench.apps.base import Arrays, BenchmarkApp, init_matrix, scaled

SIZES = {"M": 1200, "N": 1400}

SOURCE = r"""
/* correlation.c: correlation matrix of an N x M data set. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <omp.h>
#define M 1200
#define N 1400
#define DATA_TYPE double
#define EPS 0.1

static DATA_TYPE data[N][M];
static DATA_TYPE corr[M][M];
static DATA_TYPE mean[M];
static DATA_TYPE stddev[M];

static void init_array(int m, int n)
{
  int i, j;
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
      data[i][j] = (DATA_TYPE)(i * j) / m + i;
}

static void print_array(int m)
{
  int i, j;
  for (i = 0; i < m; i++)
    for (j = 0; j < m; j++)
      fprintf(stderr, "%0.2lf ", corr[i][j]);
  fprintf(stderr, "\n");
}

void kernel_correlation(int m, int n, DATA_TYPE float_n)
{
  int i, j, k;
#pragma omp parallel for private(i)
  for (j = 0; j < m; j++)
  {
    mean[j] = 0.0;
    for (i = 0; i < n; i++)
      mean[j] += data[i][j];
    mean[j] /= float_n;
  }
#pragma omp parallel for private(i)
  for (j = 0; j < m; j++)
  {
    stddev[j] = 0.0;
    for (i = 0; i < n; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] /= float_n;
    stddev[j] = sqrt(stddev[j]);
    stddev[j] = stddev[j] <= EPS ? 1.0 : stddev[j];
  }
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
    {
      data[i][j] -= mean[j];
      data[i][j] /= sqrt(float_n) * stddev[j];
    }
#pragma omp parallel for private(j, k)
  for (i = 0; i < m - 1; i++)
  {
    corr[i][i] = 1.0;
    for (j = i + 1; j < m; j++)
    {
      corr[i][j] = 0.0;
      for (k = 0; k < n; k++)
        corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[m - 1][m - 1] = 1.0;
}

int main(int argc, char **argv)
{
  int m = M;
  int n = N;
  DATA_TYPE float_n = (DATA_TYPE)N;
  init_array(m, n);
  kernel_correlation(m, n, float_n);
  if (argc > 42)
    print_array(m);
  return 0;
}
"""


def make_inputs(rng: np.random.Generator, scale: float = 1.0) -> Arrays:
    dims = scaled(SIZES, scale)
    m, n = dims["M"], dims["N"]
    return {"data": init_matrix(rng, n, m) + np.arange(n)[:, None] * 0.01}


def reference(inputs: Arrays) -> Arrays:
    data = inputs["data"].astype(np.float64).copy()
    n, m = data.shape
    float_n = float(n)
    mean = data.mean(axis=0)
    stddev = np.sqrt(np.mean((data - mean) ** 2, axis=0))
    stddev = np.where(stddev <= 0.1, 1.0, stddev)
    normalized = (data - mean) / (np.sqrt(float_n) * stddev)
    corr = normalized.T @ normalized
    np.fill_diagonal(corr, 1.0)
    return {"corr": corr, "mean": mean, "stddev": stddev}


APP = BenchmarkApp(
    name="correlation",
    source=SOURCE,
    kernels=("kernel_correlation",),
    sizes=SIZES,
    make_inputs=make_inputs,
    reference=reference,
    category="datamining",
)
