"""Common machinery shared by the twelve Polybench application modules.

Each app module exposes a single :class:`BenchmarkApp`: the C-subset
source (parsed on demand into a CIR translation unit), the kernel
function names the SOCRATES toolchain targets, the dataset dimensions,
and a numpy *reference implementation* used for functional validation
(the knobs of the paper change extra-functional properties only, so
every woven/compiled variant must compute the same output).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.cir import TranslationUnit, parse

Arrays = Dict[str, np.ndarray]


@dataclass(frozen=True)
class BenchmarkApp:
    """One Polybench application in both source and functional form.

    Attributes:
        name: Polybench benchmark name (``"2mm"``, ``"jacobi-2d"``, ...).
        source: the full C source text of the benchmark.
        kernels: names of the kernel functions SOCRATES autotunes.
        sizes: dataset dimensions (the ``#define`` values in ``source``).
        make_inputs: ``(rng, scale) -> arrays`` builds input arrays;
            ``scale`` shrinks dimensions for fast functional tests.
        reference: ``arrays -> outputs`` numpy implementation of the
            kernels' semantics (o = f(i), independent of any knob).
        category: coarse Polybench category (used in docs/reports).
    """

    name: str
    source: str
    kernels: Tuple[str, ...]
    sizes: Mapping[str, int]
    make_inputs: Callable[[np.random.Generator, float], Arrays]
    reference: Callable[[Arrays], Arrays]
    category: str = "linear-algebra"

    def parse(self) -> TranslationUnit:
        """Parse the benchmark source into a fresh translation unit."""
        return parse(self.source, name=f"{self.name}.c")

    def source_fingerprint(self) -> str:
        """Content hash of the benchmark source.

        This is the ``source:`` provenance node of a telemetry-
        warehouse run record: runs of the same app text share it, and
        any source change breaks the lineage to prior runs.
        """
        return hashlib.sha256(self.source.encode()).hexdigest()

    def scaled_sizes(self, scale: float) -> Dict[str, int]:
        """Dataset dimensions shrunk by ``scale`` (minimum 4)."""
        return {key: max(4, int(round(value * scale))) for key, value in self.sizes.items()}


def scaled(sizes: Mapping[str, int], scale: float) -> Dict[str, int]:
    """Shrink every dimension in ``sizes`` by ``scale`` (minimum 4).

    Time-step counts (keys starting with ``TSTEPS``) are shrunk more
    aggressively (minimum 2) so functional tests stay fast.
    """
    result: Dict[str, int] = {}
    for key, value in sizes.items():
        minimum = 2 if key.startswith("TSTEPS") else 4
        result[key] = max(minimum, int(round(value * scale)))
    return result


def init_matrix(
    rng: np.random.Generator, rows: int, cols: int, modulus: int = 100
) -> np.ndarray:
    """Deterministic Polybench-style initializer: ((i*j) % modulus) / modulus.

    A small random perturbation (from ``rng``) keeps inputs generic while
    staying reproducible under a seeded generator.
    """
    i = np.arange(rows, dtype=np.float64)[:, None]
    j = np.arange(cols, dtype=np.float64)[None, :]
    base = np.mod(i * j + i + 1.0, float(modulus)) / float(modulus)
    return base + 0.01 * rng.random((rows, cols))


def init_vector(rng: np.random.Generator, n: int, modulus: int = 100) -> np.ndarray:
    """Deterministic Polybench-style vector initializer."""
    i = np.arange(n, dtype=np.float64)
    return np.mod(i + 1.0, float(modulus)) / float(modulus) + 0.01 * rng.random(n)
