"""Registry of the twelve Polybench applications from the paper.

The paper's experimental campaign (Section III) uses: 2mm, 3mm, atax,
correlation, doitgen, gemver, jacobi-2d, mvt, nussinov, seidel-2d,
syr2k and syrk.
"""

from __future__ import annotations

from typing import Dict, List

from repro.polybench.apps import two_mm  # noqa: F401  (registry imports)
from repro.polybench.apps import (
    atax,
    correlation,
    doitgen,
    gemver,
    jacobi_2d,
    mvt,
    nussinov,
    seidel_2d,
    syr2k,
    syrk,
    three_mm,
)
from repro.polybench.apps.base import BenchmarkApp

_APPS: Dict[str, BenchmarkApp] = {
    app.name: app
    for app in (
        two_mm.APP,
        three_mm.APP,
        atax.APP,
        correlation.APP,
        doitgen.APP,
        gemver.APP,
        jacobi_2d.APP,
        mvt.APP,
        nussinov.APP,
        seidel_2d.APP,
        syr2k.APP,
        syrk.APP,
    )
}

#: Benchmark names in the order of the paper's Table I.
BENCHMARK_NAMES: List[str] = [
    "2mm",
    "3mm",
    "atax",
    "correlation",
    "doitgen",
    "gemver",
    "jacobi-2d",
    "mvt",
    "nussinov",
    "seidel-2d",
    "syr2k",
    "syrk",
]


def load(name: str) -> BenchmarkApp:
    """Return the :class:`BenchmarkApp` registered under ``name``.

    Raises ``KeyError`` with the list of valid names otherwise.
    """
    try:
        return _APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; valid names: {', '.join(BENCHMARK_NAMES)}"
        ) from None


def all_apps() -> List[BenchmarkApp]:
    """All twelve applications in Table I order."""
    return [_APPS[name] for name in BENCHMARK_NAMES]
