"""Derive a performance-model view of a kernel from its source AST.

The paper profiles real binaries on a real Xeon; this reproduction
replaces the hardware with an analytical machine model
(:mod:`repro.machine`).  The bridge between the two worlds is the
:class:`WorkloadProfile` computed here: operation counts, memory
behaviour and OpenMP region structure, all extracted from the *actual*
benchmark source via CIR analyses (loop trip counts from the dataset
``#define`` values, operation censuses per loop body, dependence
checks for stencil kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cir import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Decl,
    DeclGroup,
    For,
    FunctionDef,
    Ident,
    Node,
    Pragma,
    TranslationUnit,
    census,
    eval_const,
    macro_environment,
    walk,
)
from repro.cir.analysis import LoopInfo, collect_loops
from repro.polybench.apps.base import BenchmarkApp

_FLOAT_BYTES = 8.0
_INT_BYTES = 4.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-invocation operation and memory profile of one kernel.

    All counts are totals for a single call of the kernel function with
    the benchmark's full dataset.
    """

    name: str
    kernel: str
    flops: float
    int_ops: float
    loads: float
    stores: float
    working_set_bytes: float
    parallel_fraction: float
    parallel_regions: float
    parallel_iterations: float
    loop_carried_dependence: bool
    reduction_innermost: bool
    branch_ops: float
    call_ops: float
    div_ops: float
    math_calls: float
    innermost_body_ops: float
    innermost_trip: float
    max_depth: int

    @property
    def total_ops(self) -> float:
        return self.flops + self.int_ops + self.loads + self.stores

    @property
    def naive_bytes(self) -> float:
        """Memory traffic with no cache: every access goes to DRAM."""
        return (self.loads + self.stores) * _FLOAT_BYTES

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per naive byte — a reuse proxy for the cache model."""
        if self.naive_bytes == 0:
            return 0.0
        return self.flops / self.naive_bytes

    @property
    def branch_density(self) -> float:
        return self.branch_ops / max(1.0, self.total_ops)

    @property
    def call_density(self) -> float:
        return self.call_ops / max(1.0, self.total_ops)

    @property
    def div_density(self) -> float:
        return self.div_ops / max(1.0, self.flops + 1.0)

    @property
    def math_call_density(self) -> float:
        return self.math_calls / max(1.0, self.flops + 1.0)


class WorkloadAnalysisError(ValueError):
    """Raised when a kernel cannot be profiled (e.g. unknown bounds)."""


def bound_environment(
    unit: TranslationUnit, size_overrides: Optional[Dict[str, int]] = None
) -> Dict[str, int]:
    """Macro values plus their lowercase aliases for loop-bound evaluation.

    Polybench kernels receive dataset sizes through parameters named
    after the macros (``int ni = NI; kernel(ni, ...)``), so binding each
    lowercased macro name resolves the kernel-scope bounds.

    ``size_overrides`` replaces macro values before aliasing — this is
    how a different dataset size (Polybench MINI..EXTRALARGE) is
    profiled without editing the source.
    """
    env = macro_environment(unit)
    if size_overrides:
        unknown = set(size_overrides) - set(env)
        if unknown:
            raise WorkloadAnalysisError(
                f"size overrides for undefined macros: {sorted(unknown)}"
            )
        env.update(size_overrides)
    aliases = {name.lower(): value for name, value in env.items()}
    aliases.update(env)
    return aliases


def _loop_trip(info: LoopInfo, env: Dict[str, int]) -> float:
    """Trip count of a loop; triangular bounds fall back to midpoints.

    When a bound references an enclosing induction variable (triangular
    loops in syrk/syr2k/nussinov/correlation), that variable is bound to
    half of its own trip count, giving the average trip of the inner
    loop — the right quantity for total work estimation.
    """
    trip = info.trip_count(env)
    if trip is not None:
        return float(trip)
    # bind enclosing induction variables to their range midpoints,
    # outermost first so dependent bounds (nussinov's k in i+1..j where
    # j itself runs over i+1..n) resolve progressively
    ancestors: List[LoopInfo] = []
    ancestor = info.parent
    while ancestor is not None:
        ancestors.append(ancestor)
        ancestor = ancestor.parent
    extended = dict(env)
    for outer in reversed(ancestors):
        iv = outer.induction_variable
        midpoint = outer.midpoint(extended)
        if iv and midpoint is not None:
            extended[iv] = midpoint
    trip = info.trip_count(extended)
    if trip is not None:
        return max(1.0, float(trip))
    raise WorkloadAnalysisError(
        f"cannot evaluate trip count of loop with induction variable "
        f"{info.induction_variable!r}"
    )


def _has_loop_carried_dependence(loop: For, parallel_iv: Optional[str]) -> bool:
    """Heuristic dependence test for a parallel loop.

    A loop carries a dependence when its body reads an array element it
    did not itself produce, through an index that *shifts* the parallel
    induction variable (the Gauss-Seidel ``A[i-1][j]`` and Nussinov
    ``table[i][j-1]`` patterns).  Reads whose signature exactly matches
    a write are local reuse (accumulators) and do not count; neither do
    dimensions that never involve the parallel induction variable
    (doitgen's permuted ``A[r][q][s]`` vs ``A[r][q][p]``).
    """
    if parallel_iv is None:
        return False
    writes: Dict[str, List[Tuple[str, ...]]] = {}
    for node in walk(loop):
        if isinstance(node, Assign) and isinstance(node.lhs, ArrayRef):
            base = node.lhs.base
            if isinstance(base, Ident):
                writes.setdefault(base.name, []).append(_index_signature(node.lhs))
    for node in walk(loop):
        if not (isinstance(node, ArrayRef) and isinstance(node.base, Ident)):
            continue
        write_sigs = writes.get(node.base.name)
        if not write_sigs:
            continue
        read_sig = _index_signature(node)
        if read_sig in write_sigs:
            continue  # exact local reuse
        for write_sig in write_sigs:
            if len(write_sig) != len(read_sig):
                continue
            for write_dim, read_dim in zip(write_sig, read_sig):
                involves_iv = _references(write_dim, parallel_iv) or _references(
                    read_dim, parallel_iv
                )
                if involves_iv and write_dim != read_dim:
                    return True
    return False


def _references(index_text: str, name: str) -> bool:
    import re

    return re.search(rf"\b{re.escape(name)}\b", index_text) is not None


def _is_reduction_loop(loop: For, iv: Optional[str]) -> bool:
    """True when the innermost loop accumulates into a location that is
    invariant in its own induction variable (``tmp[i][j] += ... k ...``).

    GCC's vectorizer refuses such FP reductions under strict IEEE
    semantics; ``-funsafe-math-optimizations`` unlocks them.  The
    accumulation is recognized both as ``x += e`` and ``x = x + e``.
    """
    if iv is None:
        return False
    for node in walk(loop.body):
        if not isinstance(node, Assign):
            continue
        lhs = node.lhs
        accumulates = node.op in ("+=", "-=", "*=") or (
            node.op == "="
            and isinstance(node.rhs, BinOp)
            and _expr_text(node.rhs.lhs) == _expr_text(lhs)
        )
        if not accumulates:
            continue
        if isinstance(lhs, ArrayRef):
            if not any(_references(sig, iv) for sig in _index_signature(lhs)):
                return True
        elif isinstance(lhs, Ident):
            return True
    return False


def _expr_text(expr) -> str:
    from repro.cir.printer import expr_to_source

    return expr_to_source(expr)


def _index_signature(ref: ArrayRef) -> Tuple[str, ...]:
    from repro.cir.printer import expr_to_source

    return tuple(expr_to_source(index) for index in ref.indices)


@dataclass
class _Totals:
    flops: float = 0.0
    int_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branch_ops: float = 0.0
    call_ops: float = 0.0
    div_ops: float = 0.0
    math_calls: float = 0.0
    parallel_work: float = 0.0
    total_work: float = 0.0
    parallel_regions: float = 0.0
    parallel_iterations: float = 0.0
    innermost_ops_weighted: float = 0.0
    innermost_trip_weighted: float = 0.0
    innermost_weight: float = 0.0
    dependence: bool = False
    reduction: bool = False


class _KernelProfiler:
    """Walks one kernel function and accumulates weighted op counts."""

    def __init__(self, env: Dict[str, int]) -> None:
        self._env = env
        self.totals = _Totals()
        self._loop_infos: Dict[int, LoopInfo] = {}

    def profile(self, func: FunctionDef) -> None:
        for info in collect_loops(func.body):
            self._loop_infos[id(info.node)] = info
        self._visit_block_like(list(_block_stmts(func.body)), weight=1.0, parallel=False)

    # Statements are visited in sibling order so an ``omp parallel for``
    # pragma can mark the loop that immediately follows it.
    def _visit_block_like(self, stmts: List[Node], weight: float, parallel: bool) -> None:
        pending_parallel = False
        for stmt in stmts:
            if isinstance(stmt, Pragma):
                if stmt.is_omp and "for" in stmt.text:
                    pending_parallel = True
                continue
            if isinstance(stmt, For):
                self._visit_loop(stmt, weight, parallel, starts_parallel=pending_parallel)
            else:
                self._visit_plain(stmt, weight, parallel)
            pending_parallel = False

    def _visit_loop(
        self, loop: For, weight: float, parallel: bool, starts_parallel: bool
    ) -> None:
        info = self._loop_infos[id(loop)]
        trip = _loop_trip(info, self._env)
        totals = self.totals
        if starts_parallel:
            totals.parallel_regions += weight
            totals.parallel_iterations += weight * trip
            if _has_loop_carried_dependence(loop, info.induction_variable):
                totals.dependence = True
        in_parallel = parallel or starts_parallel
        # loop-control overhead: one compare + one increment per iteration
        control_ops = weight * trip * 2.0
        totals.int_ops += control_ops
        totals.total_work += control_ops
        if in_parallel:
            totals.parallel_work += control_ops
        body_weight = weight * trip
        body = loop.body
        if isinstance(body, Block):
            self._visit_block_like(list(_block_stmts(body)), body_weight, in_parallel)
        else:
            self._visit_block_like([body], body_weight, in_parallel)
        if not info.children:
            body_census = census(loop.body)
            totals.innermost_ops_weighted += body_weight * body_census.total_ops
            totals.innermost_trip_weighted += weight * trip * trip
            totals.innermost_weight += weight * trip
            if in_parallel and _is_reduction_loop(loop, info.induction_variable):
                totals.reduction = True

    def _visit_plain(self, stmt: Node, weight: float, parallel: bool) -> None:
        if isinstance(stmt, (Decl, DeclGroup)) and not _decl_has_work(stmt):
            return
        stats = census(stmt)
        flops = float(stats.binary_fp_ops + stats.math_calls * 10.0)
        int_ops = float(stats.binary_int_ops + stats.assignments)
        loads = float(stats.array_loads)
        stores = float(stats.array_stores)
        work = flops + int_ops + loads + stores
        totals = self.totals
        totals.flops += weight * flops
        totals.int_ops += weight * int_ops
        totals.loads += weight * loads
        totals.stores += weight * stores
        totals.branch_ops += weight * stats.branches
        totals.call_ops += weight * stats.calls
        totals.div_ops += weight * stats.divisions
        totals.math_calls += weight * stats.math_calls
        totals.total_work += weight * work
        if parallel:
            totals.parallel_work += weight * work
        # nested non-for control flow (if/while bodies) is already part
        # of the census of this statement, so no recursion is needed


def _block_stmts(block: Block) -> List[Node]:
    return block.stmts


def _decl_has_work(stmt: Node) -> bool:
    if isinstance(stmt, Decl):
        return stmt.init is not None
    if isinstance(stmt, DeclGroup):
        return any(decl.init is not None for decl in stmt.decls)
    return False


def _is_floating_type(unit: TranslationUnit, type_name: str) -> bool:
    """Resolve macro/typedef aliases (DATA_TYPE) down to float/double."""
    from repro.cir import MacroDef, Typedef

    seen = set()
    name = type_name.split()[-1]
    while name not in seen:
        seen.add(name)
        if name in ("float", "double"):
            return True
        for decl in unit.decls:
            if isinstance(decl, MacroDef) and decl.name == name and decl.body:
                name = decl.body.split()[-1]
                break
            if isinstance(decl, Typedef) and decl.name == name:
                name = decl.type.name.split()[-1]
                break
        else:
            return False
    return False


def _working_set(unit: TranslationUnit, func: FunctionDef, env: Dict[str, int]) -> float:
    """Bytes of global arrays referenced by the kernel function."""
    referenced = {
        node.base.name
        for node in walk(func)
        if isinstance(node, ArrayRef) and isinstance(node.base, Ident)
    }
    total = 0.0
    for decl in unit.decls:
        if isinstance(decl, Decl) and decl.is_array and decl.name in referenced:
            elements = 1.0
            for dim in decl.array_dims:
                value = eval_const(dim, env)
                if value is None:
                    raise WorkloadAnalysisError(
                        f"array {decl.name!r} has non-constant dimension"
                    )
                elements *= float(value)
            floating = _is_floating_type(unit, decl.type.name)
            element_bytes = _FLOAT_BYTES if floating else _INT_BYTES
            total += elements * element_bytes
    return total


def profile_kernel(
    app: BenchmarkApp,
    kernel: Optional[str] = None,
    size_overrides: Optional[Dict[str, int]] = None,
    unit: Optional[TranslationUnit] = None,
) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of ``app``'s kernel function.

    ``kernel`` defaults to the first (usually only) kernel of the app;
    ``size_overrides`` profiles the kernel at a different dataset size
    (e.g. ``{"NI": 200, "NJ": 220, ...}`` for a smaller 2mm).
    ``unit`` skips the parse when the caller already holds the app's
    AST (the analyses are read-only, so a shared unit is safe).
    """
    if unit is None:
        unit = app.parse()
    kernel_name = kernel or app.kernels[0]
    func = unit.function(kernel_name)
    env = bound_environment(unit, size_overrides)
    profiler = _KernelProfiler(env)
    profiler.profile(func)
    totals = profiler.totals

    from repro.cir.analysis import max_loop_depth

    parallel_fraction = (
        totals.parallel_work / totals.total_work if totals.total_work else 0.0
    )
    innermost_ops = (
        totals.innermost_ops_weighted / totals.innermost_weight
        if totals.innermost_weight
        else 0.0
    )
    innermost_trip = (
        totals.innermost_trip_weighted / totals.innermost_weight
        if totals.innermost_weight
        else 0.0
    )
    return WorkloadProfile(
        name=app.name,
        kernel=kernel_name,
        flops=totals.flops,
        int_ops=totals.int_ops,
        loads=totals.loads,
        stores=totals.stores,
        working_set_bytes=_working_set(unit, func, env),
        parallel_fraction=parallel_fraction,
        parallel_regions=totals.parallel_regions,
        parallel_iterations=totals.parallel_iterations,
        loop_carried_dependence=totals.dependence,
        reduction_innermost=totals.reduction,
        branch_ops=totals.branch_ops,
        call_ops=totals.call_ops,
        div_ops=totals.div_ops,
        math_calls=totals.math_calls,
        innermost_body_ops=innermost_ops,
        innermost_trip=innermost_trip,
        max_depth=max_loop_depth(func),
    )
