"""Memoizing caches of the evaluation engine.

Two caches back every measurement path:

* :class:`CompileCache` — one :class:`~repro.gcc.compiler.CompiledKernel`
  per ``(WorkloadProfile identity, FlagConfiguration.label)``, so a
  CF x TN x BP exploration compiles each CF exactly once no matter how
  many thread-count/binding variants visit it;
* :class:`ProfileCache` — one parse and one
  :class:`~repro.polybench.workload.WorkloadProfile` per application,
  so a full toolflow build characterizes, profiles and assembles from
  a single AST analysis.

Both keep hit/miss counters that the telemetry layer snapshots around
every pipeline stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gcc.compiler import Compiler, CompiledKernel
from repro.gcc.flags import FlagConfiguration
from repro.milepost.features import FeatureVector, extract_features
from repro.polybench.apps.base import BenchmarkApp
from repro.polybench.workload import WorkloadProfile, profile_kernel


@dataclass
class CacheStats:
    """Mutable hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


#: Cache key of one compiled kernel: profile identity + flag label.
CompileKey = Tuple[str, str, str]


class CompileCache:
    """Memoizes :meth:`Compiler.compile` with hit/miss accounting.

    The underlying :class:`Compiler` keeps its own memo keyed on the
    full :class:`FlagConfiguration`; this layer is the engine's
    authority on *how many distinct compilations* a pipeline performed,
    keyed on the human-readable ``label`` so telemetry and tests can
    reason about it.
    """

    def __init__(self, compiler: Compiler) -> None:
        self._compiler = compiler
        self._kernels: Dict[CompileKey, CompiledKernel] = {}
        self.stats = CacheStats()

    @staticmethod
    def key(profile: WorkloadProfile, config: FlagConfiguration) -> CompileKey:
        return (profile.name, profile.kernel, config.label)

    def get(
        self, profile: WorkloadProfile, config: FlagConfiguration
    ) -> CompiledKernel:
        key = self.key(profile, config)
        kernel = self._kernels.get(key)
        if kernel is None:
            self.stats.misses += 1
            kernel = self._compiler.compile(profile, config)
            self._kernels[key] = kernel
        else:
            self.stats.hits += 1
        return kernel

    def keys(self) -> List[CompileKey]:
        return list(self._kernels)

    def entries_for(self, profile: WorkloadProfile) -> List[CompileKey]:
        """Cache keys belonging to one workload profile."""
        return [
            key
            for key in self._kernels
            if key[0] == profile.name and key[1] == profile.kernel
        ]

    def __len__(self) -> int:
        return len(self._kernels)


class ProfileCache:
    """Per-application parse / profile / feature memoization.

    Keyed on the benchmark name (unique within the suite).  The cached
    translation unit is shared by read-only analyses only — the weaver
    mutates its AST and therefore always parses its own copy.
    """

    def __init__(self) -> None:
        self._units: Dict[str, object] = {}
        self._profiles: Dict[Tuple[str, Optional[str]], WorkloadProfile] = {}
        self._features: Dict[Tuple[str, Optional[str]], FeatureVector] = {}
        self.stats = CacheStats()

    def unit(self, app: BenchmarkApp):
        """The (read-only) parsed translation unit of ``app``."""
        unit = self._units.get(app.name)
        if unit is None:
            unit = app.parse()
            self._units[app.name] = unit
        return unit

    def profile(
        self, app: BenchmarkApp, kernel: Optional[str] = None
    ) -> WorkloadProfile:
        key = (app.name, kernel)
        profile = self._profiles.get(key)
        if profile is None:
            self.stats.misses += 1
            profile = profile_kernel(app, kernel=kernel, unit=self.unit(app))
            self._profiles[key] = profile
        else:
            self.stats.hits += 1
        return profile

    def features(
        self, app: BenchmarkApp, kernel: Optional[str] = None
    ) -> FeatureVector:
        key = (app.name, kernel)
        features = self._features.get(key)
        if features is None:
            features = extract_features(self.unit(app), kernel or app.kernels[0])
            self._features[key] = features
        return features
