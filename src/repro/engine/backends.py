"""Evaluation backends: where the machine-model invocations run.

A backend maps *work items* — ``(CompiledKernel, threads, binding,
cluster)`` tuples — to their noise-free ``(time_s, power_w)`` truths.  Truths
are deterministic model evaluations, so the engine can ship them to
any pool of workers and stay reproducible: measurement noise is drawn
separately, in canonical point order, from the engine's single seeded
stream (see :meth:`EvaluationEngine.evaluate`) and applied to the
truths regardless of which worker produced them.

* :class:`SerialBackend` — evaluates in-process, in order (default).
* :class:`ProcessPoolBackend` — shards items across OS processes.
  Workers receive the executor and OpenMP runtime once per pool and
  never touch a random stream, so results are identical to the serial
  backend for any worker count.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gcc.compiler import CompiledKernel
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime, ThreadPlacement
from repro.obs.tracing import Tracer

#: One unit of backend work: compiled kernel + placement request (the
#: last element is the cluster pin, ``None`` = whole machine).
WorkItem = Tuple[CompiledKernel, int, str, Optional[str]]
#: Noise-free outcome of one work item.
Truth = Tuple[float, float]


def _truth_span_name(item: WorkItem) -> str:
    kernel, threads, binding, cluster = item
    name = f"truth:{kernel.profile.kernel}@{threads}t/{binding}"
    if cluster is not None:
        name += f"/{cluster}"
    return name


class SerialBackend:
    """In-process, in-order evaluation (bit-identical to the historical
    hand-rolled loops)."""

    name = "serial"

    def run_truths(
        self,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        items: Sequence[WorkItem],
        tracer: Optional[Tracer] = None,
    ) -> List[Truth]:
        placements: Dict[Tuple[int, str, Optional[str]], ThreadPlacement] = {}
        truths: List[Truth] = []
        for item in items:
            kernel, threads, binding, cluster = item
            placement = placements.get((threads, binding, cluster))
            if placement is None:
                placement = omp.place(threads, BindingPolicy(binding), cluster=cluster)
                placements[(threads, binding, cluster)] = placement
            if tracer is not None and tracer.enabled:
                with tracer.span(
                    _truth_span_name(item), compiler=kernel.config.label
                ):
                    result = executor.evaluate(kernel, placement)
            else:
                result = executor.evaluate(kernel, placement)
            truths.append((result.time_s, result.power_w))
        return truths


# -- process-pool worker side -------------------------------------------------
#
# Module-level state + functions so they are picklable under both the
# fork and spawn start methods.

_WORKER: Dict[str, object] = {}


def _init_worker(executor: MachineExecutor, omp: OpenMPRuntime) -> None:
    _WORKER["executor"] = executor
    _WORKER["omp"] = omp
    _WORKER["placements"] = {}


def _evaluate_item(item: WorkItem) -> Truth:
    kernel, threads, binding, cluster = item
    placements: Dict[Tuple[int, str, Optional[str]], ThreadPlacement] = _WORKER["placements"]  # type: ignore[assignment]
    placement = placements.get((threads, binding, cluster))
    if placement is None:
        omp: OpenMPRuntime = _WORKER["omp"]  # type: ignore[assignment]
        placement = omp.place(threads, BindingPolicy(binding), cluster=cluster)
        placements[(threads, binding, cluster)] = placement
    executor: MachineExecutor = _WORKER["executor"]  # type: ignore[assignment]
    result = executor.evaluate(kernel, placement)
    return (result.time_s, result.power_w)


def _evaluate_item_timed(item: WorkItem) -> Tuple[Truth, float]:
    """Traced variant: also report how long the worker spent on the item.

    Worker clocks are not comparable across processes, so only the
    duration crosses the boundary; the parent re-bases it into the
    submitting span (see :meth:`Tracer.adopt`).
    """
    start = time.perf_counter()
    truth = _evaluate_item(item)
    return truth, time.perf_counter() - start


class ProcessPoolBackend:
    """Shards work items across a pool of OS processes.

    Each ``run_truths`` call spins up its own pool (the executor and
    runtime are shipped once via the pool initializer), so the backend
    holds no long-lived child processes between batches.  Worker
    scheduling cannot affect results: truths are pure functions of
    their item, and all randomness stays in the parent.
    """

    name = "process-pool"

    def __init__(self, max_workers: int = 0, chunksize: int = 16) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = cpu count)")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._chunksize = chunksize

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def run_truths(
        self,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        items: Sequence[WorkItem],
        tracer: Optional[Tracer] = None,
    ) -> List[Truth]:
        # tiny batches are not worth a pool spin-up
        if len(items) <= self._chunksize or self._max_workers == 1:
            return SerialBackend().run_truths(executor, omp, items, tracer=tracer)
        from concurrent.futures import ProcessPoolExecutor

        traced = tracer is not None and tracer.enabled
        with ProcessPoolExecutor(
            max_workers=self._max_workers,
            initializer=_init_worker,
            initargs=(executor, omp),
        ) as pool:
            if not traced:
                return list(
                    pool.map(_evaluate_item, items, chunksize=self._chunksize)
                )
            timed = list(
                pool.map(_evaluate_item_timed, items, chunksize=self._chunksize)
            )
        self._adopt_worker_spans(tracer, items, timed)
        return [truth for truth, _ in timed]

    def _adopt_worker_spans(
        self,
        tracer: Tracer,
        items: Sequence[WorkItem],
        timed: Sequence[Tuple[Truth, float]],
    ) -> None:
        """Re-parent worker-measured spans into the submitting span.

        The pool does not report which worker ran which item, so items
        are laid out greedily onto ``max_workers`` lanes (each lane is
        one exported track): the next item goes to the earliest-free
        lane.  Lane layout is a reconstruction of the schedule, but
        durations are the workers' real measurements.
        """
        lane_free = [0.0] * self._max_workers
        for item, (_, duration) in zip(items, timed):
            lane = min(range(self._max_workers), key=lane_free.__getitem__)
            tracer.adopt(
                _truth_span_name(item),
                duration_s=duration,
                offset_s=lane_free[lane],
                track=f"pool-{lane}",
                compiler=item[0].config.label,
            )
            lane_free[lane] += duration
