"""Evaluation backends: where the machine-model invocations run.

A backend maps *work items* — ``(CompiledKernel, threads, binding)``
triples — to their noise-free ``(time_s, power_w)`` truths.  Truths
are deterministic model evaluations, so the engine can ship them to
any pool of workers and stay reproducible: measurement noise is drawn
separately, in canonical point order, from the engine's single seeded
stream (see :meth:`EvaluationEngine.evaluate`) and applied to the
truths regardless of which worker produced them.

* :class:`SerialBackend` — evaluates in-process, in order (default).
* :class:`ProcessPoolBackend` — shards items across OS processes.
  Workers receive the executor and OpenMP runtime once per pool and
  never touch a random stream, so results are identical to the serial
  backend for any worker count.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.gcc.compiler import CompiledKernel
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime, ThreadPlacement

#: One unit of backend work: compiled kernel + placement request.
WorkItem = Tuple[CompiledKernel, int, str]
#: Noise-free outcome of one work item.
Truth = Tuple[float, float]


class SerialBackend:
    """In-process, in-order evaluation (bit-identical to the historical
    hand-rolled loops)."""

    name = "serial"

    def run_truths(
        self,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        items: Sequence[WorkItem],
    ) -> List[Truth]:
        placements: Dict[Tuple[int, str], ThreadPlacement] = {}
        truths: List[Truth] = []
        for kernel, threads, binding in items:
            placement = placements.get((threads, binding))
            if placement is None:
                placement = omp.place(threads, BindingPolicy(binding))
                placements[(threads, binding)] = placement
            result = executor.evaluate(kernel, placement)
            truths.append((result.time_s, result.power_w))
        return truths


# -- process-pool worker side -------------------------------------------------
#
# Module-level state + functions so they are picklable under both the
# fork and spawn start methods.

_WORKER: Dict[str, object] = {}


def _init_worker(executor: MachineExecutor, omp: OpenMPRuntime) -> None:
    _WORKER["executor"] = executor
    _WORKER["omp"] = omp
    _WORKER["placements"] = {}


def _evaluate_item(item: WorkItem) -> Truth:
    kernel, threads, binding = item
    placements: Dict[Tuple[int, str], ThreadPlacement] = _WORKER["placements"]  # type: ignore[assignment]
    placement = placements.get((threads, binding))
    if placement is None:
        omp: OpenMPRuntime = _WORKER["omp"]  # type: ignore[assignment]
        placement = omp.place(threads, BindingPolicy(binding))
        placements[(threads, binding)] = placement
    executor: MachineExecutor = _WORKER["executor"]  # type: ignore[assignment]
    result = executor.evaluate(kernel, placement)
    return (result.time_s, result.power_w)


class ProcessPoolBackend:
    """Shards work items across a pool of OS processes.

    Each ``run_truths`` call spins up its own pool (the executor and
    runtime are shipped once via the pool initializer), so the backend
    holds no long-lived child processes between batches.  Worker
    scheduling cannot affect results: truths are pure functions of
    their item, and all randomness stays in the parent.
    """

    name = "process-pool"

    def __init__(self, max_workers: int = 0, chunksize: int = 16) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = cpu count)")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._chunksize = chunksize

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def run_truths(
        self,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        items: Sequence[WorkItem],
    ) -> List[Truth]:
        # tiny batches are not worth a pool spin-up
        if len(items) <= self._chunksize or self._max_workers == 1:
            return SerialBackend().run_truths(executor, omp, items)
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=self._max_workers,
            initializer=_init_worker,
            initargs=(executor, omp),
        ) as pool:
            return list(pool.map(_evaluate_item, items, chunksize=self._chunksize))
