"""The unified evaluation engine (compile→place→run as a service).

One cached, parallel, instrumented measurement substrate shared by the
SOCRATES toolflow, the design-space explorer and the COBAYN corpus
builder.  See :mod:`repro.engine.core` for the determinism contract.
"""

from repro.engine.backends import ProcessPoolBackend, SerialBackend
from repro.engine.caching import CacheStats, CompileCache, ProfileCache
from repro.engine.core import EngineCounters, EvaluationEngine
from repro.engine.model import DesignPoint, DesignSpace, ProfiledSample
from repro.engine.telemetry import (
    StageEvent,
    TelemetryRecorder,
    stage_report,
    stage_report_json,
)

__all__ = [
    "CacheStats",
    "CompileCache",
    "DesignPoint",
    "DesignSpace",
    "EngineCounters",
    "EvaluationEngine",
    "ProcessPoolBackend",
    "ProfileCache",
    "ProfiledSample",
    "SerialBackend",
    "StageEvent",
    "TelemetryRecorder",
    "stage_report",
    "stage_report_json",
]
