"""Data model of the evaluation engine: design points and samples.

These types used to live in :mod:`repro.dse.explorer`; they are defined
here so every measurement consumer (toolflow, DSE, COBAYN corpus) can
share them without importing the explorer.  The explorer re-exports
them, so existing ``from repro.dse.explorer import DesignPoint`` code
keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from repro.gcc.flags import FlagConfiguration
from repro.machine.openmp import BindingPolicy


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the paper's autotuning space.

    ``cluster`` is the fourth knob (which cluster type the thread team
    is pinned to); ``None`` — the only value on homogeneous machines —
    means the whole machine, the paper's original three-knob space.
    """

    compiler: FlagConfiguration
    threads: int
    binding: BindingPolicy
    cluster: Optional[str] = None


@dataclass(frozen=True)
class DesignSpace:
    """The cartesian autotuning space CO x TN x BP (paper Section II),
    extended with the cluster knob (CO x TN x BP x CL) on heterogeneous
    machines.

    ``clusters`` defaults to ``(None,)`` — no cluster pinning, the
    degenerate case that keeps the space identical to the paper's.
    ``cluster_capacities`` (when given) maps each cluster value to its
    logical-CPU count so thread counts that cannot be placed there are
    dropped instead of failing at placement time.
    """

    compiler_configs: Sequence[FlagConfiguration]
    thread_counts: Sequence[int]
    bindings: Sequence[BindingPolicy] = (BindingPolicy.CLOSE, BindingPolicy.SPREAD)
    clusters: Sequence[Optional[str]] = (None,)
    cluster_capacities: Optional[Mapping[Optional[str], int]] = None

    def _fits(self, cluster: Optional[str], threads: int) -> bool:
        if self.cluster_capacities is None:
            return True
        capacity = self.cluster_capacities.get(cluster)
        return capacity is None or threads <= capacity

    def points(self) -> List[DesignPoint]:
        return [
            DesignPoint(
                compiler=config, threads=threads, binding=binding, cluster=cluster
            )
            for config in self.compiler_configs
            for binding in self.bindings
            for cluster in self.clusters
            for threads in self.thread_counts
            if self._fits(cluster, threads)
        ]

    @property
    def size(self) -> int:
        if self.cluster_capacities is not None:
            return len(self.points())
        return (
            len(self.compiler_configs)
            * len(self.thread_counts)
            * len(self.bindings)
            * len(self.clusters)
        )


@dataclass
class ProfiledSample:
    """Raw repetition measurements of one design point."""

    point: DesignPoint
    times: List[float] = field(default_factory=list)
    powers: List[float] = field(default_factory=list)
