"""Data model of the evaluation engine: design points and samples.

These types used to live in :mod:`repro.dse.explorer`; they are defined
here so every measurement consumer (toolflow, DSE, COBAYN corpus) can
share them without importing the explorer.  The explorer re-exports
them, so existing ``from repro.dse.explorer import DesignPoint`` code
keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.gcc.flags import FlagConfiguration
from repro.machine.openmp import BindingPolicy


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the paper's autotuning space."""

    compiler: FlagConfiguration
    threads: int
    binding: BindingPolicy


@dataclass(frozen=True)
class DesignSpace:
    """The cartesian autotuning space CO x TN x BP (paper Section II)."""

    compiler_configs: Sequence[FlagConfiguration]
    thread_counts: Sequence[int]
    bindings: Sequence[BindingPolicy] = (BindingPolicy.CLOSE, BindingPolicy.SPREAD)

    def points(self) -> List[DesignPoint]:
        return [
            DesignPoint(compiler=config, threads=threads, binding=binding)
            for config in self.compiler_configs
            for binding in self.bindings
            for threads in self.thread_counts
        ]

    @property
    def size(self) -> int:
        return (
            len(self.compiler_configs) * len(self.thread_counts) * len(self.bindings)
        )


@dataclass
class ProfiledSample:
    """Raw repetition measurements of one design point."""

    point: DesignPoint
    times: List[float] = field(default_factory=list)
    powers: List[float] = field(default_factory=list)
