"""Stage-event telemetry: what each pipeline stage cost.

The toolflow wraps every Figure 1 stage in
:meth:`TelemetryRecorder.stage`, which snapshots the engine's cache
and evaluation counters around the stage body and appends one
:class:`StageEvent` with the wall time and counter deltas.  The CLI
dumps the events as JSON (``socrates build --stage-report`` /
``socrates stats``).

Since the introduction of :mod:`repro.obs`, the recorder is a thin
adapter over the span tracer: each stage additionally opens a
``stage:<name>`` span on the tracer it was given (the shared no-op
tracer by default), so stage events and the hierarchical trace always
agree on stage boundaries.  Given a metrics registry, each stage also
lands in the labelled ``socrates_stage_duration_seconds{stage=...}``
histogram, which is what ``socrates obs top`` renders as the
per-stage histogram panel.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer


@dataclass(frozen=True)
class StageEvent:
    """Cost accounting of one pipeline stage."""

    stage: str
    wall_time_s: float
    compile_hits: int
    compile_misses: int
    profile_hits: int
    profile_misses: int
    truth_hits: int
    truth_misses: int
    points_evaluated: int
    ok: bool = True

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


#: StageEvent fields summed into the report totals — every numeric
#: counter except the identifying/boolean ones, derived from the
#: dataclass so a newly added counter cannot be silently omitted.
_TOTALED_FIELDS = tuple(
    f.name for f in fields(StageEvent) if f.name not in ("stage", "ok")
)


def stage_report(events: List[StageEvent]) -> Dict[str, object]:
    """JSON-able report: per-stage events plus totals.

    ``totals`` sums every numeric :class:`StageEvent` field; ``ok`` is
    the conjunction over stages (``True`` for an empty report).
    """
    totals: Dict[str, object] = {
        name: sum(getattr(event, name) for event in events)
        for name in _TOTALED_FIELDS
    }
    totals["ok"] = all(event.ok for event in events)
    return {
        "stages": [event.as_dict() for event in events],
        "totals": totals,
    }


def stage_report_json(events: List[StageEvent], indent: int = 2) -> str:
    return json.dumps(stage_report(events), indent=indent)


class TelemetryRecorder:
    """Collects :class:`StageEvent` records around an engine's stages."""

    def __init__(
        self,
        engine,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._engine = engine
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._events: List[StageEvent] = []

    @property
    def events(self) -> List[StageEvent]:
        return list(self._events)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        before = self._engine.counters
        # Time stages on the tracer's clock so a virtual clock (the
        # telemetry warehouse's determinism device) governs stage wall
        # times and the duration histogram too, not just spans.  The
        # no-op tracer carries no clock; fall back to the real one.
        clock = getattr(self._tracer, "_clock", time.perf_counter)
        start = clock()
        ok = True
        span = None
        try:
            with self._tracer.span(f"stage:{name}") as span:
                yield
        except BaseException:
            ok = False
            raise
        finally:
            wall = clock() - start
            after = self._engine.counters
            # The span that landed in this bucket becomes the bucket's
            # OpenMetrics exemplar (span is None under NULL_TRACER).
            self._metrics.histogram(
                "socrates_stage_duration_seconds",
                help="wall time of each pipeline stage",
                labels={"stage": name},
            ).observe(
                wall,
                exemplar={"span_id": str(span.span_id)} if span is not None else None,
            )
            self._events.append(
                StageEvent(
                    stage=name,
                    wall_time_s=wall,
                    compile_hits=after.compile_hits - before.compile_hits,
                    compile_misses=after.compile_misses - before.compile_misses,
                    profile_hits=after.profile_hits - before.profile_hits,
                    profile_misses=after.profile_misses - before.profile_misses,
                    truth_hits=after.truth_hits - before.truth_hits,
                    truth_misses=after.truth_misses - before.truth_misses,
                    points_evaluated=after.points_evaluated
                    - before.points_evaluated,
                    ok=ok,
                )
            )

    def report(self) -> Dict[str, object]:
        return stage_report(self._events)
