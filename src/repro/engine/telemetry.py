"""Stage-event telemetry: what each pipeline stage cost.

The toolflow wraps every Figure 1 stage in
:meth:`TelemetryRecorder.stage`, which snapshots the engine's cache
and evaluation counters around the stage body and appends one
:class:`StageEvent` with the wall time and counter deltas.  The CLI
dumps the events as JSON (``socrates build --stage-report`` /
``socrates stats``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class StageEvent:
    """Cost accounting of one pipeline stage."""

    stage: str
    wall_time_s: float
    compile_hits: int
    compile_misses: int
    profile_hits: int
    profile_misses: int
    truth_hits: int
    truth_misses: int
    points_evaluated: int

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def stage_report(events: List[StageEvent]) -> Dict[str, object]:
    """JSON-able report: per-stage events plus totals."""
    return {
        "stages": [event.as_dict() for event in events],
        "totals": {
            "wall_time_s": sum(event.wall_time_s for event in events),
            "compile_hits": sum(event.compile_hits for event in events),
            "compile_misses": sum(event.compile_misses for event in events),
            "profile_hits": sum(event.profile_hits for event in events),
            "profile_misses": sum(event.profile_misses for event in events),
            "truth_hits": sum(event.truth_hits for event in events),
            "truth_misses": sum(event.truth_misses for event in events),
            "points_evaluated": sum(event.points_evaluated for event in events),
        },
    }


def stage_report_json(events: List[StageEvent], indent: int = 2) -> str:
    return json.dumps(stage_report(events), indent=indent)


class TelemetryRecorder:
    """Collects :class:`StageEvent` records around an engine's stages."""

    def __init__(self, engine) -> None:
        self._engine = engine
        self._events: List[StageEvent] = []

    @property
    def events(self) -> List[StageEvent]:
        return list(self._events)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        before = self._engine.counters
        start = time.perf_counter()
        try:
            yield
        finally:
            wall = time.perf_counter() - start
            after = self._engine.counters
            self._events.append(
                StageEvent(
                    stage=name,
                    wall_time_s=wall,
                    compile_hits=after.compile_hits - before.compile_hits,
                    compile_misses=after.compile_misses - before.compile_misses,
                    profile_hits=after.profile_hits - before.profile_hits,
                    profile_misses=after.profile_misses - before.profile_misses,
                    truth_hits=after.truth_hits - before.truth_hits,
                    truth_misses=after.truth_misses - before.truth_misses,
                    points_evaluated=after.points_evaluated
                    - before.points_evaluated,
                )
            )

    def report(self) -> Dict[str, object]:
        return stage_report(self._events)
