"""The unified evaluation engine: one compile→place→run path.

Every layer that needs a measurement — the SOCRATES toolflow, the
design-space explorer and the COBAYN corpus builder — shares one
:class:`EvaluationEngine`.  The engine owns:

* the **compile cache** — one compilation per distinct
  ``(WorkloadProfile, FlagConfiguration.label)`` pair;
* the **profile cache** — one parse + workload analysis per app;
* the **batched evaluation API** — :meth:`evaluate` turns a list of
  design points into :class:`ProfiledSample` measurements through a
  pluggable backend (serial by default, process pool optionally);
* the **counters** the telemetry layer snapshots per pipeline stage.

Determinism contract: model truths are pure functions of
``(kernel, placement)``, and measurement noise is drawn from the
executor's single seeded stream in canonical point order — two pairs
per repetition, exactly as the historical per-run draws — *before*
truths are computed.  Serial and process-pool backends therefore
produce bit-identical samples, and both reproduce the pre-engine
hand-rolled loops byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import ProcessPoolBackend, SerialBackend, Truth, WorkItem
from repro.engine.caching import CompileCache, CompileKey, ProfileCache
from repro.engine.model import DesignPoint, ProfiledSample
from repro.gcc.compiler import CompiledKernel, Compiler
from repro.gcc.flags import FlagConfiguration
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.machine.registry import resolve_machine
from repro.machine.topology import Machine
from repro.milepost.features import FeatureVector
from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.polybench.apps.base import BenchmarkApp
from repro.polybench.workload import WorkloadProfile


@dataclass(frozen=True)
class EngineCounters:
    """Snapshot of the engine's monotonic counters."""

    compile_hits: int
    compile_misses: int
    profile_hits: int
    profile_misses: int
    truth_hits: int
    truth_misses: int
    points_evaluated: int
    points_masked: int = 0


class EvaluationEngine:
    """Cached, batched, backend-pluggable kernel evaluation."""

    def __init__(
        self,
        compiler: Optional[Compiler] = None,
        executor: Optional[MachineExecutor] = None,
        omp: Optional[OpenMPRuntime] = None,
        machine: Union[str, Machine, None] = None,
        backend=None,
        obs: Optional[Observability] = None,
    ) -> None:
        if machine is None and executor is not None:
            machine = executor.machine
        machine = resolve_machine(machine)
        self._machine = machine
        self._compiler = compiler or Compiler()
        self._executor = executor or MachineExecutor(machine)
        self._omp = omp or OpenMPRuntime(machine)
        self._backend = backend or SerialBackend()
        self._obs = obs if obs is not None else NULL_OBS
        # instrument handles are resolved once; with the null registry
        # these are shared no-op sinks, so hot paths stay cheap
        metrics = self._obs.metrics
        self._metric_points = metrics.counter(
            "socrates_engine_points_evaluated_total",
            help="design points measured through evaluate()",
        )
        self._metric_truth_hits = metrics.counter(
            "socrates_engine_truth_cache_hits_total",
            help="truth-cache hits across evaluate() batches",
        )
        self._metric_truth_misses = metrics.counter(
            "socrates_engine_truth_cache_misses_total",
            help="truth-cache misses (model evaluations paid)",
        )
        self._metric_batch = metrics.histogram(
            "socrates_engine_batch_points",
            boundaries=DEFAULT_SIZE_BUCKETS,
            help="points per evaluate() batch",
        )
        self._metric_masked = metrics.counter(
            "socrates_engine_points_masked_total",
            help="design points skipped by a static prune mask",
        )
        self._compile_cache = CompileCache(self._compiler)
        self._profile_cache = ProfileCache()
        # model truths are pure functions of (kernel, placement): cache
        # them so repeated visits (leave-one-out corpus rebuilds, suite
        # sweeps) never re-run the machine model
        self._truth_cache: Dict[Tuple[CompileKey, int, str, Optional[str]], Truth] = {}
        self._truth_hits = 0
        self._truth_misses = 0
        self._points_evaluated = 0
        self._points_masked = 0

    # -- shared components ---------------------------------------------------

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def compiler(self) -> Compiler:
        return self._compiler

    @property
    def executor(self) -> MachineExecutor:
        return self._executor

    @property
    def omp(self) -> OpenMPRuntime:
        return self._omp

    @property
    def backend(self):
        return self._backend

    @property
    def obs(self) -> Observability:
        return self._obs

    @property
    def compile_cache(self) -> CompileCache:
        return self._compile_cache

    @property
    def profile_cache(self) -> ProfileCache:
        return self._profile_cache

    # -- cached characterization ---------------------------------------------

    def unit(self, app: BenchmarkApp):
        """The shared read-only AST of ``app`` (parsed once)."""
        return self._profile_cache.unit(app)

    def profile(
        self, app: BenchmarkApp, kernel: Optional[str] = None
    ) -> WorkloadProfile:
        """The cached workload profile of ``app``'s kernel."""
        return self._profile_cache.profile(app, kernel)

    def features(
        self, app: BenchmarkApp, kernel: Optional[str] = None
    ) -> FeatureVector:
        """The cached Milepost feature vector of ``app``'s kernel."""
        return self._profile_cache.features(app, kernel)

    # -- cached compilation ----------------------------------------------------

    def compile(
        self, profile: WorkloadProfile, config: FlagConfiguration
    ) -> CompiledKernel:
        """Compile through the counting cache (one compile per CF)."""
        return self._compile_cache.get(profile, config)

    # -- batched evaluation ----------------------------------------------------

    def evaluate(
        self,
        profile: WorkloadProfile,
        points: Sequence[DesignPoint],
        repetitions: int = 1,
        noisy: bool = True,
        mask: Optional[Sequence[bool]] = None,
    ) -> List[ProfiledSample]:
        """Measure ``points``, ``repetitions`` times each.

        Compiles each distinct configuration exactly once, draws the
        noise factors for every (point, repetition) in canonical order
        from the executor's seeded stream, then lets the backend
        compute the noise-free truths.  ``noisy=False`` skips the
        noise draws entirely (iterative-compilation mode) and leaves
        the executor's stream untouched.

        ``mask`` (aligned with ``points``; True = skip) implements
        static pruning: masked points still consume their noise draws
        — keeping every surviving sample bit-identical to an unmasked
        run — but pay no compilation, no model evaluation, and return
        no sample.  Only unmasked points count as evaluated.
        """
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if mask is not None and len(mask) != len(points):
            raise ValueError(
                f"mask length {len(mask)} != points length {len(points)}"
            )
        with self._obs.tracer.span(
            "engine.evaluate",
            kernel=profile.kernel,
            points=len(points),
            repetitions=repetitions,
            noisy=noisy,
            backend=self._backend.name,
        ):
            return self._evaluate(profile, points, repetitions, noisy, mask)

    def _evaluate(
        self,
        profile: WorkloadProfile,
        points: Sequence[DesignPoint],
        repetitions: int,
        noisy: bool,
        mask: Optional[Sequence[bool]] = None,
    ) -> List[ProfiledSample]:
        if mask is None:
            mask = [False] * len(points)
        kernels: Dict[str, CompiledKernel] = {}
        for point, masked in zip(points, mask):
            if masked:
                continue
            label = point.compiler.label
            if label not in kernels:
                kernels[label] = self.compile(profile, point.compiler)
        # Noise is drawn before the truths are computed: the draw order
        # (point-major, repetition-minor, time then power) matches the
        # historical interleaved run() loop, keeping the stream state
        # bit-identical while paying only one model evaluation per point.
        # Masked points draw too — the stream position of every
        # surviving point must not depend on what was pruned.
        factor_blocks = (
            [self._executor.noise_factors(repetitions) for _ in points]
            if noisy
            else None
        )
        point_keys = [
            (
                CompileCache.key(profile, point.compiler),
                point.threads,
                point.binding.value,
                point.cluster,
            )
            if not masked
            else None
            for point, masked in zip(points, mask)
        ]
        missing: Dict[Tuple[CompileKey, int, str, Optional[str]], WorkItem] = {}
        for point, key in zip(points, point_keys):
            if key is None:
                continue
            if key not in self._truth_cache and key not in missing:
                missing[key] = (
                    kernels[point.compiler.label],
                    point.threads,
                    point.binding.value,
                    point.cluster,
                )
        if missing:
            tracer = self._obs.tracer
            # the tracer kwarg is only passed when tracing, so backends
            # predating (or ignorant of) repro.obs keep working
            extra = {"tracer": tracer} if tracer.enabled else {}
            with tracer.span(
                "backend.run_truths", items=len(missing), backend=self._backend.name
            ):
                computed = self._backend.run_truths(
                    self._executor, self._omp, list(missing.values()), **extra
                )
            for key, truth in zip(missing, computed):
                self._truth_cache[key] = truth
        surviving = sum(1 for key in point_keys if key is not None)
        masked_count = len(points) - surviving
        self._truth_misses += len(missing)
        self._truth_hits += surviving - len(missing)
        self._metric_truth_misses.inc(len(missing))
        self._metric_truth_hits.inc(surviving - len(missing))
        self._metric_batch.observe(len(points))
        samples: List[ProfiledSample] = []
        for index, point in enumerate(points):
            key = point_keys[index]
            if key is None:
                continue
            time_truth, power_truth = self._truth_cache[key]
            if factor_blocks is not None:
                block = factor_blocks[index]
                times = [time_truth * time_factor for time_factor, _ in block]
                powers = [power_truth * power_factor for _, power_factor in block]
            else:
                times = [time_truth] * repetitions
                powers = [power_truth] * repetitions
            samples.append(ProfiledSample(point=point, times=times, powers=powers))
        self._points_evaluated += surviving
        self._points_masked += masked_count
        self._metric_points.inc(surviving)
        if masked_count:
            self._metric_masked.inc(masked_count)
        return samples

    # -- accounting -------------------------------------------------------------

    @property
    def counters(self) -> EngineCounters:
        return EngineCounters(
            compile_hits=self._compile_cache.stats.hits,
            compile_misses=self._compile_cache.stats.misses,
            profile_hits=self._profile_cache.stats.hits,
            profile_misses=self._profile_cache.stats.misses,
            truth_hits=self._truth_hits,
            truth_misses=self._truth_misses,
            points_evaluated=self._points_evaluated,
            points_masked=self._points_masked,
        )

    def stats(self) -> Dict[str, object]:
        """JSON-able cache/evaluation statistics."""
        return {
            "backend": self._backend.name,
            "compile_cache": {
                **self._compile_cache.stats.as_dict(),
                "entries": len(self._compile_cache),
            },
            "profile_cache": self._profile_cache.stats.as_dict(),
            "truth_cache": {
                "hits": self._truth_hits,
                "misses": self._truth_misses,
                "entries": len(self._truth_cache),
            },
            "points_evaluated": self._points_evaluated,
            "points_masked": self._points_masked,
        }
