"""Static feature vectors over kernel functions.

Milepost-GCC extracts ~56 features (ft1..ft56) from GIMPLE: basic
block counts, instruction mixes, CFG edges, loop metadata, memory
accesses.  The CIR equivalent below covers the same families; names
keep the ``ftNN`` convention with a descriptive suffix.

Features are raw counts plus a few ratios; COBAYN discretizes and
normalizes them itself (:mod:`repro.cobayn.discretize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.cir import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Decl,
    DeclGroup,
    For,
    FunctionDef,
    Ident,
    If,
    Pragma,
    TernaryOp,
    TranslationUnit,
    UnaryOp,
    walk,
)
from repro.cir.analysis import census, collect_loops, max_loop_depth

#: Ordered feature names (the schema of every vector).
FEATURE_NAMES: Tuple[str, ...] = (
    "ft1_basic_blocks",
    "ft2_statements",
    "ft3_assignments",
    "ft4_binary_int_ops",
    "ft5_binary_fp_ops",
    "ft6_multiplies",
    "ft7_divisions",
    "ft8_comparisons",
    "ft9_logical_ops",
    "ft10_array_loads",
    "ft11_array_stores",
    "ft12_scalar_refs",
    "ft13_calls",
    "ft14_math_calls",
    "ft15_branches",
    "ft16_loops",
    "ft17_loop_nest_depth",
    "ft18_innermost_loops",
    "ft19_perfect_nests",
    "ft20_omp_pragmas",
    "ft21_params",
    "ft22_array_params",
    "ft23_local_decls",
    "ft24_max_array_rank",
    "ft25_unary_ops",
    "ft26_ternary_ops",
    "ft27_returns",
    "ft28_cfg_edges",
    "ft29_mem_ratio",
    "ft30_fp_ratio",
    "ft31_store_load_ratio",
    "ft32_branch_ratio",
    "ft33_call_ratio",
    "ft34_avg_loop_body_stmts",
    "ft35_mul_ratio",
    "ft36_div_ratio",
    "ft37_accum_statements",
    "ft38_if_in_loops",
    "ft39_reduction_loops",
    "ft40_stride_one_refs",
)


@dataclass(frozen=True)
class FeatureVector:
    """One kernel's static characterization."""

    kernel: str
    values: Mapping[str, float]

    def as_array(self) -> np.ndarray:
        """Values in :data:`FEATURE_NAMES` order."""
        return np.array([self.values[name] for name in FEATURE_NAMES], dtype=float)

    def __getitem__(self, name: str) -> float:
        return self.values[name]


def _count_statements(func: FunctionDef) -> int:
    from repro.cir import Stmt

    return sum(
        1
        for node in walk(func.body)
        if isinstance(node, Stmt) and not isinstance(node, (Block, DeclGroup))
    )


def _basic_blocks(func: FunctionDef) -> int:
    """CFG basic-block estimate: 2 (entry/exit) + splits per branch/loop."""
    blocks = 2
    for node in walk(func.body):
        if isinstance(node, If):
            blocks += 3 if node.other is not None else 2
        elif isinstance(node, For):
            blocks += 3  # header, body, latch
    return blocks


def _cfg_edges(func: FunctionDef) -> int:
    edges = 1
    for node in walk(func.body):
        if isinstance(node, If):
            edges += 3 if node.other is not None else 2
        elif isinstance(node, For):
            edges += 3
    return edges


def _accumulation_statements(func: FunctionDef) -> int:
    count = 0
    for node in walk(func.body):
        if isinstance(node, Assign) and node.op in ("+=", "-=", "*=", "/="):
            count += 1
    return count


def _stride_one_refs(func: FunctionDef, loops) -> int:
    """Array references whose *last* index is a bare induction variable
    of some enclosing loop — i.e. contiguous (stride-1) accesses."""
    ivs = {info.induction_variable for info in loops if info.induction_variable}
    count = 0
    for node in walk(func.body):
        if isinstance(node, ArrayRef) and node.indices:
            last = node.indices[-1]
            if isinstance(last, Ident) and last.name in ivs:
                count += 1
    return count


def extract_features(unit: TranslationUnit, kernel: str) -> FeatureVector:
    """Extract the feature vector of one kernel function in ``unit``."""
    func = unit.function(kernel)
    stats = census(func.body)
    loops = collect_loops(func.body)
    innermost = [info for info in loops if not info.children]
    perfect = sum(
        1
        for info in loops
        if len(info.children) == 1 and _single_statement_body(info.node)
    )
    omp_pragmas = sum(
        1 for node in walk(func.body) if isinstance(node, Pragma) and node.is_omp
    )
    unary_ops = sum(1 for node in walk(func.body) if isinstance(node, UnaryOp))
    ternary_ops = sum(1 for node in walk(func.body) if isinstance(node, TernaryOp))
    local_decls = sum(
        1 for node in walk(func.body) if isinstance(node, (Decl,))
    ) + sum(
        len(node.decls) for node in walk(func.body) if isinstance(node, DeclGroup)
    )
    array_ranks = [
        len(node.indices) for node in walk(func.body) if isinstance(node, ArrayRef)
    ]
    if_in_loops = sum(
        1
        for info in loops
        for node in walk(info.node.body)
        if isinstance(node, If)
    )
    reduction_loops = _reduction_loop_count(innermost)
    statements = _count_statements(func)
    total_ops = max(1.0, float(stats.total_ops))
    loads = float(stats.array_loads)
    body_stmt_counts = [
        sum(1 for _ in walk(info.node.body)) for info in loops
    ]

    values: Dict[str, float] = {
        "ft1_basic_blocks": float(_basic_blocks(func)),
        "ft2_statements": float(statements),
        "ft3_assignments": float(stats.assignments),
        "ft4_binary_int_ops": float(stats.binary_int_ops),
        "ft5_binary_fp_ops": float(stats.binary_fp_ops),
        "ft6_multiplies": float(stats.multiplies),
        "ft7_divisions": float(stats.divisions),
        "ft8_comparisons": float(stats.comparisons),
        "ft9_logical_ops": float(stats.logical_ops),
        "ft10_array_loads": loads,
        "ft11_array_stores": float(stats.array_stores),
        "ft12_scalar_refs": float(stats.scalar_refs),
        "ft13_calls": float(stats.calls),
        "ft14_math_calls": float(stats.math_calls),
        "ft15_branches": float(stats.branches),
        "ft16_loops": float(len(loops)),
        "ft17_loop_nest_depth": float(max_loop_depth(func)),
        "ft18_innermost_loops": float(len(innermost)),
        "ft19_perfect_nests": float(perfect),
        "ft20_omp_pragmas": float(omp_pragmas),
        "ft21_params": float(len(func.params)),
        "ft22_array_params": float(sum(1 for p in func.params if p.array_dims)),
        "ft23_local_decls": float(local_decls),
        "ft24_max_array_rank": float(max(array_ranks) if array_ranks else 0),
        "ft25_unary_ops": float(unary_ops),
        "ft26_ternary_ops": float(ternary_ops),
        "ft27_returns": float(stats.returns),
        "ft28_cfg_edges": float(_cfg_edges(func)),
        "ft29_mem_ratio": (loads + stats.array_stores) / total_ops,
        "ft30_fp_ratio": stats.binary_fp_ops / total_ops,
        "ft31_store_load_ratio": stats.array_stores / max(1.0, loads),
        "ft32_branch_ratio": stats.branches / total_ops,
        "ft33_call_ratio": stats.calls / total_ops,
        "ft34_avg_loop_body_stmts": (
            float(np.mean(body_stmt_counts)) if body_stmt_counts else 0.0
        ),
        "ft35_mul_ratio": stats.multiplies / total_ops,
        "ft36_div_ratio": stats.divisions / total_ops,
        "ft37_accum_statements": float(_accumulation_statements(func)),
        "ft38_if_in_loops": float(if_in_loops),
        "ft39_reduction_loops": float(reduction_loops),
        "ft40_stride_one_refs": float(_stride_one_refs(func, loops)),
    }
    return FeatureVector(kernel=kernel, values=values)


def _single_statement_body(loop: For) -> bool:
    body = loop.body
    if isinstance(body, Block):
        real = [stmt for stmt in body.stmts if not isinstance(stmt, Pragma)]
        return len(real) == 1
    return True


def _reduction_loop_count(innermost) -> int:
    from repro.polybench.workload import _is_reduction_loop

    return sum(
        1
        for info in innermost
        if _is_reduction_loop(info.node, info.induction_variable)
    )


def extract_features_from_app(app) -> List[FeatureVector]:
    """Feature vectors of every kernel function of a BenchmarkApp."""
    unit = app.parse()
    return [extract_features(unit, kernel) for kernel in app.kernels]
