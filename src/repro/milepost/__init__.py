"""Milepost-GCC style static code-feature extraction.

SOCRATES characterizes every kernel with static features extracted by
GCC-Milepost (Fursin et al.) and feeds them to COBAYN.  This package
computes the same *families* of features — instruction mix, CFG shape,
loop structure, memory-access profile — directly on the CIR AST, at
the kernel-function granularity the paper adapted COBAYN to.
"""

from repro.milepost.features import (
    FEATURE_NAMES,
    FeatureVector,
    extract_features,
    extract_features_from_app,
)

__all__ = [
    "FEATURE_NAMES",
    "FeatureVector",
    "extract_features",
    "extract_features_from_app",
]
