"""`repro.bench` — the performance observatory.

Layered on :mod:`repro.obs`, this package gives the repo a
longitudinal performance record of *itself*:

* :mod:`repro.bench.scenarios` — a registry of standardized workloads
  (single build, 12-app suite sweep, DSE exploration, COBAYN corpus,
  MAPE-K adaptation loop), each run under tracing with wall time,
  per-span totals, engine counters and peak RSS collected;
* :mod:`repro.bench.stats` — robust statistics (median + MAD, not
  mean/stdev) so shared-runner noise cannot poison a baseline;
* :mod:`repro.bench.baseline` — the schema-versioned
  ``BENCH_<scenario>.json`` committed next to the code;
* :mod:`repro.bench.gate` — the regression gate: MAD-scaled
  thresholds, exact fingerprint matching, and span-level trace-diff
  attribution of any wall-time delta;
* :mod:`repro.bench.measure` — the span-based timing helpers shared
  with the tier-2 component benchmarks.

CLI: ``socrates bench list / run / compare / gate``.
"""

from repro.bench.baseline import (
    SCHEMA,
    BaselineError,
    BaselineFormatError,
    BaselineNotFoundError,
    BaselineSchemaError,
    BenchBaseline,
    StackBaseline,
    StageBaseline,
    baseline_filename,
    load_baseline,
    load_baselines,
    load_scenario_baseline,
    save_baseline,
)
from repro.bench.gate import (
    DEFAULT_ENERGY_TOLERANCE,
    DEFAULT_MAD_K,
    DEFAULT_MIN_DELTA_S,
    DEFAULT_THRESHOLD,
    EnergyVerdict,
    GateReport,
    RatioVerdict,
    StageVerdict,
    compare_result,
)
from repro.bench.measure import AlertOverheadProbe, SpanTimer, peak_rss_kb
from repro.bench.scenarios import (
    BenchScenario,
    ScenarioResult,
    all_scenarios,
    get_scenario,
    quick_scenarios,
    run_scenario,
)
from repro.bench.stats import RobustStats, mad, median

__all__ = [
    "SCHEMA",
    "DEFAULT_ENERGY_TOLERANCE",
    "DEFAULT_MAD_K",
    "DEFAULT_MIN_DELTA_S",
    "DEFAULT_THRESHOLD",
    "AlertOverheadProbe",
    "BaselineError",
    "BaselineFormatError",
    "BaselineNotFoundError",
    "BaselineSchemaError",
    "BenchBaseline",
    "BenchScenario",
    "EnergyVerdict",
    "GateReport",
    "RatioVerdict",
    "RobustStats",
    "ScenarioResult",
    "SpanTimer",
    "StackBaseline",
    "StageBaseline",
    "StageVerdict",
    "all_scenarios",
    "baseline_filename",
    "compare_result",
    "get_scenario",
    "load_baseline",
    "load_baselines",
    "load_scenario_baseline",
    "mad",
    "median",
    "peak_rss_kb",
    "quick_scenarios",
    "run_scenario",
    "save_baseline",
]
