"""The regression gate: fresh run vs. committed baseline.

``socrates bench gate`` re-runs a scenario and compares it against the
committed ``BENCH_<scenario>.json``:

* **wall time** and **every span name's total** are compared median
  against median; a value regresses when it exceeds
  ``base.median + max(threshold * base.median, mad_k * base.mad,
  min_delta_s)`` — the relative threshold absorbs machine-to-machine
  speed differences, the MAD term absorbs the scenario's own measured
  jitter, and the absolute floor keeps microsecond-level span names
  from tripping on scheduling noise;
* the **workload fingerprint** (deterministic counters: points
  evaluated, cache misses, knowledge sizes) must match exactly — a
  mismatch means the PR changed how much work the pipeline does, which
  no timing threshold should absorb silently;
* the wall-time delta is **attributed** via span-level trace diffing
  (:mod:`repro.obs.diff`): the verdict names the offending span, and
  the report embeds the full per-span-name diff sorted by |delta|;
* when the baseline committed per-stack medians (the profiling
  observatory's collapse, see :mod:`repro.obs.profile`), the verdict
  also names the offending *stack* — the folded path whose self time
  grew the most under the regressed span name — so a regression
  points at a call path, not just a name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.baseline import BenchBaseline
from repro.bench.scenarios import ScenarioResult
from repro.bench.stats import RobustStats, median
from repro.obs.diff import SpanAggregate, TraceDiff, diff_profiles, format_diff
from repro.obs.profile import STACK_SEP, FlameProfile, StackDiff, StackStat, diff_flame

#: Default relative regression threshold (fraction of the baseline median).
DEFAULT_THRESHOLD = 0.5
#: Default MAD multiplier.
DEFAULT_MAD_K = 6.0
#: Default absolute floor in seconds: deltas below this never regress.
DEFAULT_MIN_DELTA_S = 0.05
#: Default relative tolerance for energy columns.  Energy is seeded
#: and deterministic on one platform, but last-bit floating point may
#: drift across numpy builds — a tolerance comparison (unlike the
#: exact-match fingerprint) absorbs that while still catching a
#: configuration pick that burns measurably more joules.
DEFAULT_ENERGY_TOLERANCE = 0.05


@dataclass(frozen=True)
class StageVerdict:
    """One compared quantity (wall time or one span name)."""

    name: str
    baseline_s: float
    fresh_s: float
    limit_s: float
    regressed: bool
    status: str = "changed"  # "changed" | "added" | "removed"

    @property
    def delta_s(self) -> float:
        return self.fresh_s - self.baseline_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "baseline_s": self.baseline_s,
            "fresh_s": self.fresh_s,
            "limit_s": self.limit_s,
            "delta_s": self.delta_s,
            "regressed": self.regressed,
        }


@dataclass(frozen=True)
class EnergyVerdict:
    """One energy domain compared against its committed joules."""

    domain: str
    baseline_j: float
    fresh_j: float
    limit_j: float
    regressed: bool

    @property
    def delta_j(self) -> float:
        return self.fresh_j - self.baseline_j

    def as_dict(self) -> Dict[str, object]:
        return {
            "domain": self.domain,
            "baseline_j": self.baseline_j,
            "fresh_j": self.fresh_j,
            "limit_j": self.limit_j,
            "delta_j": self.delta_j,
            "regressed": self.regressed,
        }


@dataclass(frozen=True)
class RatioVerdict:
    """One named dimensionless ratio against its hand-committed cap.

    Unlike timings, ratio caps are absolute (no MAD scaling): a ratio
    such as the alerting/plain overhead is already self-normalized
    against the machine's speed, so the committed limit applies
    directly.  A fresh run that stopped publishing a gated ratio
    regresses too — silently dropping the measurement must not pass.
    """

    name: str
    baseline_ratio: float
    fresh: float
    limit: float
    regressed: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline_ratio": self.baseline_ratio,
            "fresh": self.fresh,
            "limit": self.limit,
            "regressed": self.regressed,
        }


@dataclass
class GateReport:
    """The full verdict of one scenario comparison."""

    scenario: str
    wall: StageVerdict
    stages: List[StageVerdict]
    fingerprint_ok: bool
    fingerprint_diffs: Dict[str, object] = field(default_factory=dict)
    diff: Optional[TraceDiff] = None
    energy: List[EnergyVerdict] = field(default_factory=list)
    ratios: List[RatioVerdict] = field(default_factory=list)
    #: per-stack differential profile (baseline medians vs. fresh
    #: medians); present only when the baseline committed stacks
    stack_diff: Optional[StackDiff] = None

    @property
    def offenders(self) -> List[StageVerdict]:
        """Regressed stages, largest delta first."""
        return sorted(
            [verdict for verdict in self.stages if verdict.regressed],
            key=lambda verdict: -verdict.delta_s,
        )

    @property
    def energy_offenders(self) -> List[EnergyVerdict]:
        """Regressed energy domains, largest delta first."""
        return sorted(
            [verdict for verdict in self.energy if verdict.regressed],
            key=lambda verdict: -verdict.delta_j,
        )

    def offending_stack(self, name: Optional[str] = None):
        """The grown stack with the largest Δself, optionally among
        stacks containing span ``name`` as a frame.  Returns the
        :class:`~repro.obs.profile.StackDelta` or ``None`` when the
        baseline committed no stacks (or nothing grew)."""
        if self.stack_diff is None:
            return None
        candidates = [
            delta
            for delta in self.stack_diff.deltas
            if delta.delta_s > 0
            and (name is None or name in delta.stack.split(STACK_SEP))
        ]
        return candidates[0] if candidates else None

    @property
    def ok(self) -> bool:
        return (
            self.fingerprint_ok
            and not self.wall.regressed
            and not any(verdict.regressed for verdict in self.stages)
            and not any(verdict.regressed for verdict in self.energy)
            and not any(verdict.regressed for verdict in self.ratios)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "wall": self.wall.as_dict(),
            "stages": [verdict.as_dict() for verdict in self.stages],
            "fingerprint_ok": self.fingerprint_ok,
            "fingerprint_diffs": dict(self.fingerprint_diffs),
            "offenders": [verdict.name for verdict in self.offenders],
            "energy": [verdict.as_dict() for verdict in self.energy],
            "energy_offenders": [
                verdict.domain for verdict in self.energy_offenders
            ],
            "ratios": [verdict.as_dict() for verdict in self.ratios],
            "ratio_offenders": [
                verdict.name for verdict in self.ratios if verdict.regressed
            ],
            "stack_offenders": [
                delta.as_dict()
                for delta in (
                    self.stack_diff.deltas if self.stack_diff is not None else []
                )
                if delta.delta_s > 0
            ][:5],
        }

    def format(self, diff_limit: int = 15) -> str:
        lines = [f"bench gate: scenario '{self.scenario}'"]
        wall = self.wall
        lines.append(
            f"  wall {wall.baseline_s:.4f}s -> {wall.fresh_s:.4f}s "
            f"(limit {wall.limit_s:.4f}s) "
            f"{'REGRESSED' if wall.regressed else 'ok'}"
        )
        if not self.fingerprint_ok:
            lines.append("  workload fingerprint DRIFTED:")
            for key, pair in sorted(self.fingerprint_diffs.items()):
                lines.append(f"    {key}: {pair[0]!r} -> {pair[1]!r}")  # type: ignore[index]
        offenders = self.offenders
        if offenders:
            worst = offenders[0]
            lines.append(
                f"  REGRESSION attributed to span '{worst.name}' "
                f"({worst.baseline_s:.4f}s -> {worst.fresh_s:.4f}s, "
                f"+{worst.delta_s:.4f}s over limit {worst.limit_s:.4f}s)"
            )
            stack = self.offending_stack(worst.name) or self.offending_stack()
            if stack is not None:
                lines.append(
                    f"    offending stack: {stack.stack} "
                    f"(+{stack.delta_s:.4f}s self)"
                )
            for verdict in offenders[1:]:
                lines.append(
                    f"    also regressed: '{verdict.name}' "
                    f"(+{verdict.delta_s:.4f}s)"
                )
        elif wall.regressed:
            stack = self.offending_stack()
            if stack is not None:
                lines.append(
                    f"  wall regression's worst-grown stack: {stack.stack} "
                    f"(+{stack.delta_s:.4f}s self)"
                )
        elif self.fingerprint_ok:
            lines.append("  all spans within thresholds")
        if self.energy:
            energy_offenders = self.energy_offenders
            if energy_offenders:
                for verdict in energy_offenders:
                    lines.append(
                        f"  ENERGY REGRESSED in domain '{verdict.domain}': "
                        f"{verdict.baseline_j:.2f}J -> {verdict.fresh_j:.2f}J "
                        f"(limit {verdict.limit_j:.2f}J)"
                    )
            else:
                package = next(
                    (v for v in self.energy if v.domain == "package"), None
                )
                detail = (
                    f" (package {package.baseline_j:.2f}J -> "
                    f"{package.fresh_j:.2f}J)"
                    if package is not None
                    else ""
                )
                lines.append(f"  energy within tolerance{detail}")
        for verdict in self.ratios:
            if verdict.regressed:
                fresh = (
                    "missing"
                    if verdict.fresh != verdict.fresh  # NaN = not published
                    else f"{verdict.fresh:.4f}"
                )
                lines.append(
                    f"  RATIO '{verdict.name}' REGRESSED: {fresh} "
                    f"over cap {verdict.limit:.4f} "
                    f"(baseline {verdict.baseline_ratio:.4f})"
                )
                stack = self.offending_stack()
                if stack is not None:
                    lines.append(
                        f"    worst-grown stack: {stack.stack} "
                        f"(+{stack.delta_s:.4f}s self)"
                    )
            else:
                lines.append(
                    f"  ratio '{verdict.name}' {verdict.fresh:.4f} "
                    f"within cap {verdict.limit:.4f}"
                )
        if self.diff is not None:
            lines.append("  trace diff (baseline -> fresh, |delta| desc):")
            lines.extend(
                "    " + line
                for line in format_diff(
                    self.diff,
                    limit=diff_limit,
                    label_a="base",
                    label_b="new",
                ).splitlines()
            )
        return "\n".join(lines)


def _limit(
    stats: RobustStats, threshold: float, mad_k: float, min_delta_s: float
) -> float:
    return stats.median + max(
        threshold * stats.median, mad_k * stats.mad, min_delta_s
    )


def compare_result(
    baseline: BenchBaseline,
    result: ScenarioResult,
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
    energy_tolerance: float = DEFAULT_ENERGY_TOLERANCE,
) -> GateReport:
    """Compare a fresh :class:`ScenarioResult` against its baseline."""
    if baseline.scenario != result.scenario:
        raise ValueError(
            f"baseline is for scenario {baseline.scenario!r}, "
            f"fresh run is {result.scenario!r}"
        )
    fresh_wall = median(result.wall_s)
    wall_limit = _limit(baseline.wall_s, threshold, mad_k, min_delta_s)
    wall = StageVerdict(
        name="wall",
        baseline_s=baseline.wall_s.median,
        fresh_s=fresh_wall,
        limit_s=wall_limit,
        regressed=fresh_wall > wall_limit,
    )

    # the root bench span IS the wall time; a stage verdict for it
    # would only duplicate the wall verdict and steal the attribution
    root = f"bench:{baseline.scenario}"
    stages: List[StageVerdict] = []
    fresh_names = {name for name in result.span_totals if name != root}
    for name, stage in sorted(baseline.stages.items()):
        if name == root:
            continue
        if name not in fresh_names:
            stages.append(
                StageVerdict(
                    name=name,
                    baseline_s=stage.total_s.median,
                    fresh_s=0.0,
                    limit_s=_limit(stage.total_s, threshold, mad_k, min_delta_s),
                    regressed=False,
                    status="removed",
                )
            )
            continue
        fresh = median(result.span_totals[name])
        limit = _limit(stage.total_s, threshold, mad_k, min_delta_s)
        stages.append(
            StageVerdict(
                name=name,
                baseline_s=stage.total_s.median,
                fresh_s=fresh,
                limit_s=limit,
                regressed=fresh > limit,
            )
        )
    for name in sorted(fresh_names - set(baseline.stages)):
        fresh = median(result.span_totals[name])
        # a brand-new span name has no baseline spread to scale by:
        # only the absolute floor applies
        stages.append(
            StageVerdict(
                name=name,
                baseline_s=0.0,
                fresh_s=fresh,
                limit_s=min_delta_s,
                regressed=fresh > min_delta_s,
                status="added",
            )
        )

    fingerprint_diffs = {
        key: (baseline.fingerprint.get(key), result.fingerprint.get(key))
        for key in set(baseline.fingerprint) | set(result.fingerprint)
        if baseline.fingerprint.get(key) != result.fingerprint.get(key)
    }

    # energy columns: compared per domain with a relative tolerance —
    # only for domains the baseline committed (older baselines carry
    # none, so the gate stays backward compatible)
    energy: List[EnergyVerdict] = []
    for domain in sorted(baseline.energy_j):
        baseline_j = baseline.energy_j[domain]
        fresh_j = result.energy_j.get(domain, 0.0)
        limit_j = baseline_j * (1.0 + energy_tolerance)
        energy.append(
            EnergyVerdict(
                domain=domain,
                baseline_j=baseline_j,
                fresh_j=fresh_j,
                limit_j=limit_j,
                regressed=fresh_j > limit_j,
            )
        )

    # gated ratios: only names with a hand-committed cap in the
    # baseline participate; a cap without a fresh measurement regresses
    ratio_verdicts: List[RatioVerdict] = []
    for name in sorted(baseline.ratio_limits):
        limit = baseline.ratio_limits[name]
        samples = result.ratios.get(name, [])
        if samples:
            fresh_ratio = median(samples)
            regressed = fresh_ratio > limit
        else:
            fresh_ratio = float("nan")
            regressed = True
        ratio_verdicts.append(
            RatioVerdict(
                name=name,
                baseline_ratio=baseline.ratios.get(name, 0.0),
                fresh=fresh_ratio,
                limit=limit,
                regressed=regressed,
            )
        )

    baseline_profile = {
        name: SpanAggregate(count=stage.count, total_s=stage.total_s.median)
        for name, stage in baseline.stages.items()
    }
    fresh_profile = {
        name: SpanAggregate(
            count=result.span_counts.get(name, 0),
            total_s=median(samples),
        )
        for name, samples in result.span_totals.items()
    }

    # per-stack attribution: median-vs-median flame diff, only when
    # the baseline committed stacks (older baselines stay comparable)
    stack_diff = None
    if baseline.stacks and result.stack_totals:
        base_flame = FlameProfile(label="baseline")
        for stack, record in baseline.stacks.items():
            base_flame.stacks[stack] = StackStat(
                self_s=record.self_s.median, count=record.count
            )
        fresh_flame = FlameProfile(label="fresh")
        for stack, samples in result.stack_totals.items():
            fresh_flame.stacks[stack] = StackStat(
                self_s=median(samples),
                count=result.stack_counts.get(stack, 0),
            )
        stack_diff = diff_flame(
            base_flame, fresh_flame, label_a="baseline", label_b="fresh"
        )
    return GateReport(
        scenario=result.scenario,
        wall=wall,
        stages=stages,
        fingerprint_ok=not fingerprint_diffs,
        fingerprint_diffs=fingerprint_diffs,
        diff=diff_profiles(baseline_profile, fresh_profile),
        energy=energy,
        ratios=ratio_verdicts,
        stack_diff=stack_diff,
    )
