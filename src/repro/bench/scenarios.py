"""The benchmark scenario registry: standardized, repeatable workloads.

Each scenario is one named, self-contained workload exercising a
pipeline the repo's performance story depends on — a single adaptive
build, the 12-app suite sweep (the 2.0x engine win), a DSE
exploration, a COBAYN corpus build, a MAPE-K adaptation loop.  The
harness (:func:`run_scenario`) runs a scenario N times, each repeat
under a fresh enabled :class:`~repro.obs.Observability`, and collects:

* **wall time** — the duration of the root ``bench:<scenario>`` span
  (timed through the tracer, the same code path every other
  measurement in the repo uses);
* **per-span-name totals** — the trace aggregated with
  :func:`repro.obs.diff.aggregate_spans`, so a baseline knows where
  the time went, not just how much there was;
* **engine counters and a workload fingerprint** — deterministic
  numbers (cache misses, points evaluated, knowledge-base sizes) that
  must be identical across repeats; a mismatch means the workload
  itself is nondeterministic and the run is rejected;
* **peak RSS** — recorded as context (never gated on).

Scenario configurations are deliberately small (reduced thread sweeps,
two DSE repetitions) so a full bench run stays CI-friendly; they are
fixed constants, because a baseline is only comparable to runs of the
exact same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs import Observability
from repro.obs.diff import aggregate_spans
from repro.obs.profile import FlameProfile
from repro.obs.tracing import Span

from repro.bench.measure import peak_rss_kb

#: Thread counts used by the quick scenario configurations.
_QUICK_THREADS = [1, 4, 16]
#: DSE repetitions used by the quick scenario configurations.
_QUICK_REPS = 2


@dataclass(frozen=True)
class BenchScenario:
    """One registered workload."""

    name: str
    description: str
    runner: Callable[[Observability], Dict[str, object]]
    quick: bool = True  # cheap enough for the default CI gate


_REGISTRY: Dict[str, BenchScenario] = {}


def register(
    name: str, description: str, quick: bool = True
) -> Callable[[Callable], Callable]:
    """Decorator adding a runner to the registry under ``name``."""

    def wrap(runner: Callable[[Observability], Dict[str, object]]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = BenchScenario(
            name=name, description=description, runner=runner, quick=quick
        )
        return runner

    return wrap


def get_scenario(name: str) -> BenchScenario:
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scenario {name!r} (known: {known})")
    return _REGISTRY[name]


def all_scenarios() -> List[BenchScenario]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def quick_scenarios() -> List[BenchScenario]:
    return [scenario for scenario in all_scenarios() if scenario.quick]


# -- the workloads ------------------------------------------------------------


def _quick_toolflow(obs: Observability, **kwargs):
    from repro.core.toolflow import SocratesToolflow

    return SocratesToolflow(
        dse_repetitions=_QUICK_REPS,
        thread_counts=_QUICK_THREADS,
        obs=obs,
        **kwargs,
    )


@register(
    "single_build",
    "full Figure 1 toolflow for one app (2mm), reduced thread sweep",
)
def _run_single_build(obs: Observability) -> Dict[str, object]:
    from repro.polybench.suite import load

    flow = _quick_toolflow(obs)
    result = flow.build(load("2mm"))
    counters = flow.engine.counters
    return {
        "knowledge_points": len(result.exploration.knowledge),
        "coverage": round(result.exploration.coverage, 6),
        "points_evaluated": counters.points_evaluated,
        "compile_misses": counters.compile_misses,
        "truth_misses": counters.truth_misses,
    }


@register(
    "suite_sweep",
    "build all 12 Polybench apps through one shared engine (the PR 1 "
    "2.0x hot path)",
    quick=False,  # ~8 s per repeat: run on demand, not in the default gate
)
def _run_suite_sweep(obs: Observability) -> Dict[str, object]:
    from repro.polybench.suite import all_apps

    flow = _quick_toolflow(obs)
    total_points = 0
    for app in all_apps():
        result = flow.build(app)
        total_points += len(result.exploration.knowledge)
    counters = flow.engine.counters
    return {
        "apps_built": len(all_apps()),
        "knowledge_points": total_points,
        "points_evaluated": counters.points_evaluated,
        "compile_misses": counters.compile_misses,
        "truth_hits": counters.truth_hits,
        "truth_misses": counters.truth_misses,
    }


@register(
    "dse_exploration",
    "full-factorial design-space exploration of 2mm over the standard "
    "levels x 1..32 threads",
)
def _run_dse_exploration(obs: Observability) -> Dict[str, object]:
    from repro.dse.explorer import DesignSpace, DesignSpaceExplorer
    from repro.engine.core import EvaluationEngine
    from repro.gcc.flags import standard_levels
    from repro.polybench.suite import load

    engine = EvaluationEngine(obs=obs)
    explorer = DesignSpaceExplorer(
        engine.compiler,
        engine.executor,
        engine.omp,
        repetitions=3,
        engine=engine,
    )
    space = DesignSpace(
        compiler_configs=standard_levels(), thread_counts=list(range(1, 33))
    )
    exploration = explorer.explore(engine.profile(load("2mm")), space)
    counters = engine.counters
    return {
        "knowledge_points": len(exploration.knowledge),
        "coverage": round(exploration.coverage, 6),
        "points_evaluated": counters.points_evaluated,
        "truth_misses": counters.truth_misses,
    }


@register(
    "dse_exploration_pruned",
    "statically pruned vs full DSE of syr2k: bit-identical fronts, "
    "fewer engine evaluations",
)
def _run_dse_exploration_pruned(obs: Observability) -> Dict[str, object]:
    from repro.analysis.cost import build_prune_plan
    from repro.dse.explorer import DesignSpace, DesignSpaceExplorer
    from repro.dse.pareto import pareto_front
    from repro.engine.core import EvaluationEngine
    from repro.gcc.flags import standard_levels
    from repro.polybench.suite import load

    app = load("syr2k")
    space = DesignSpace(
        compiler_configs=standard_levels(), thread_counts=list(range(1, 33))
    )
    objectives = [("throughput", True), ("power", False)]

    # each leg gets a fresh engine: the noise stream is positional, so
    # a shared engine would hand the second leg different draws
    def leg(plan):
        engine = EvaluationEngine(obs=obs)
        explorer = DesignSpaceExplorer(
            engine.compiler,
            engine.executor,
            engine.omp,
            repetitions=3,
            engine=engine,
        )
        profile = engine.profile(app)
        result = explorer.explore(profile, space, prune_plan=plan)
        return engine, profile, result, pareto_front(result.knowledge, objectives)

    full_engine, profile, full, full_front = leg(None)
    plan = build_prune_plan(
        app, space, machine=full_engine.machine, profile=profile
    )
    pruned_engine, _, pruned, pruned_front = leg(plan)

    def keys(front):
        return [
            (
                tuple(sorted(op.knobs.items())),
                tuple(
                    (name, stats.mean, stats.std)
                    for name, stats in sorted(op.metrics.items())
                ),
            )
            for op in front
        ]

    counters = pruned_engine.counters
    audit_records = len(obs.audit.prunes) if obs.audit is not None else 0
    return {
        "space_size": full.space_size,
        "full_points_evaluated": full_engine.counters.points_evaluated,
        "points_masked": counters.points_masked,
        "pruned_points": pruned.pruned_points,
        "points_evaluated": counters.points_evaluated,
        "fronts_identical": keys(full_front) == keys(pruned_front),
        "front_size": len(pruned_front),
        "audit_records": audit_records,
    }


@register(
    "cobayn_corpus",
    "iterative-compilation training corpus over the whole suite",
)
def _run_cobayn_corpus(obs: Observability) -> Dict[str, object]:
    from repro.cobayn.corpus import build_corpus
    from repro.engine.core import EvaluationEngine
    from repro.polybench.suite import all_apps

    engine = EvaluationEngine(obs=obs)
    corpus = build_corpus(
        all_apps(), engine.compiler, engine.executor, engine.omp, engine=engine
    )
    counters = engine.counters
    return {
        "examples": len(corpus.examples),
        "points_evaluated": counters.points_evaluated,
        "compile_misses": counters.compile_misses,
    }


@register(
    "adaptation_loop",
    "MAPE-K adaptation loop: quick build of mvt + 3 virtual seconds of "
    "a fig5-style requirement flip (~6k invocations)",
)
def _run_adaptation_loop(obs: Observability) -> Dict[str, object]:
    from repro.core.scenario import Phase, Scenario
    from repro.margot.state import (
        OptimizationState,
        maximize_throughput,
        maximize_throughput_per_watt_squared,
    )
    from repro.polybench.suite import load

    flow = _quick_toolflow(obs)
    result = flow.build(load("mvt"))
    app = result.adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    scenario = Scenario(
        phases=[Phase(0.0, "Thr/W^2"), Phase(1.0, "Throughput"), Phase(2.0, "Thr/W^2")],
        duration_s=3.0,
    )
    records = scenario.run(app)
    obs.absorb_engine(flow.engine)
    obs.absorb_monitors(app.manager.monitors)
    # the virtual-RAPL energy columns: recorded as metrics (picked up
    # by ScenarioResult.energy_j), NOT in the fingerprint — energy is
    # floating point and compared with a tolerance by the gate, while
    # the fingerprint demands exact equality
    from repro.obs.energy import build_timeline

    build_timeline(app, records).record_metrics(obs.metrics)
    return {
        "invocations": len(records),
        "switches": len(obs.audit) if obs.audit is not None else 0,
        "points_evaluated": flow.engine.counters.points_evaluated,
    }


@register(
    "biglittle_power_cap",
    "heterogeneous adaptation: quick build of mvt on biglittle_4p4e, "
    "power cap flips the cluster knob from P (race-to-idle) to E "
    "(slow-and-steady); ledger verified per cluster domain",
)
def _run_biglittle_power_cap(obs: Observability) -> Dict[str, object]:
    from repro.core.scenario import Phase, Scenario
    from repro.margot.goal import ComparisonFunction, Goal
    from repro.margot.state import (
        Constraint,
        OptimizationState,
        maximize_throughput,
    )
    from repro.obs.energy import EnergyLedger, build_timeline
    from repro.polybench.suite import load

    flow = _quick_toolflow(obs, machine="biglittle_4p4e")
    result = flow.build(load("mvt"))
    app = result.adaptive
    app.add_state(
        OptimizationState("Throughput", rank=maximize_throughput()), activate=True
    )
    capped = OptimizationState("PowerCap", rank=maximize_throughput())
    capped.add_constraint(
        Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 22.0))
    )
    app.add_state(capped)
    scenario = Scenario(
        phases=[
            Phase(0.0, "Throughput"),
            Phase(1.0, "PowerCap"),
            Phase(2.0, "Throughput"),
        ],
        duration_s=3.0,
    )
    records = scenario.run(app)
    obs.absorb_engine(flow.engine)
    obs.absorb_monitors(app.manager.monitors)
    timeline = build_timeline(app, records)
    timeline.record_metrics(obs.metrics)
    # per-cluster conservation is part of the scenario's contract: the
    # P:/E: planes must close against the machine-wide domains
    EnergyLedger.from_timeline(timeline).verify(records)
    clusters_by_state: Dict[str, str] = {}
    for record in records:
        votes = clusters_by_state.setdefault(record.state, {})  # type: ignore[assignment]
        votes[record.cluster] = votes.get(record.cluster, 0) + 1  # type: ignore[index]
    dominant = {
        state: max(votes, key=votes.get)  # type: ignore[arg-type]
        for state, votes in clusters_by_state.items()
    }
    return {
        "invocations": len(records),
        "clusters_used": sorted({record.cluster for record in records}),
        "uncapped_cluster": dominant.get("Throughput", ""),
        "capped_cluster": dominant.get("PowerCap", ""),
        "points_evaluated": flow.engine.counters.points_evaluated,
    }


@register(
    "alerting_overhead",
    "adaptation loop with streaming SLO alerting under an in-situ hook "
    "probe — gating the alerting-cost ratio via the baseline's "
    "ratio_limits, plus a plain leg proving byte-identical records",
)
def _run_alerting_overhead(obs: Observability) -> Dict[str, object]:
    import time as _time

    from repro.core.scenario import Phase, Scenario
    from repro.margot.state import (
        OptimizationState,
        maximize_throughput,
        maximize_throughput_per_watt_squared,
    )
    from repro.obs.alerts import AlertPolicy
    from repro.obs.energy import EnergyBudget
    from repro.polybench.suite import load

    def run_workload(inner: Observability):
        flow = _quick_toolflow(inner)
        app = flow.build(load("mvt")).adaptive
        app.add_state(
            OptimizationState(
                "Thr/W^2", rank=maximize_throughput_per_watt_squared()
            ),
            activate=True,
        )
        app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
        scenario = Scenario(
            phases=[
                Phase(0.0, "Thr/W^2"),
                Phase(1.0, "Throughput"),
                Phase(2.0, "Thr/W^2"),
            ],
            duration_s=3.0,
        )
        return flow, scenario.run(app)

    # Each leg gets its OWN identically-seeded toolflow: sharing one
    # engine would let the first leg advance shared RNG state and
    # desync the second.  The overhead is NOT measured by comparing
    # the legs' clocks — on a shared runner the legs see different
    # interference windows and either wall or CPU clocks disagree by
    # up to ±15% on identical work.  Instead an AlertOverheadProbe
    # times the alerting hooks *inside* one leg, where numerator and
    # denominator share a clock and an interference window (see the
    # probe's docstring).  Two probed legs are run and the smaller
    # ratio wins: contention only ever inflates the reading, so the
    # lower leg is the one that saw the quieter window.  The 85 W
    # budget sits below the workload's ~91 W draw, so the burn
    # detector works continuously — the measured overhead includes
    # the alert/incident path, not just idle detector updates.
    from repro.bench.measure import AlertOverheadProbe

    policy = AlertPolicy(
        budgets=(EnergyBudget("bench_cap", power_w=85.0),),
        burn_short_s=0.1,
        burn_long_s=0.5,
        flight_capacity=128,
    )
    pc = _time.perf_counter
    ratios: List[float] = []
    flow_alert = None
    records_alert = None
    engine = None
    for _leg in range(2):
        alert_obs = Observability(alerting=True, alert_policy=policy)
        engine = alert_obs.alerts
        assert engine is not None
        probe = AlertOverheadProbe(engine).install()
        with obs.tracer.span("overhead:alerting"):
            started = pc()
            flow_alert, records_alert = run_workload(alert_obs)
            total_s = pc() - started
        ratios.append(probe.overhead_ratio(total_s))
    with obs.tracer.span("overhead:baseline"):
        _, records_plain = run_workload(Observability())
    ratio = min(ratios)
    obs.metrics.gauge(
        "socrates_bench_ratio",
        help="dimensionless ratio measured by a bench scenario",
        labels={"name": "alerting_overhead"},
    ).set(ratio)
    assert engine is not None and flow_alert is not None
    return {
        "invocations": len(records_alert),
        # alerting on vs. off must not perturb the workload itself —
        # the null-object discipline's contract, checked every repeat
        "records_identical": records_plain == records_alert,
        "alerts": len(engine.alerts),
        "incidents": len(engine.incidents),
        "points_evaluated": flow_alert.engine.counters.points_evaluated,
    }


@register(
    "profiling_overhead",
    "adaptation loop plus an in-situ probe of the causal profiling "
    "observatory: flame collapse, folded round-trip and what-if replay "
    "timed against the workload wall, gated via ratio_limits",
)
def _run_profiling_overhead(obs: Observability) -> Dict[str, object]:
    import time as _time

    from repro.core.scenario import Phase, Scenario
    from repro.margot.state import (
        OptimizationState,
        maximize_throughput,
        maximize_throughput_per_watt_squared,
    )
    from repro.obs.profile import (
        CONSERVATION_TOL,
        FlameProfile,
        build_tree,
        default_targets,
        total_virtual_s,
        whatif,
    )
    from repro.polybench.suite import load

    def run_workload(inner: Observability):
        flow = _quick_toolflow(inner)
        app = flow.build(load("mvt")).adaptive
        app.add_state(
            OptimizationState(
                "Thr/W^2", rank=maximize_throughput_per_watt_squared()
            ),
            activate=True,
        )
        app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
        scenario = Scenario(
            phases=[
                Phase(0.0, "Thr/W^2"),
                Phase(1.0, "Throughput"),
                Phase(2.0, "Thr/W^2"),
            ],
            duration_s=3.0,
        )
        return flow, scenario.run(app)

    # Same measurement discipline as alerting_overhead: numerator and
    # denominator share one leg's clock and interference window, two
    # legs run and the smaller ratio wins (contention only inflates
    # the reading).  Profiling is post-hoc — it runs *after* the
    # workload on the finished trace — so the probe times exactly what
    # a user of `socrates obs flame` + `obs whatif` pays.
    pc = _time.perf_counter
    ratios: List[float] = []
    leg_records = []
    profile = None
    report = None
    conserved = False
    for _leg in range(2):
        inner = Observability()
        with obs.tracer.span("overhead:workload"):
            started = pc()
            flow, records = run_workload(inner)
            workload_s = pc() - started
        leg_records.append(records)
        spans = inner.tracer.spans
        with obs.tracer.span("overhead:profiling"):
            started = pc()
            roots = build_tree(spans)
            profile = FlameProfile.from_tree(roots)
            round_trip = FlameProfile.from_folded(profile.as_folded())
            report = whatif(
                roots, speedups=(0.5,), targets=default_targets(roots)
            )
            profiling_s = pc() - started
        conserved = (
            abs(round_trip.total_self_s - total_virtual_s(roots))
            <= CONSERVATION_TOL * max(1.0, total_virtual_s(roots))
        )
        ratios.append(profiling_s / workload_s)
    ratio = min(ratios)
    obs.metrics.gauge(
        "socrates_bench_ratio",
        help="dimensionless ratio measured by a bench scenario",
        labels={"name": "profiling_overhead"},
    ).set(ratio)
    assert profile is not None and report is not None
    return {
        "invocations": len(leg_records[0]),
        # profiling between seeded runs must not perturb them: the two
        # legs' records stay byte-identical even though a full
        # collapse + what-if ran in between
        "records_identical": leg_records[0] == leg_records[1],
        "stacks": len(profile.stacks),
        "targets": len(report.rows),
        "folded_round_trip_conserves": conserved,
    }


def _energy_totals(metrics) -> Dict[str, float]:
    """Per-domain joules from the ``socrates_energy_joules_total``
    counters a scenario recorded (summed over kernels)."""
    totals: Dict[str, float] = {}
    for instrument in metrics.instruments():
        if getattr(instrument, "name", None) != "socrates_energy_joules_total":
            continue
        domain = dict(instrument.labels).get("domain")
        if domain is not None:
            totals[domain] = totals.get(domain, 0.0) + instrument.value
    return totals


def _ratio_values(metrics) -> Dict[str, float]:
    """Named dimensionless ratios a scenario published through the
    ``socrates_bench_ratio{name=...}`` gauges."""
    ratios: Dict[str, float] = {}
    for instrument in metrics.instruments():
        if getattr(instrument, "name", None) != "socrates_bench_ratio":
            continue
        name = dict(instrument.labels).get("name")
        if name is not None:
            ratios[name] = instrument.value
    return ratios


# -- the harness --------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Everything one multi-repeat scenario run measured."""

    scenario: str
    repeats: int
    wall_s: List[float]
    #: per span-name: total seconds in each repeat (missing names = 0.0)
    span_totals: Dict[str, List[float]]
    #: per span-name: span count (identical across repeats)
    span_counts: Dict[str, int]
    #: deterministic workload fingerprint (identical across repeats)
    fingerprint: Dict[str, object]
    peak_rss_kb: int
    #: the last repeat's finished spans, for Chrome-trace export
    spans: List[Span] = field(default_factory=list)
    #: per-domain joules from the energy observatory (empty when the
    #: scenario records no energy metrics); gated with a tolerance,
    #: never part of the exact-match fingerprint
    energy_j: Dict[str, float] = field(default_factory=dict)
    #: per ratio name: the value from each repeat (scenarios publish
    #: these as ``socrates_bench_ratio{name=...}`` gauges); gated
    #: against the baseline's committed ``ratio_limits``
    ratios: Dict[str, List[float]] = field(default_factory=dict)
    #: per folded stack: self seconds in each repeat (the profiling
    #: observatory's collapse of the trace) — lets the gate attribute
    #: a regression to a *stack*, not just a span name
    stack_totals: Dict[str, List[float]] = field(default_factory=dict)
    #: per folded stack: span count (identical across repeats)
    stack_counts: Dict[str, int] = field(default_factory=dict)


def run_scenario(
    name: str,
    repeats: int = 3,
    obs_factory: Optional[Callable[[], Observability]] = None,
) -> ScenarioResult:
    """Run scenario ``name`` ``repeats`` times under tracing.

    Raises :class:`ValueError` for unknown scenarios, a repeat count
    < 1, or a workload whose fingerprint varies between repeats
    (nondeterminism would make the baseline meaningless).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    scenario = get_scenario(name)
    factory = obs_factory if obs_factory is not None else Observability
    wall_s: List[float] = []
    per_repeat_totals: List[Dict[str, float]] = []
    per_repeat_stacks: List[Dict[str, float]] = []
    span_counts: Dict[str, int] = {}
    stack_counts: Dict[str, int] = {}
    fingerprint: Optional[Dict[str, object]] = None
    last_spans: List[Span] = []
    energy_j: Dict[str, float] = {}
    ratios: Dict[str, List[float]] = {}
    for repeat in range(repeats):
        obs = factory()
        with obs.tracer.span(f"bench:{name}", scenario=name, repeat=repeat):
            result = scenario.runner(obs)
        spans = obs.tracer.spans
        root = next(span for span in spans if span.name == f"bench:{name}")
        wall_s.append(root.duration_s)
        aggregates = aggregate_spans(spans)
        per_repeat_totals.append(
            {span_name: agg.total_s for span_name, agg in aggregates.items()}
        )
        profile = FlameProfile.from_spans(spans)
        per_repeat_stacks.append(profile.self_by_stack())
        if repeat == 0:
            span_counts = {
                span_name: agg.count for span_name, agg in aggregates.items()
            }
            stack_counts = {
                stack: stat.count for stack, stat in profile.stacks.items()
            }
            fingerprint = dict(result)
        elif dict(result) != fingerprint:
            raise ValueError(
                f"scenario {name!r} is nondeterministic: repeat {repeat} "
                f"fingerprint {result!r} != repeat 0 {fingerprint!r}"
            )
        last_spans = spans
        energy_j = _energy_totals(obs.metrics)
        for ratio_name, value in _ratio_values(obs.metrics).items():
            ratios.setdefault(ratio_name, []).append(value)
    names = sorted(set().union(*per_repeat_totals))
    span_totals = {
        span_name: [totals.get(span_name, 0.0) for totals in per_repeat_totals]
        for span_name in names
    }
    stacks = sorted(set().union(*per_repeat_stacks))
    stack_totals = {
        stack: [selfs.get(stack, 0.0) for selfs in per_repeat_stacks]
        for stack in stacks
    }
    return ScenarioResult(
        scenario=name,
        repeats=repeats,
        wall_s=wall_s,
        span_totals=span_totals,
        span_counts=span_counts,
        fingerprint=fingerprint or {},
        peak_rss_kb=peak_rss_kb(),
        spans=last_spans,
        energy_j=energy_j,
        ratios=ratios,
        stack_totals=stack_totals,
        stack_counts=stack_counts,
    )
