"""Robust statistics for benchmark baselines: median + MAD.

Wall-time samples on shared machines are contaminated by one-sided
noise (page cache misses, CPU migrations, a noisy neighbour): the mean
and standard deviation chase every outlier, while the median and the
median absolute deviation (MAD) ignore up to half the samples being
wild.  Baselines therefore store ``median ± MAD`` and the regression
gate scales its thresholds in MAD units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


def median(samples: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even sizes)."""
    if not samples:
        raise ValueError("median of an empty sample set")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples: Sequence[float], center: float = None) -> float:  # type: ignore[assignment]
    """Median absolute deviation around ``center`` (default: median).

    Reported raw (no 1.4826 normal-consistency factor): the gate wants
    a robust spread in the data's own units, not a sigma estimate.
    """
    if not samples:
        raise ValueError("MAD of an empty sample set")
    if center is None:
        center = median(samples)
    return median([abs(sample - center) for sample in samples])


@dataclass(frozen=True)
class RobustStats:
    """Summary of one measured quantity across benchmark repeats."""

    n: int
    median: float
    mad: float
    min: float
    max: float
    samples: List[float]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "RobustStats":
        if not samples:
            raise ValueError("cannot summarize an empty sample set")
        values = [float(sample) for sample in samples]
        return cls(
            n=len(values),
            median=median(values),
            mad=mad(values),
            min=min(values),
            max=max(values),
            samples=values,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "median": self.median,
            "mad": self.mad,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RobustStats":
        try:
            return cls(
                n=int(record["n"]),  # type: ignore[arg-type]
                median=float(record["median"]),  # type: ignore[arg-type]
                mad=float(record["mad"]),  # type: ignore[arg-type]
                min=float(record["min"]),  # type: ignore[arg-type]
                max=float(record["max"]),  # type: ignore[arg-type]
                samples=[float(s) for s in record["samples"]],  # type: ignore[union-attr]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed robust-stats record: {error}") from None
