"""Schema-versioned benchmark baselines: ``BENCH_<scenario>.json``.

A baseline is the committed performance record of one scenario —
robust statistics (median + MAD) of the wall time and of every span
name's per-repeat total, plus the deterministic workload fingerprint.
Every future PR answers to it: ``socrates bench gate`` re-runs the
scenario and fails when a stage regresses beyond a MAD-scaled
threshold.

The file format is versioned (``"schema": "socrates-bench/1"``) and
:func:`load_baseline` rejects anything it does not understand with a
precise error, so a schema bump can never be silently misread.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.bench.scenarios import ScenarioResult
from repro.bench.stats import RobustStats

PathLike = Union[str, Path]

#: Current baseline schema identifier.
SCHEMA = "socrates-bench/1"


def baseline_filename(scenario: str) -> str:
    return f"BENCH_{scenario}.json"


@dataclass(frozen=True)
class StageBaseline:
    """One span name's committed cost."""

    count: int
    total_s: RobustStats

    def as_dict(self) -> Dict[str, object]:
        return {"count": self.count, "total_s": self.total_s.as_dict()}


@dataclass(frozen=True)
class BenchBaseline:
    """The committed performance record of one scenario."""

    scenario: str
    repeats: int
    wall_s: RobustStats
    stages: Dict[str, StageBaseline]
    fingerprint: Dict[str, object]
    peak_rss_kb: int
    #: per-domain joules from the energy observatory; optional (older
    #: baselines and energy-free scenarios omit it) and compared with a
    #: relative tolerance by the gate, so no schema bump is needed
    energy_j: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: ScenarioResult) -> "BenchBaseline":
        stages = {
            name: StageBaseline(
                count=result.span_counts.get(name, 0),
                total_s=RobustStats.from_samples(samples),
            )
            for name, samples in result.span_totals.items()
        }
        return cls(
            scenario=result.scenario,
            repeats=result.repeats,
            wall_s=RobustStats.from_samples(result.wall_s),
            stages=stages,
            fingerprint=dict(result.fingerprint),
            peak_rss_kb=result.peak_rss_kb,
            energy_j=dict(result.energy_j),
        )

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "repeats": self.repeats,
            "wall_s": self.wall_s.as_dict(),
            "stages": {
                name: stage.as_dict() for name, stage in sorted(self.stages.items())
            },
            "fingerprint": dict(self.fingerprint),
            "peak_rss_kb": self.peak_rss_kb,
        }
        if self.energy_j:
            record["energy_j"] = {
                domain: self.energy_j[domain] for domain in sorted(self.energy_j)
            }
        return record


def save_baseline(baseline: BenchBaseline, path: PathLike) -> Path:
    """Write the baseline as stable, human-diffable JSON."""
    target = Path(path)
    with open(target, "w") as handle:
        json.dump(baseline.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_baseline(path: PathLike) -> BenchBaseline:
    """Read and validate a baseline file; raise ValueError on problems."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as error:
        raise ValueError(f"{path}: cannot read baseline ({error})") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: baseline is not a JSON object")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {schema!r} (expected {SCHEMA!r})"
        )
    for required in ("scenario", "repeats", "wall_s", "stages", "fingerprint"):
        if required not in document:
            raise ValueError(f"{path}: baseline lacks required field {required!r}")
    stages_raw = document["stages"]
    if not isinstance(stages_raw, dict):
        raise ValueError(f"{path}: 'stages' is not an object")
    try:
        stages = {
            name: StageBaseline(
                count=int(record["count"]),
                total_s=RobustStats.from_dict(record["total_s"]),
            )
            for name, record in stages_raw.items()
        }
        return BenchBaseline(
            scenario=str(document["scenario"]),
            repeats=int(document["repeats"]),
            wall_s=RobustStats.from_dict(document["wall_s"]),
            stages=stages,
            fingerprint=dict(document["fingerprint"]),
            peak_rss_kb=int(document.get("peak_rss_kb", 0)),
            energy_j={
                str(domain): float(value)
                for domain, value in dict(document.get("energy_j", {})).items()
            },
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"{path}: malformed baseline ({error})") from None
