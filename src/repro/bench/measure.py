"""Span-based measurement: one timing code path for every benchmark.

Both the bench scenarios (:mod:`repro.bench.scenarios`) and the tier-2
component benchmarks (``benchmarks/test_component_performance.py``)
time work by opening a :class:`~repro.obs.tracing.Tracer` span around
it and reading the span's duration back — not by sprinkling ad-hoc
``time.perf_counter()`` pairs.  Measuring through the tracer means the
numbers in ``BENCH_*.json`` baselines, in exported Chrome traces and
in pytest-benchmark output all come from the same clock discipline and
can be compared against each other.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.obs.tracing import Span, Tracer


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 if unknown).

    ``ru_maxrss`` is a high-water mark, so deltas between readings are
    only meaningful upward; baselines record it as context, the gate
    never fails on it.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


class SpanTimer:
    """Times callables through a private tracer (the obs code path).

    >>> timer = SpanTimer()
    >>> parse_timed = timer.wrap("cir.parse", parse)
    >>> unit = parse_timed(source)       # records one "cir.parse" span
    >>> timer.total_s("cir.parse") > 0
    True
    """

    def __init__(self) -> None:
        self.tracer = Tracer()

    def wrap(self, name: str, fn: Callable, **attributes: object) -> Callable:
        """A callable that runs ``fn`` inside a span named ``name``."""

        def timed(*args, **kwargs):
            with self.tracer.span(name, **attributes):
                return fn(*args, **kwargs)

        return timed

    def call(self, name: str, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under a span; return its result."""
        with self.tracer.span(name):
            return fn(*args, **kwargs)

    # -- reading the recorded timings -----------------------------------------

    def spans(self, name: str) -> List[Span]:
        return self.tracer.find(name)

    def durations_s(self, name: str) -> List[float]:
        return [span.duration_s for span in self.tracer.find(name)]

    def total_s(self, name: str) -> float:
        return sum(self.durations_s(name))

    def count(self, name: str) -> int:
        return len(self.tracer.find(name))

    def totals(self) -> Dict[str, float]:
        """Per-span-name total seconds (insertion-ordered)."""
        totals: Dict[str, float] = {}
        for span in self.tracer.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def clear(self) -> None:
        self.tracer.clear()
