"""Span-based measurement: one timing code path for every benchmark.

Both the bench scenarios (:mod:`repro.bench.scenarios`) and the tier-2
component benchmarks (``benchmarks/test_component_performance.py``)
time work by opening a :class:`~repro.obs.tracing.Tracer` span around
it and reading the span's duration back — not by sprinkling ad-hoc
``time.perf_counter()`` pairs.  Measuring through the tracer means the
numbers in ``BENCH_*.json`` baselines, in exported Chrome traces and
in pytest-benchmark output all come from the same clock discipline and
can be compared against each other.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List

from repro.obs.tracing import Span, Tracer


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 if unknown).

    ``ru_maxrss`` is a high-water mark, so deltas between readings are
    only meaningful upward; baselines record it as context, the gate
    never fails on it.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


class AlertOverheadProbe:
    """In-situ accounting of an :class:`AlertEngine`'s hook cost.

    Two-leg A/B timing (run the workload with alerting off, then on,
    compare wall clocks) cannot resolve a few-percent overhead on a
    shared runner: the legs see *different* interference windows, and
    measured noise of either wall or CPU clocks between legs reaches
    ±15%.  This probe instead wraps the engine's two hot hooks —
    ``on_span`` and ``observe_invocation`` — with ``perf_counter``
    pairs *inside one alerting run*, so the numerator (time in hooks)
    and the denominator (leg total) are read from the same clock over
    the same interference window and contention cancels to first
    order.

    A scheduler preemption landing inside a hook window would charge
    milliseconds of someone else's timeslice to a microsecond hook, so
    windows over ``clamp_s`` are clamped — *unless* the hook opened an
    incident bundle, whose multi-millisecond build cost is genuine and
    must stay in the bill.  Legitimate non-incident hooks cost 1–15 µs;
    a regression big enough to push them past the clamp would blow any
    gate long before clamping could mask it.

    The wrapper's own cost (two timer reads and a couple of loads per
    hook) is charged to the hooks, so the reported overhead is a
    slight *over*-estimate — the safe direction for a regression gate.
    """

    def __init__(self, engine, clamp_s: float = 100e-6) -> None:
        self.engine = engine
        self.clamp_s = clamp_s
        self.hook_s = 0.0
        self.hooks = 0
        self.clamped = 0

    def install(self) -> "AlertOverheadProbe":
        """Shadow the engine's hook methods with timed wrappers."""
        engine = self.engine
        incidents = engine.incidents
        clamp_s = self.clamp_s
        pc = time.perf_counter
        orig_span = engine.on_span
        orig_inv = engine.observe_invocation

        def on_span(span):
            before = len(incidents)
            t0 = pc()
            orig_span(span)
            dt = pc() - t0
            if dt > clamp_s and len(incidents) == before:
                dt = clamp_s
                self.clamped += 1
            self.hook_s += dt
            self.hooks += 1

        def observe_invocation(kernel, record, app=None):
            before = len(incidents)
            t0 = pc()
            orig_inv(kernel, record, app)
            dt = pc() - t0
            if dt > clamp_s and len(incidents) == before:
                dt = clamp_s
                self.clamped += 1
            self.hook_s += dt
            self.hooks += 1

        engine.on_span = on_span
        engine.observe_invocation = observe_invocation
        return self

    def overhead_ratio(self, total_s: float) -> float:
        """``total / (total - hook_s)``: the leg's cost relative to
        the same leg with the hooks deleted."""
        remainder = total_s - self.hook_s
        if remainder <= 0:
            return float("inf")
        return total_s / remainder


class SpanTimer:
    """Times callables through a private tracer (the obs code path).

    >>> timer = SpanTimer()
    >>> parse_timed = timer.wrap("cir.parse", parse)
    >>> unit = parse_timed(source)       # records one "cir.parse" span
    >>> timer.total_s("cir.parse") > 0
    True
    """

    def __init__(self) -> None:
        self.tracer = Tracer()

    def wrap(self, name: str, fn: Callable, **attributes: object) -> Callable:
        """A callable that runs ``fn`` inside a span named ``name``."""

        def timed(*args, **kwargs):
            with self.tracer.span(name, **attributes):
                return fn(*args, **kwargs)

        return timed

    def call(self, name: str, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under a span; return its result."""
        with self.tracer.span(name):
            return fn(*args, **kwargs)

    # -- reading the recorded timings -----------------------------------------

    def spans(self, name: str) -> List[Span]:
        return self.tracer.find(name)

    def durations_s(self, name: str) -> List[float]:
        return [span.duration_s for span in self.tracer.find(name)]

    def total_s(self, name: str) -> float:
        return sum(self.durations_s(name))

    def count(self, name: str) -> int:
        return len(self.tracer.find(name))

    def totals(self) -> Dict[str, float]:
        """Per-span-name total seconds (insertion-ordered)."""
        totals: Dict[str, float] = {}
        for span in self.tracer.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def clear(self) -> None:
        self.tracer.clear()
