"""Generic AST traversal utilities (mirrors the stdlib ``ast`` API).

Child nodes are discovered from dataclass fields, so visitors keep
working when new node kinds are added.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, List, Optional

from repro.cir.ast import Node


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield every direct child :class:`Node` of ``node``.

    List fields are flattened; ``None`` children are skipped.
    """
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants in depth-first pre-order."""
    stack: List[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        children = list(iter_child_nodes(current))
        stack.extend(reversed(children))


class NodeVisitor:
    """Dispatch on node class name: ``visit_<ClassName>`` methods.

    Unhandled node kinds fall through to :meth:`generic_visit`, which
    recurses into children.
    """

    def visit(self, node: Node) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> None:
        for child in iter_child_nodes(node):
            self.visit(child)


class NodeTransformer:
    """Rewriting visitor: ``visit_<ClassName>`` may return a replacement.

    Return values:
      * a node — replaces the original;
      * ``None`` — removes the node (only legal inside list fields);
      * a list of nodes — splices into the surrounding list field.
    """

    def visit(self, node: Node) -> Optional[Node]:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Node:
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, Node):
                replacement = self.visit(value)
                if isinstance(replacement, list):
                    raise TypeError(
                        f"cannot splice a node list into scalar field "
                        f"{type(node).__name__}.{field.name}"
                    )
                setattr(node, field.name, replacement)
            elif isinstance(value, list):
                new_items: List[Any] = []
                for item in value:
                    if not isinstance(item, Node):
                        new_items.append(item)
                        continue
                    replacement = self.visit(item)
                    if replacement is None:
                        continue
                    if isinstance(replacement, list):
                        new_items.extend(replacement)
                    else:
                        new_items.append(replacement)
                setattr(node, field.name, new_items)
        return node
