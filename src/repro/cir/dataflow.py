"""Dataflow analyses over the CIR.

This is the substrate of ``repro.analysis``: variable access
collection (reads/writes with array-subscript structure), def-use
chains and reaching definitions over the structured AST, OpenMP
clause parsing, and the shared-variable classification that the
OpenMP race detector interprets for ``#pragma omp parallel for``
bodies.

The analyses are deliberately flow-structured (no CFG construction):
the CIR only has structured control flow (``if``/``for``/``while``/
``do``), so a two-phase fixpoint over loop bodies is exact for
reaching definitions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.cir import ast
from repro.cir.analysis import LoopInfo
from repro.cir.visitor import iter_child_nodes, walk

READ = "read"
WRITE = "write"


@dataclass(eq=False)
class Access:
    """One read or write of a named variable.

    ``node`` is the expression/statement performing the access (the
    :class:`~repro.cir.ast.Assign`, :class:`~repro.cir.ast.UnaryOp`
    or :class:`~repro.cir.ast.Ident`/:class:`~repro.cir.ast.ArrayRef`
    itself); ``indices`` holds the subscript expressions when the
    access goes through an array reference; ``compound`` marks
    read-modify-write accesses (``+=``, ``++`` …).
    """

    name: str
    kind: str  # READ or WRITE
    node: ast.Node
    indices: Tuple[ast.Expr, ...] = ()
    compound: bool = False
    op: str = ""  # the assignment/step operator for writes ("=", "+=", "++", ...)

    @property
    def is_array(self) -> bool:
        return bool(self.indices)

    def __repr__(self) -> str:  # compact, for test failure messages
        subscript = "[...]" * len(self.indices)
        return f"Access({self.kind} {self.name}{subscript})"


def _lvalue_root(expr: ast.Expr) -> Tuple[Optional[ast.Ident], Tuple[ast.Expr, ...]]:
    """Peel an lvalue down to its base identifier and subscripts."""
    indices: List[ast.Expr] = []
    while True:
        if isinstance(expr, ast.ArrayRef):
            indices = list(expr.indices) + indices
            expr = expr.base
        elif isinstance(expr, ast.Member):
            expr = expr.base
        elif isinstance(expr, ast.UnaryOp) and expr.op == "*" and not expr.postfix:
            expr = expr.operand
        elif isinstance(expr, ast.Cast):
            expr = expr.operand
        else:
            break
    if isinstance(expr, ast.Ident):
        return expr, tuple(indices)
    return None, tuple(indices)


def collect_accesses(node: ast.Node) -> List[Access]:
    """All variable accesses in the subtree, in evaluation order.

    Function names in direct calls are not variable accesses;
    declarations contribute a write when they carry an initializer.
    """
    out: List[Access] = []
    _collect(node, out)
    return out


def _collect(node: ast.Node, out: List[Access]) -> None:
    if isinstance(node, ast.Assign):
        root, indices = _lvalue_root(node.lhs)
        for index in indices:
            _collect(index, out)
        _collect(node.rhs, out)
        if root is not None:
            compound = node.op != "="
            if compound:
                out.append(Access(root.name, READ, node, indices, compound=True))
            out.append(
                Access(root.name, WRITE, node, indices, compound=compound, op=node.op)
            )
        else:  # exotic lvalue: treat conservatively as reads
            _collect(node.lhs, out)
        return
    if isinstance(node, ast.UnaryOp) and node.op in ("++", "--"):
        root, indices = _lvalue_root(node.operand)
        for index in indices:
            _collect(index, out)
        if root is not None:
            out.append(Access(root.name, READ, node, indices, compound=True))
            out.append(
                Access(root.name, WRITE, node, indices, compound=True, op=node.op)
            )
        return
    if isinstance(node, ast.Call):
        # the callee identifier is a function name, not a variable
        for arg in node.args:
            _collect(arg, out)
        return
    if isinstance(node, ast.ArrayRef):
        root, indices = _lvalue_root(node)
        for index in indices:
            _collect(index, out)
        if root is not None:
            out.append(Access(root.name, READ, node, indices))
        return
    if isinstance(node, ast.Ident):
        out.append(Access(node.name, READ, node))
        return
    if isinstance(node, ast.Decl):
        if node.init is not None:
            _collect(node.init, out)
            out.append(Access(node.name, WRITE, node, op="="))
        for dim in node.array_dims:
            _collect(dim, out)
        return
    if isinstance(node, ast.SizeOf):
        return  # sizeof does not evaluate its operand
    for child in iter_child_nodes(node):
        _collect(child, out)


def declared_names(node: ast.Node) -> FrozenSet[str]:
    """Names declared anywhere inside the subtree (block-scoped)."""
    names: Set[str] = set()
    for current in walk(node):
        if isinstance(current, ast.Decl):
            names.add(current.name)
    return frozenset(names)


# ---------------------------------------------------------------------------
# reaching definitions / def-use chains
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Definition:
    """One definition point of a scalar variable."""

    name: str
    node: ast.Node  # the Assign / Decl / UnaryOp / Param that defines it


_Env = Dict[str, FrozenSet[int]]


class ReachingDefinitions:
    """Reaching definitions for the scalars of one function body.

    Array elements are not tracked individually: a write through a
    subscript defines the whole array (conservative, which is what
    the race rules need).
    """

    def __init__(self, func: ast.FunctionDef) -> None:
        self._defs: Dict[int, Definition] = {}
        self._reaching: Dict[int, FrozenSet[int]] = {}
        env: _Env = {}
        for param in func.params:
            definition = Definition(param.name, param)
            self._defs[id(param)] = definition
            env[param.name] = frozenset({id(param)})
        self._flow(func.body, env)

    # -- queries --------------------------------------------------------------

    def definitions_reaching(self, use: ast.Node) -> List[Definition]:
        """The definitions that may reach a read access node."""
        return [self._defs[d] for d in sorted(self._reaching.get(id(use), frozenset()))]

    @property
    def definitions(self) -> List[Definition]:
        return list(self._defs.values())

    # -- structured dataflow ---------------------------------------------------

    def _define(self, name: str, node: ast.Node, env: _Env) -> None:
        if id(node) not in self._defs:
            self._defs[id(node)] = Definition(name, node)
        env[name] = frozenset({id(node)})

    def _record_accesses(self, node: ast.Node, env: _Env) -> None:
        for access in collect_accesses(node):
            if access.kind == READ:
                reaching = env.get(access.name)
                if reaching is not None:
                    self._reaching[id(access.node)] = reaching
            else:
                if access.is_array:
                    # weak update: the old definitions may survive
                    previous = env.get(access.name, frozenset())
                    if id(access.node) not in self._defs:
                        self._defs[id(access.node)] = Definition(
                            access.name, access.node
                        )
                    env[access.name] = previous | {id(access.node)}
                else:
                    self._define(access.name, access.node, env)

    def _flow(self, stmt: Optional[ast.Node], env: _Env) -> _Env:
        if stmt is None:
            return env
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                env = self._flow(inner, env)
            return env
        if isinstance(stmt, ast.If):
            self._record_accesses(stmt.cond, env)
            then_env = self._flow(stmt.then, dict(env))
            else_env = self._flow(stmt.other, dict(env)) if stmt.other else env
            return _join(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            return self._flow_loop(stmt, env)
        if isinstance(stmt, (ast.ExprStmt, ast.Decl, ast.DeclGroup, ast.Return)):
            self._record_accesses(stmt, env)
            return env
        if isinstance(stmt, (ast.Pragma, ast.Break, ast.Continue, ast.EmptyStmt)):
            return env
        self._record_accesses(stmt, env)
        return env

    def _flow_loop(self, stmt: ast.Node, env: _Env) -> _Env:
        header: List[ast.Node] = []
        body = stmt.body
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                env = self._flow(stmt.init, env)
            header = [n for n in (stmt.cond, stmt.step) if n is not None]
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            header = [stmt.cond]

        def one_pass(current: _Env) -> _Env:
            if isinstance(stmt, ast.For) and stmt.cond is not None:
                self._record_accesses(stmt.cond, current)
            if isinstance(stmt, ast.While):
                self._record_accesses(stmt.cond, current)
            current = self._flow(body, current)
            if isinstance(stmt, ast.For) and stmt.step is not None:
                self._record_accesses(stmt.step, current)
            if isinstance(stmt, ast.DoWhile):
                self._record_accesses(stmt.cond, current)
            return current

        # two-phase fixpoint: after one pass the set of loop-generated
        # definitions is known; a second pass under the joined
        # environment records every use with its final reaching set
        after_one = one_pass(dict(env))
        joined = _join(env, after_one)
        after_final = one_pass(dict(joined))
        return _join(env, after_final)


def _join(a: _Env, b: _Env) -> _Env:
    result: _Env = dict(a)
    for name, defs in b.items():
        result[name] = result.get(name, frozenset()) | defs
    return result


@dataclass
class DefUseChains:
    """Def-use chains of one function: definition node -> use nodes."""

    reaching: ReachingDefinitions
    uses: Dict[int, List[ast.Node]] = field(default_factory=dict)
    _nodes: Dict[int, ast.Node] = field(default_factory=dict)

    def uses_of(self, definition_node: ast.Node) -> List[ast.Node]:
        return list(self.uses.get(id(definition_node), []))

    def defs_of(self, use_node: ast.Node) -> List[Definition]:
        return self.reaching.definitions_reaching(use_node)


def def_use_chains(func: ast.FunctionDef) -> DefUseChains:
    """Compute def-use chains for the scalars of ``func``."""
    reaching = ReachingDefinitions(func)
    chains = DefUseChains(reaching=reaching)
    for node in walk(func.body):
        for definition in reaching.definitions_reaching(node):
            chains.uses.setdefault(id(definition.node), []).append(node)
    return chains


# ---------------------------------------------------------------------------
# OpenMP clause parsing
# ---------------------------------------------------------------------------

_CLAUSE_RE = re.compile(r"([A-Za-z_]\w*)\s*\(([^)]*)\)")


@dataclass(frozen=True)
class OmpClauses:
    """Parsed data-sharing/control clauses of one OpenMP pragma."""

    private: FrozenSet[str] = frozenset()
    firstprivate: FrozenSet[str] = frozenset()
    lastprivate: FrozenSet[str] = frozenset()
    shared: FrozenSet[str] = frozenset()
    reductions: Tuple[Tuple[str, str], ...] = ()  # (operator, variable)
    num_threads: Optional[str] = None
    proc_bind: Optional[str] = None
    schedule: Optional[str] = None

    @property
    def reduction_vars(self) -> FrozenSet[str]:
        return frozenset(name for _, name in self.reductions)

    @property
    def privatized(self) -> FrozenSet[str]:
        """Every variable with a private copy per thread."""
        return (
            self.private
            | self.firstprivate
            | self.lastprivate
            | self.reduction_vars
        )


def _split_vars(body: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in body.split(",") if part.strip())


def parse_omp_clauses(text: str) -> OmpClauses:
    """Parse the clauses of an OpenMP pragma text (after ``#pragma``).

    Unknown clauses are ignored; malformed ``reduction`` bodies
    (missing the ``op:`` separator) are skipped rather than rejected,
    matching how permissive the CIR pragma handling is elsewhere.
    """
    private: Set[str] = set()
    firstprivate: Set[str] = set()
    lastprivate: Set[str] = set()
    shared: Set[str] = set()
    reductions: List[Tuple[str, str]] = []
    num_threads: Optional[str] = None
    proc_bind: Optional[str] = None
    schedule: Optional[str] = None
    for match in _CLAUSE_RE.finditer(text):
        clause, body = match.group(1), match.group(2).strip()
        if clause == "private":
            private |= _split_vars(body)
        elif clause == "firstprivate":
            firstprivate |= _split_vars(body)
        elif clause == "lastprivate":
            lastprivate |= _split_vars(body)
        elif clause == "shared":
            shared |= _split_vars(body)
        elif clause == "reduction" and ":" in body:
            op, names = body.split(":", 1)
            for name in _split_vars(names):
                reductions.append((op.strip(), name))
        elif clause == "num_threads":
            num_threads = body
        elif clause == "proc_bind":
            proc_bind = body
        elif clause == "schedule":
            schedule = body
    return OmpClauses(
        private=frozenset(private),
        firstprivate=frozenset(firstprivate),
        lastprivate=frozenset(lastprivate),
        shared=frozenset(shared),
        reductions=tuple(reductions),
        num_threads=num_threads,
        proc_bind=proc_bind,
        schedule=schedule,
    )


def is_parallel_for_pragma(pragma: ast.Pragma) -> bool:
    """True for ``omp parallel for`` worksharing pragmas."""
    return (
        pragma.is_omp
        and "parallel" in pragma.text
        and re.search(r"\bfor\b", pragma.text) is not None
    )


# ---------------------------------------------------------------------------
# parallel regions + shared-variable classification
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ParallelRegion:
    """One ``#pragma omp parallel for`` and the loop it controls."""

    function: ast.FunctionDef
    pragma: ast.Pragma
    loop: Optional[ast.For]
    clauses: OmpClauses


def parallel_regions(func: ast.FunctionDef) -> List[ParallelRegion]:
    """All parallel-for regions of ``func``, in source order.

    Handles both sibling form (pragma then ``for`` in one block) and
    the parser's wrapped form (``Block([pragma, for])`` synthesised
    for pragma-controlled statements in loop/if body position).
    """
    regions: List[ParallelRegion] = []
    seen: Set[int] = set()
    for node in walk(func.body):
        if not isinstance(node, ast.Block):
            continue
        for index, stmt in enumerate(node.stmts):
            if not isinstance(stmt, ast.Pragma) or not is_parallel_for_pragma(stmt):
                continue
            if id(stmt) in seen:
                continue
            seen.add(id(stmt))
            controlled = node.stmts[index + 1] if index + 1 < len(node.stmts) else None
            loop = controlled if isinstance(controlled, ast.For) else None
            regions.append(
                ParallelRegion(
                    function=func,
                    pragma=stmt,
                    loop=loop,
                    clauses=parse_omp_clauses(stmt.text),
                )
            )
    return regions


@dataclass(eq=False)
class SharingReport:
    """Shared-variable classification of one parallel region."""

    region: ParallelRegion
    induction: Optional[str]
    privatized: FrozenSet[str]  # clause-privatized + the parallel induction
    local: FrozenSet[str]  # declared inside the region (private by scoping)
    reduction_vars: FrozenSet[str]
    shared_writes: List[Access] = field(default_factory=list)
    shared_reads: List[Access] = field(default_factory=list)

    def is_shared(self, name: str) -> bool:
        return name not in self.privatized and name not in self.local


def classify_sharing(region: ParallelRegion) -> Optional[SharingReport]:
    """Classify every access of a parallel region by data-sharing.

    Returns ``None`` when the region controls no analyzable ``for``
    loop.  The parallel loop's induction variable is private by the
    OpenMP worksharing rules; variables declared inside the region are
    private by scoping; everything else named by a clause follows the
    clause; the rest is shared.
    """
    loop = region.loop
    if loop is None:
        return None
    induction = LoopInfo(node=loop, depth=0).induction_variable
    privatized = set(region.clauses.privatized)
    if induction is not None:
        privatized.add(induction)
    local = declared_names(loop)
    report = SharingReport(
        region=region,
        induction=induction,
        privatized=frozenset(privatized),
        local=local,
        reduction_vars=region.clauses.reduction_vars,
    )
    for access in collect_accesses(loop):
        if not report.is_shared(access.name):
            continue
        if access.kind == WRITE:
            report.shared_writes.append(access)
        else:
            report.shared_reads.append(access)
    return report


def references_variable(expr: ast.Node, name: str) -> bool:
    """True when the expression subtree mentions identifier ``name``."""
    return any(
        isinstance(node, ast.Ident) and node.name == name for node in walk(expr)
    )
