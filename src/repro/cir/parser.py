"""Recursive-descent parser for the Polybench C subset.

Supported grammar (enough for all twelve Polybench sources used by the
paper, plus the code the LARA strategies weave in):

* preprocessor lines: ``#include``, ``#define``, ``#pragma`` and a
  passthrough for anything else (``#ifdef``/``#endif``...);
* ``typedef`` of scalar types;
* function definitions and prototypes with scalar, pointer and
  (multi-dimensional, variably-modified) array parameters;
* declarations with optional brace or expression initializers;
* statements: blocks, ``if``/``else``, ``for``, ``while``,
  ``do``/``while``, ``return``, ``break``, ``continue``, expression
  statements and ``#pragma`` statements;
* full C expression precedence from assignment down to primary,
  including casts, ``sizeof``, array indexing, calls, members and the
  ternary operator.

Unsupported C (structs/unions definitions, switch, goto, function
pointers) raises :class:`ParseError` with a source location.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cir import ast
from repro.cir.lexer import Lexer, Token, TokenKind

_TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double", "signed", "unsigned"}
)
_QUALIFIERS = frozenset({"const", "volatile", "restrict", "static", "extern", "register", "inline"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class ParseError(ValueError):
    """Raised on input outside the supported C subset."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.col} (near {token.text!r})")
        self.token = token


class Parser:
    """Parse one translation unit from C source text."""

    def __init__(self, source: str, name: str = "<anonymous>") -> None:
        self._tokens = Lexer(source).tokens()
        self._pos = 0
        self._name = name
        self._typedefs = {"size_t", "ptrdiff_t", "int64_t", "uint64_t", "int32_t", "uint32_t"}

    # -- token stream helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._next()
        if not token.is_op(text):
            raise ParseError(f"expected {text!r}", token)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", token)
        return token

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    # -- entry point ---------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        """Parse the whole source and return its translation unit."""
        unit = ast.TranslationUnit(name=self._name)
        pending_pragmas: List[ast.Pragma] = []
        while self._peek().kind is not TokenKind.EOF:
            decl = self._parse_top_level()
            if decl is None:
                continue
            if isinstance(decl, ast.Pragma):
                pending_pragmas.append(decl)
                continue
            if isinstance(decl, ast.FunctionDef) and pending_pragmas:
                decl.pragmas = pending_pragmas + decl.pragmas
                pending_pragmas = []
            elif pending_pragmas:
                unit.decls.extend(pending_pragmas)
                pending_pragmas = []
            unit.decls.append(decl)
        unit.decls.extend(pending_pragmas)
        return unit

    # -- top level -----------------------------------------------------------

    def _parse_top_level(self) -> Optional[ast.Node]:
        token = self._peek()
        if token.kind is TokenKind.DIRECTIVE:
            self._next()
            return self._parse_directive(token)
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_op(";"):
            self._next()
            return None
        return self._parse_declaration_or_function()

    def _parse_directive(self, token: Token) -> Optional[ast.Node]:
        text = token.text.lstrip("#").strip()
        if text.startswith("include"):
            rest = text[len("include") :].strip()
            if rest.startswith("<") and rest.endswith(">"):
                return ast.Include(target=rest[1:-1], system=True)
            if rest.startswith('"') and rest.endswith('"'):
                return ast.Include(target=rest[1:-1], system=False)
            raise ParseError("malformed #include", token)
        if text.startswith("define"):
            rest = text[len("define") :].strip()
            if not rest:
                raise ParseError("malformed #define", token)
            parts = rest.split(None, 1)
            # keep function-like macros whole in the name field
            if "(" in parts[0] and not parts[0].endswith(")"):
                open_index = rest.index("(")
                close_index = rest.index(")", open_index)
                return ast.MacroDef(name=rest[: close_index + 1], body=rest[close_index + 1 :].strip())
            body = parts[1] if len(parts) > 1 else ""
            # an object-like macro whose body is a type name acts as a
            # typedef for parsing purposes (Polybench's DATA_TYPE idiom)
            body_words = body.split()
            if body_words and all(
                word in _TYPE_KEYWORDS or word in self._typedefs for word in body_words
            ):
                self._typedefs.add(parts[0])
            return ast.MacroDef(name=parts[0], body=body)
        if text.startswith("pragma"):
            return ast.Pragma(text=text[len("pragma") :].strip())
        return ast.RawDirective(text=token.text)

    def _parse_typedef(self) -> ast.Typedef:
        self._next()  # 'typedef'
        base = self._parse_type()
        name = self._expect_ident().text
        self._expect_op(";")
        self._typedefs.add(name)
        return ast.Typedef(type=base, name=name)

    def _parse_declaration_or_function(self) -> ast.Node:
        storage: List[str] = []
        while self._peek().is_keyword("static", "extern", "inline"):
            storage.append(self._next().text)
        decl_type = self._parse_type()
        name_token = self._expect_ident()

        if self._peek().is_op("("):
            return self._parse_function(tuple(storage), decl_type, name_token.text)

        decl = self._parse_declarator_tail(decl_type, name_token.text)
        decl.type.qualifiers = tuple(storage) + decl.type.qualifiers
        self._expect_op(";")
        return decl

    def _parse_function(
        self, storage: Tuple[str, ...], return_type: ast.Type, name: str
    ) -> ast.Node:
        self._expect_op("(")
        params: List[ast.Param] = []
        if not self._peek().is_op(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_op(")"):
                self._next()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        if self._accept_op(";"):
            return ast.FunctionDecl(
                return_type=return_type, name=name, params=params, storage=storage
            )
        body = self._parse_block()
        return ast.FunctionDef(
            return_type=return_type, name=name, params=params, body=body, storage=storage
        )

    def _parse_param(self) -> ast.Param:
        param_type = self._parse_type()
        name = ""
        if self._peek().kind is TokenKind.IDENT:
            name = self._next().text
        dims: List[ast.Expr] = []
        while self._peek().is_op("["):
            self._next()
            if self._peek().is_op("]"):
                dims.append(ast.Ident(name=""))
            else:
                dims.append(self._parse_expression())
            self._expect_op("]")
        return ast.Param(type=param_type, name=name, array_dims=dims)

    # -- types ---------------------------------------------------------------

    def _starts_type(self, token: Token) -> bool:
        if token.kind is TokenKind.KEYWORD:
            return token.text in _TYPE_KEYWORDS or token.text in _QUALIFIERS
        return token.kind is TokenKind.IDENT and token.text in self._typedefs

    def _parse_type(self) -> ast.Type:
        qualifiers: List[str] = []
        names: List[str] = []
        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.text in _QUALIFIERS:
                qualifiers.append(self._next().text)
            elif token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
                names.append(self._next().text)
            elif (
                not names
                and token.kind is TokenKind.IDENT
                and token.text in self._typedefs
            ):
                names.append(self._next().text)
            else:
                break
        if not names:
            raise ParseError("expected type name", self._peek())
        pointers = 0
        while self._accept_op("*"):
            pointers += 1
            # ignore qualifiers between stars (e.g. * restrict)
            while self._peek().is_keyword("const", "restrict", "volatile"):
                self._next()
        return ast.Type(name=" ".join(names), pointers=pointers, qualifiers=tuple(qualifiers))

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self._expect_op("{")
        block = ast.Block()
        while not self._peek().is_op("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", self._peek())
            block.stmts.append(self._parse_statement())
        self._expect_op("}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.DIRECTIVE:
            self._next()
            node = self._parse_directive(token)
            if isinstance(node, ast.Pragma):
                return node
            raise ParseError("only #pragma directives are allowed inside functions", token)
        if token.is_op("{"):
            return self._parse_block()
        if token.is_op(";"):
            self._next()
            return ast.EmptyStmt()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("return"):
            self._next()
            value = None if self._peek().is_op(";") else self._parse_expression()
            self._expect_op(";")
            return ast.Return(value=value)
        if token.is_keyword("break"):
            self._next()
            self._expect_op(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self._next()
            self._expect_op(";")
            return ast.Continue()
        if self._starts_type(token):
            decl = self._parse_local_decl()
            self._expect_op(";")
            return decl
        expr = self._parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(expr=expr)

    def _parse_local_decl(self) -> ast.Stmt:
        decl_type = self._parse_type()
        first = self._parse_declarator_tail(decl_type, self._expect_ident().text)
        if not self._peek().is_op(","):
            return first
        decls: List[ast.Decl] = [first]
        while self._accept_op(","):
            pointers = 0
            while self._accept_op("*"):
                pointers += 1
            next_type = ast.Type(
                name=decl_type.name, pointers=pointers, qualifiers=decl_type.qualifiers
            )
            decls.append(self._parse_declarator_tail(next_type, self._expect_ident().text))
        return ast.DeclGroup(decls=decls)

    def _parse_declarator_tail(self, decl_type: ast.Type, name: str) -> ast.Decl:
        dims: List[ast.Expr] = []
        while self._peek().is_op("["):
            self._next()
            if self._peek().is_op("]"):
                dims.append(ast.Ident(name=""))
            else:
                dims.append(self._parse_expression())
            self._expect_op("]")
        init: Optional[ast.Expr] = None
        if self._accept_op("="):
            init = self._parse_initializer()
        return ast.Decl(type=decl_type, name=name, array_dims=dims, init=init)

    def _parse_initializer(self) -> ast.Expr:
        if self._peek().is_op("{"):
            self._next()
            items: List[ast.Expr] = []
            while not self._peek().is_op("}"):
                items.append(self._parse_initializer())
                if not self._accept_op(","):
                    break
            self._expect_op("}")
            return ast.CompoundLiteral(items=items)
        return self._parse_assignment()

    def _parse_controlled_statement(self) -> ast.Stmt:
        """Parse the body of a loop/if.

        An OpenMP pragma in this position applies to the statement that
        follows it (C attaches pragmas to the next statement); the pair
        is wrapped into a block so the pragma stays inside the
        controlling construct.
        """
        stmt = self._parse_statement()
        if isinstance(stmt, ast.Pragma) and stmt.is_omp:
            controlled = self._parse_controlled_statement()
            return ast.Block(stmts=[stmt, controlled])
        return stmt

    def _parse_if(self) -> ast.If:
        self._next()  # 'if'
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        then = self._parse_controlled_statement()
        other: Optional[ast.Stmt] = None
        if self._peek().is_keyword("else"):
            self._next()
            other = self._parse_controlled_statement()
        return ast.If(cond=cond, then=then, other=other)

    def _parse_for(self) -> ast.For:
        self._next()  # 'for'
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._starts_type(self._peek()):
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(expr=self._parse_expression())
        self._expect_op(";")
        cond = None if self._peek().is_op(";") else self._parse_expression()
        self._expect_op(";")
        step = None if self._peek().is_op(")") else self._parse_expression()
        self._expect_op(")")
        body = self._parse_controlled_statement()
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        self._next()  # 'while'
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        body = self._parse_controlled_statement()
        return ast.While(cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        self._next()  # 'do'
        body = self._parse_controlled_statement()
        token = self._next()
        if not token.is_keyword("while"):
            raise ParseError("expected 'while' after do-body", token)
        self._expect_op("(")
        cond = self._parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        return ast.DoWhile(body=body, cond=cond)

    # -- expressions -------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self._accept_op(","):
            rhs = self._parse_assignment()
            expr = ast.BinOp(op=",", lhs=expr, rhs=rhs)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        token = self._peek()
        if token.kind is TokenKind.OP and token.text in _ASSIGN_OPS:
            self._next()
            rhs = self._parse_assignment()
            return ast.Assign(op=token.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept_op("?"):
            then = self._parse_expression()
            self._expect_op(":")
            other = self._parse_assignment()
            return ast.TernaryOp(cond=cond, then=then, other=other)
        return cond

    _BINARY_LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        expr = self._parse_binary(level + 1)
        while self._peek().is_op(*ops):
            op = self._next().text
            rhs = self._parse_binary(level + 1)
            expr = ast.BinOp(op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op("+", "-", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand)
        if token.is_op("++", "--"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand)
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_op("(") and self._starts_type(self._peek(1)):
                self._next()
                size_type = self._parse_type()
                self._expect_op(")")
                return ast.SizeOf(type=size_type)
            operand = self._parse_unary()
            return ast.SizeOf(operand=operand)
        if token.is_op("(") and self._starts_type(self._peek(1)):
            self._next()
            cast_type = self._parse_type()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(type=cast_type, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_op("["):
                indices: List[ast.Expr] = []
                while self._accept_op("["):
                    indices.append(self._parse_expression())
                    self._expect_op("]")
                if isinstance(expr, ast.ArrayRef):
                    expr.indices.extend(indices)
                else:
                    expr = ast.ArrayRef(base=expr, indices=indices)
            elif token.is_op("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_op(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                expr = ast.Call(func=expr, args=args)
            elif token.is_op(".", "->"):
                self._next()
                field_name = self._expect_ident().text
                expr = ast.Member(base=expr, field_name=field_name, arrow=token.text == "->")
            elif token.is_op("++", "--"):
                self._next()
                expr = ast.UnaryOp(op=token.text, operand=expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.kind is TokenKind.INT:
            return ast.IntLit(text=token.text)
        if token.kind is TokenKind.FLOAT:
            return ast.FloatLit(text=token.text)
        if token.kind is TokenKind.STRING:
            return ast.StringLit(text=token.text)
        if token.kind is TokenKind.CHAR:
            return ast.CharLit(text=token.text)
        if token.kind is TokenKind.IDENT:
            return ast.Ident(name=token.text)
        if token.is_op("("):
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        raise ParseError("expected expression", token)


def parse(source: str, name: str = "<anonymous>") -> ast.TranslationUnit:
    """Parse C ``source`` text into a :class:`~repro.cir.ast.TranslationUnit`."""
    return Parser(source, name=name).parse()
