"""Static analyses over the CIR.

These power the Milepost feature extractor, the workload-profile
derivation and the LARA attribute queries: loop-nest discovery,
operation census and simple trip-count evaluation against a macro
environment (Polybench dataset sizes are ``#define`` constants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cir import ast
from repro.cir.visitor import walk


@dataclass
class LoopInfo:
    """One ``for`` loop with nesting metadata."""

    node: ast.For
    depth: int  # 0 = outermost
    parent: Optional["LoopInfo"] = None
    children: List["LoopInfo"] = field(default_factory=list)

    @property
    def induction_variable(self) -> Optional[str]:
        """The loop counter name, when the init is a simple decl/assign.

        When the init clause is empty or not a recognizable counter
        initialization (``for (; i < n; i++)``, comma inits), the step
        expression is consulted instead: a ``i++``/``i--``/``i += c``/
        ``i = i + c`` step names the counter just as reliably.
        """
        init = self.node.init
        if isinstance(init, ast.Decl):
            return init.name
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
            lhs = init.expr.lhs
            if isinstance(lhs, ast.Ident):
                return lhs.name
        step = self.node.step
        if (
            isinstance(step, ast.UnaryOp)
            and step.op in ("++", "--")
            and isinstance(step.operand, ast.Ident)
        ):
            return step.operand.name
        if isinstance(step, ast.Assign) and isinstance(step.lhs, ast.Ident):
            return step.lhs.name
        return None

    def bounds(
        self,
        env: Optional[Dict[str, int]] = None,
        facts: Optional[Dict[str, int]] = None,
    ) -> Optional[Tuple[int, int]]:
        """(init value, condition bound) of the loop when evaluable.

        ``facts`` supplies locally-constant variable values (from the
        interval analysis in :mod:`repro.analysis.intervals`); they
        shadow ``env`` the way locals shadow macro aliases.
        """
        env = _merge_env(env, facts)
        lower = _init_value(self.node.init, env)
        cond = self.node.cond
        if lower is None or not isinstance(cond, ast.BinOp):
            return None
        upper = eval_const(cond.rhs, env)
        if upper is None:
            return None
        return lower, upper

    def midpoint(
        self,
        env: Optional[Dict[str, int]] = None,
        facts: Optional[Dict[str, int]] = None,
    ) -> Optional[int]:
        """Average value of the induction variable over the loop range."""
        bounds = self.bounds(env, facts)
        if bounds is None:
            return None
        return (bounds[0] + bounds[1]) // 2

    def trip_count(
        self,
        env: Optional[Dict[str, int]] = None,
        facts: Optional[Dict[str, int]] = None,
    ) -> Optional[int]:
        """Evaluate the loop trip count under macro environment ``env``.

        Handles the canonical Polybench shape ``for (i = L; i < U; i++)``
        (also ``<=``/``>``/``>=``, non-unit additive steps and the
        ``i = i + c`` step form).  ``facts`` supplies locally-constant
        variable values discovered by the interval analysis, so bounds
        held in variables (``int n = 4000; for (i = 0; i < n; i++)``)
        resolve without being macros.  Returns ``None`` when the bounds
        are not statically evaluable or the step runs away from the
        bound (a non-terminating loop under C semantics).
        """
        env = _merge_env(env, facts)
        lower = _init_value(self.node.init, env)
        cond = self.node.cond
        if lower is None or not isinstance(cond, ast.BinOp):
            return None
        upper = eval_const(cond.rhs, env)
        if upper is None:
            return None
        step = _step_value(self.node.step, env)
        if step is None or step == 0:
            return None
        if cond.op in ("<", "<="):
            if step < 0:
                return None  # counts away from an upper bound: no trip count
            span = upper - lower + (1 if cond.op == "<=" else 0)
        elif cond.op in (">", ">="):
            if step > 0:
                return None  # counts away from a lower bound: no trip count
            span = lower - upper + (1 if cond.op == ">=" else 0)
        else:
            return None
        step = abs(step)
        if span <= 0:
            return 0
        return (span + step - 1) // step


def _merge_env(
    env: Optional[Dict[str, int]], facts: Optional[Dict[str, int]]
) -> Dict[str, int]:
    """Macro environment overlaid with locally-constant facts."""
    if not facts:
        return env or {}
    merged = dict(env or {})
    merged.update(facts)
    return merged


def _init_value(init: Optional[ast.Stmt], env: Dict[str, int]) -> Optional[int]:
    if isinstance(init, ast.Decl) and init.init is not None:
        return eval_const(init.init, env)
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
        return eval_const(init.expr.rhs, env)
    return None


def _step_value(step: Optional[ast.Expr], env: Dict[str, int]) -> Optional[int]:
    """Signed per-iteration increment of the induction variable."""
    if isinstance(step, ast.UnaryOp) and step.op == "++":
        return 1
    if isinstance(step, ast.UnaryOp) and step.op == "--":
        return -1
    if isinstance(step, ast.Assign):
        if step.op == "+=":
            return eval_const(step.rhs, env)
        if step.op == "-=":
            value = eval_const(step.rhs, env)
            return None if value is None else -value
        if (
            step.op == "="
            and isinstance(step.lhs, ast.Ident)
            and isinstance(step.rhs, ast.BinOp)
            and step.rhs.op in ("+", "-")
            and isinstance(step.rhs.lhs, ast.Ident)
            and step.rhs.lhs.name == step.lhs.name
        ):
            value = eval_const(step.rhs.rhs, env)
            if value is None:
                return None
            return value if step.rhs.op == "+" else -value
    return None


def eval_const(expr: Optional[ast.Expr], env: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Constant-fold an integer expression; ``env`` supplies macro values."""
    env = env or {}
    if expr is None:
        return None
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Ident):
        return env.get(expr.name)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        value = eval_const(expr.operand, env)
        return None if value is None else -value
    if isinstance(expr, ast.UnaryOp) and expr.op == "+":
        return eval_const(expr.operand, env)
    if isinstance(expr, ast.Cast):
        return eval_const(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        lhs = eval_const(expr.lhs, env)
        rhs = eval_const(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/" and rhs != 0:
            # C semantics: integer division truncates toward zero
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs < 0) == (rhs < 0) else -quotient
        if expr.op == "%" and rhs != 0:
            # C semantics: the remainder takes the dividend's sign
            quotient = abs(lhs) // abs(rhs)
            truncated = quotient if (lhs < 0) == (rhs < 0) else -quotient
            return lhs - truncated * rhs
    return None


def collect_loops(node: ast.Node) -> List[LoopInfo]:
    """Return all ``for`` loops under ``node`` with depth/parent links.

    The returned list is in pre-order; the nest structure is available
    through ``parent``/``children``.
    """
    loops: List[LoopInfo] = []

    def visit(current: ast.Node, parent: Optional[LoopInfo], depth: int) -> None:
        if isinstance(current, ast.For):
            info = LoopInfo(node=current, depth=depth, parent=parent)
            if parent is not None:
                parent.children.append(info)
            loops.append(info)
            for child in _stmt_children(current):
                visit(child, info, depth + 1)
        else:
            for child in _stmt_children(current):
                visit(child, parent, depth)

    visit(node, None, 0)
    return loops


def _stmt_children(node: ast.Node) -> Iterator[ast.Node]:
    from repro.cir.visitor import iter_child_nodes

    return iter_child_nodes(node)


def max_loop_depth(node: ast.Node) -> int:
    """Deepest ``for`` nesting level under ``node`` (0 when loop-free)."""
    loops = collect_loops(node)
    if not loops:
        return 0
    return max(info.depth for info in loops) + 1


@dataclass
class OperationCensus:
    """Counts of operation kinds in a subtree (Milepost-style)."""

    assignments: int = 0
    binary_int_ops: int = 0
    binary_fp_ops: int = 0
    multiplies: int = 0
    divisions: int = 0
    comparisons: int = 0
    logical_ops: int = 0
    array_loads: int = 0
    array_stores: int = 0
    scalar_refs: int = 0
    calls: int = 0
    math_calls: int = 0
    branches: int = 0
    loops: int = 0
    returns: int = 0

    @property
    def memory_ops(self) -> int:
        return self.array_loads + self.array_stores

    @property
    def total_ops(self) -> int:
        return (
            self.assignments
            + self.binary_int_ops
            + self.binary_fp_ops
            + self.comparisons
            + self.logical_ops
            + self.memory_ops
            + self.calls
        )


_MATH_FUNCTIONS = frozenset(
    {"sqrt", "sqrtf", "pow", "powf", "exp", "expf", "log", "logf", "fabs",
     "fabsf", "sin", "cos", "tan", "fmax", "fmin", "ceil", "floor"}
)
_COMPARISON_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})
_LOGICAL_OPS = frozenset({"&&", "||"})


def census(node: ast.Node, fp_hint: bool = True) -> OperationCensus:
    """Count operation kinds in the subtree rooted at ``node``.

    ``fp_hint`` classifies arithmetic on array elements as floating
    point (Polybench arrays are DATA_TYPE = double); integer loop
    arithmetic (identifiers only) is classified as integer.
    """
    result = OperationCensus()
    for current in walk(node):
        if isinstance(current, ast.Assign):
            result.assignments += 1
            if isinstance(current.lhs, ast.ArrayRef):
                result.array_stores += 1
        elif isinstance(current, ast.BinOp):
            if current.op in _COMPARISON_OPS:
                result.comparisons += 1
            elif current.op in _LOGICAL_OPS:
                result.logical_ops += 1
            elif current.op == ",":
                pass
            else:
                if fp_hint and _touches_array(current):
                    result.binary_fp_ops += 1
                else:
                    result.binary_int_ops += 1
                if current.op == "*":
                    result.multiplies += 1
                elif current.op in ("/", "%"):
                    result.divisions += 1
        elif isinstance(current, ast.ArrayRef):
            result.array_loads += 1
        elif isinstance(current, ast.Ident):
            result.scalar_refs += 1
        elif isinstance(current, ast.Call):
            result.calls += 1
            if current.name in _MATH_FUNCTIONS:
                result.math_calls += 1
        elif isinstance(current, (ast.If, ast.TernaryOp)):
            result.branches += 1
        elif isinstance(current, (ast.For, ast.While, ast.DoWhile)):
            result.loops += 1
        elif isinstance(current, ast.Return):
            result.returns += 1
    # every store was also counted as a load via its ArrayRef; correct it
    result.array_loads = max(0, result.array_loads - result.array_stores)
    return result


def _touches_array(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.ArrayRef) for node in walk(expr))


def called_functions(node: ast.Node) -> List[str]:
    """Names of all directly-called functions in the subtree, in order."""
    names: List[str] = []
    for current in walk(node):
        if isinstance(current, ast.Call) and current.name:
            names.append(current.name)
    return names


def macro_environment(unit: ast.TranslationUnit) -> Dict[str, int]:
    """Extract ``#define NAME <int>`` constants from a translation unit."""
    env: Dict[str, int] = {}
    for decl in unit.decls:
        if isinstance(decl, ast.MacroDef) and decl.body:
            try:
                env[decl.name] = int(decl.body, 0)
            except ValueError:
                continue
    return env


def omp_parallel_loops(func: ast.FunctionDef) -> List[ast.Pragma]:
    """All OpenMP parallel-for pragmas inside a function body."""
    pragmas: List[ast.Pragma] = []
    for node in walk(func.body):
        if isinstance(node, ast.Pragma) and node.is_omp and "for" in node.text:
            pragmas.append(node)
    return pragmas
