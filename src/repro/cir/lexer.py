"""Tokenizer for the C subset used by the Polybench sources.

The lexer understands the pieces of C that matter to SOCRATES:
identifiers, integer/float/string/char literals, all the operators that
appear in expression-level C, preprocessor lines (``#include``,
``#define``, ``#pragma``) which are kept as single directive tokens,
and both comment styles (stripped).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "restrict", "return",
        "short", "signed", "sizeof", "static", "struct", "switch",
        "typedef", "union", "unsigned", "void", "volatile", "while",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class TokenKind(enum.Enum):
    """Lexical category of a :class:`Token`."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"
    OP = "op"
    DIRECTIVE = "directive"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_op(self, *texts: str) -> bool:
        """Return True when this token is an operator with one of ``texts``."""
        return self.kind is TokenKind.OP and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        """Return True when this token is a keyword with one of ``texts``."""
        return self.kind is TokenKind.KEYWORD and self.text in texts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


class LexError(ValueError):
    """Raised when the lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


class Lexer:
    """Convert C source text into a token stream.

    Preprocessor lines are not expanded; each one becomes a single
    :attr:`TokenKind.DIRECTIVE` token whose text is the whole logical
    line (with ``\\``-continuations joined).  This is exactly what the
    parser needs: ``#pragma`` lines become AST nodes, ``#include`` and
    ``#define`` are preserved verbatim.
    """

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> List[Token]:
        """Tokenize the whole input and return the token list (EOF last)."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._src):
                yield Token(TokenKind.EOF, "", self._line, self._col)
                return
            token = self._next_token()
            yield token

    # -- scanning helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._src):
            return self._src[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._src):
                return
            if self._src[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _at_line_start(self) -> bool:
        index = self._pos - 1
        while index >= 0:
            char = self._src[index]
            if char == "\n":
                return True
            if char not in " \t":
                return False
            index -= 1
        return True

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._src):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self._line, self._col)
            else:
                return

    # -- token producers ---------------------------------------------------

    def _next_token(self) -> Token:
        line, col = self._line, self._col
        char = self._peek()

        if char == "#" and self._at_line_start():
            return self._lex_directive(line, col)
        if char.isalpha() or char == "_":
            return self._lex_ident(line, col)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if char == '"':
            return self._lex_string(line, col)
        if char == "'":
            return self._lex_char(line, col)
        for op in _OPERATORS:
            if self._src.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        raise LexError(f"unexpected character {char!r}", line, col)

    def _lex_directive(self, line: int, col: int) -> Token:
        parts: List[str] = []
        while self._pos < len(self._src):
            char = self._peek()
            if char == "\\" and self._peek(1) == "\n":
                self._advance(2)
                parts.append(" ")
                continue
            if char == "\n":
                break
            parts.append(char)
            self._advance()
        text = "".join(parts).strip()
        return Token(TokenKind.DIRECTIVE, text, line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._src[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # integer / float suffixes
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        text = self._src[start : self._pos]
        return Token(TokenKind.FLOAT if is_float else TokenKind.INT, text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while self._pos < len(self._src) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self._pos >= len(self._src):
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        return Token(TokenKind.STRING, self._src[start : self._pos], line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while self._pos < len(self._src) and self._peek() != "'":
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self._pos >= len(self._src):
            raise LexError("unterminated character literal", line, col)
        self._advance()  # closing quote
        return Token(TokenKind.CHAR, self._src[start : self._pos], line, col)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source).tokens()
