"""A tree-walking interpreter for the CIR C subset.

Why interpret C in a simulator-based reproduction?  Because it closes
the loop the machine model cannot: the *functional* correctness of the
woven code.  With the interpreter we can

* execute an original benchmark source (at a small dataset) and check
  its output against the numpy reference implementation;
* execute the **weaved adaptive source together with the generated
  ``margot.h``** and verify that the wrapper dispatch, the version
  clones and the C-level ``margot_update`` reproduce exactly what the
  Python toolchain computed.

Supported semantics: ints (C truncating division/modulo) and doubles,
multi-dimensional arrays (numpy-backed), pointers to scalars
(``&x`` / ``*p``), all CIR statements, calls with by-reference arrays,
and a small intrinsic library (math functions, ``fprintf``/``printf``
capture, a virtual ``omp_get_wtime`` clock).  OpenMP and GCC pragmas
are semantic no-ops, exactly as a single-threaded execution of the
pragma-annotated code.

Dataset macros can be overridden (``macro_overrides={"N": 8}``) so the
LARGE-configured sources run in milliseconds.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.cir import ast
from repro.cir.analysis import eval_const


class InterpError(RuntimeError):
    """Raised on unsupported constructs or runtime errors."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class Reference:
    """A pointer to a scalar variable (``&x``)."""

    def __init__(self, scope: "_Scope", name: str) -> None:
        self._scope = scope
        self._name = name

    def get(self) -> Any:
        return self._scope.get(self._name)

    def set(self, value: Any) -> None:
        self._scope.set(self._name, value)


class _Scope:
    """A chain-linked variable scope."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self._vars: Dict[str, Any] = {}
        self._parent = parent

    def declare(self, name: str, value: Any) -> None:
        self._vars[name] = value

    def get(self, name: str) -> Any:
        scope = self._find(name)
        if scope is None:
            raise InterpError(f"undefined variable {name!r}")
        return scope._vars[name]

    def set(self, name: str, value: Any) -> None:
        scope = self._find(name)
        if scope is None:
            raise InterpError(f"assignment to undeclared variable {name!r}")
        scope._vars[name] = value

    def owner_of(self, name: str) -> "_Scope":
        scope = self._find(name)
        if scope is None:
            raise InterpError(f"undefined variable {name!r}")
        return scope

    def has(self, name: str) -> bool:
        return self._find(name) is not None

    def _find(self, name: str) -> Optional["_Scope"]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope._vars:
                return scope
            scope = scope._parent
        return None


def _is_float_type(name: str) -> bool:
    return name.split()[-1] in ("float", "double")


def _c_int_div(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise InterpError("integer division by zero")
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs < 0) == (rhs < 0) else -quotient


def _c_int_mod(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise InterpError("integer modulo by zero")
    return lhs - _c_int_div(lhs, rhs) * rhs


class Interpreter:
    """Execute one or more translation units (e.g. app + margot.h)."""

    def __init__(
        self,
        units: Union[ast.TranslationUnit, Sequence[ast.TranslationUnit]],
        macro_overrides: Optional[Mapping[str, int]] = None,
        intrinsics: Optional[Mapping[str, Callable[..., Any]]] = None,
        max_steps: int = 20_000_000,
        num_threads: int = 1,
        threads_variable: str = "__socrates_num_threads",
    ) -> None:
        """``num_threads`` is the simulated OpenMP team size reported by
        ``omp_get_num_threads``/``omp_get_max_threads``; when the woven
        ``threads_variable`` control variable exists (and is >= 1), its
        current value wins, so interp-level checks of woven code see
        the configuration mARGOt actually selected."""
        if num_threads < 1:
            raise InterpError(f"num_threads must be >= 1, got {num_threads}")
        if isinstance(units, ast.TranslationUnit):
            units = [units]
        self._units = list(units)
        self._num_threads = num_threads
        self._threads_variable = threads_variable
        self._functions: Dict[str, ast.FunctionDef] = {}
        self._globals = _Scope()
        self._macros: Dict[str, Any] = {}
        self._float_types = {"float", "double"}
        self._steps = 0
        self._max_steps = max_steps
        self._clock = 0.0
        self.stdout: List[str] = []
        self.stderr: List[str] = []
        self._intrinsics: Dict[str, Callable[..., Any]] = dict(self._default_intrinsics())
        if intrinsics:
            self._intrinsics.update(intrinsics)
        self._load(macro_overrides or {})

    # -- setup -----------------------------------------------------------------

    def _load(self, overrides: Mapping[str, int]) -> None:
        # first pass: macros and typedefs (type aliases matter for decls)
        for unit in self._units:
            for decl in unit.decls:
                if isinstance(decl, ast.MacroDef):
                    self._load_macro(decl)
                elif isinstance(decl, ast.Typedef):
                    if _is_float_type(decl.type.name) or decl.type.name in self._float_types:
                        self._float_types.add(decl.name)
        for name, value in overrides.items():
            if name not in self._macros:
                raise InterpError(f"override for undefined macro {name!r}")
            self._macros[name] = value
        for name, value in self._macros.items():
            self._globals.declare(name, value)
        # second pass: functions and globals
        for unit in self._units:
            for decl in unit.decls:
                if isinstance(decl, ast.FunctionDef):
                    self._functions[decl.name] = decl
                elif isinstance(decl, ast.Decl):
                    self._declare(decl, self._globals)

    def _load_macro(self, macro: ast.MacroDef) -> None:
        body = macro.body.strip()
        if not body:
            return
        if body in ("float", "double"):
            self._float_types.add(macro.name)
            return
        try:
            self._macros[macro.name] = int(body, 0)
            return
        except ValueError:
            pass
        try:
            self._macros[macro.name] = float(body)
        except ValueError:
            pass  # non-numeric macro: ignored (e.g. attribute macros)

    def _default_intrinsics(self) -> Dict[str, Callable[..., Any]]:
        def _fprintf(stream: Any, fmt: str, *args: Any) -> int:
            text = self._format(fmt, args)
            (self.stderr if stream == "stderr" else self.stdout).append(text)
            return len(text)

        def _printf(fmt: str, *args: Any) -> int:
            text = self._format(fmt, args)
            self.stdout.append(text)
            return len(text)

        def _wtime() -> float:
            self._clock += 1e-6
            return self._clock

        def _omp_threads() -> int:
            # the woven control variable (set by margot_update) wins
            # over the constructor-configured team size
            if self._threads_variable and self._globals.has(self._threads_variable):
                try:
                    value = int(self._globals.get(self._threads_variable))
                except (TypeError, ValueError):
                    value = 0
                if value >= 1:
                    return value
            return self._num_threads

        return {
            "sqrt": math.sqrt,
            "pow": math.pow,
            "exp": math.exp,
            "log": math.log,
            "fabs": abs,
            "fmax": max,
            "fmin": min,
            "ceil": math.ceil,
            "floor": math.floor,
            "sin": math.sin,
            "cos": math.cos,
            "fprintf": _fprintf,
            "printf": _printf,
            "omp_get_wtime": _wtime,
            "omp_get_num_threads": _omp_threads,
            "omp_get_max_threads": _omp_threads,
            "omp_get_thread_num": lambda: 0,
        }

    @staticmethod
    def _format(fmt: str, args: Sequence[Any]) -> str:
        text = fmt
        if text.startswith('"') and text.endswith('"'):
            text = text[1:-1]
        text = text.replace("\\n", "\n").replace("\\t", "\t")
        # translate the C length modifiers Python's % does not know
        for spec in ("%0.2lf", "%.2lf", "%lf"):
            text = text.replace(spec, "%f")
        text = text.replace("%d", "%s").replace("%f", "%s")
        count = text.count("%s")
        try:
            return text % tuple(args[:count])
        except (TypeError, ValueError):
            return text

    # -- public API ----------------------------------------------------------------

    @property
    def globals(self) -> _Scope:
        return self._globals

    def global_value(self, name: str) -> Any:
        """Read a global variable (arrays come back as numpy views)."""
        return self._globals.get(name)

    def set_global(self, name: str, value: Any) -> None:
        self._globals.set(name, value)

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def call(self, name: str, *args: Any) -> Any:
        """Call a C function by name with Python/numpy arguments."""
        func = self._functions.get(name)
        if func is None:
            raise InterpError(f"undefined function {name!r}")
        if len(args) != len(func.params):
            raise InterpError(
                f"{name}() expects {len(func.params)} arguments, got {len(args)}"
            )
        scope = _Scope(self._globals)
        for param, value in zip(func.params, args):
            scope.declare(param.name, value)
        try:
            self._exec_block(func.body, _Scope(scope))
        except _Return as ret:
            return ret.value
        return None

    def run_main(self, argc: int = 1, argv: Any = None) -> Any:
        """Execute ``main(argc, argv)``."""
        main = self._functions.get("main")
        if main is None:
            raise InterpError("no main function")
        args: List[Any] = []
        if len(main.params) >= 1:
            args.append(argc)
        if len(main.params) >= 2:
            args.append(argv)
        return self.call("main", *args)

    # -- statements ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise InterpError(f"step budget exceeded ({self._max_steps})")

    def _exec_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.stmts:
            self._exec(stmt, scope)

    def _exec(self, stmt: ast.Stmt, scope: _Scope) -> None:
        self._tick()
        if isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, scope)
        elif isinstance(stmt, ast.Decl):
            self._declare(stmt, scope)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._declare(decl, scope)
        elif isinstance(stmt, ast.Block):
            self._exec_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, scope)):
                self._exec(stmt.then, scope)
            elif stmt.other is not None:
                self._exec(stmt.other, scope)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, scope)
        elif isinstance(stmt, ast.While):
            while self._truthy(self._eval(stmt.cond, scope)):
                self._tick()
                try:
                    self._exec(stmt.body, scope)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec(stmt.body, scope)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self._eval(stmt.cond, scope)):
                    break
        elif isinstance(stmt, ast.Return):
            raise _Return(self._eval(stmt.value, scope) if stmt.value else None)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, (ast.Pragma, ast.EmptyStmt)):
            pass  # pragmas carry no single-threaded semantics
        else:
            raise InterpError(f"unsupported statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.For, scope: _Scope) -> None:
        loop_scope = _Scope(scope)
        if stmt.init is not None:
            self._exec(stmt.init, loop_scope)
        while stmt.cond is None or self._truthy(self._eval(stmt.cond, loop_scope)):
            self._tick()
            try:
                self._exec(stmt.body, loop_scope)
            except _Break:
                return
            except _Continue:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, loop_scope)

    def _declare(self, decl: ast.Decl, scope: _Scope) -> None:
        is_float = self._type_is_float(decl.type)
        if decl.array_dims:
            flat: Optional[List[Any]] = None
            if isinstance(decl.init, ast.CompoundLiteral):
                flat = [self._eval(item, scope) for item in _flatten(decl.init)]
            dims = []
            for dim in decl.array_dims:
                if isinstance(dim, ast.Ident) and dim.name == "":
                    # `int a[] = {...}`: the initializer sets the size
                    if flat is None:
                        raise InterpError(
                            f"unsized array {decl.name!r} needs an initializer"
                        )
                    dims.append(max(1, len(flat)))
                    continue
                value = self._eval(dim, scope)
                if value is None or isinstance(value, str):
                    raise InterpError(f"bad array dimension for {decl.name!r}")
                dims.append(int(value))
            dtype = np.float64 if is_float else np.int64
            array = np.zeros(dims, dtype=dtype)
            if flat is not None:
                array.flat[: len(flat)] = flat
            scope.declare(decl.name, array)
            return
        if decl.init is not None:
            value = self._eval(decl.init, scope)
        else:
            value = 0.0 if is_float else 0
        if decl.type.pointers == 0 and not isinstance(value, (Reference, np.ndarray, str)):
            value = float(value) if is_float else int(value)
        scope.declare(decl.name, value)

    def _type_is_float(self, type_: ast.Type) -> bool:
        return type_.name.split()[-1] in self._float_types or _is_float_type(type_.name)

    # -- expressions -------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, scope: _Scope) -> Any:
        self._tick()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.text
        if isinstance(expr, ast.CharLit):
            return ord(expr.text[1]) if len(expr.text) == 3 else 0
        if isinstance(expr, ast.Ident):
            return scope.get(expr.name)
        if isinstance(expr, ast.ArrayRef):
            array, indices = self._resolve_array(expr, scope)
            value = array[indices]
            return float(value) if array.dtype.kind == "f" else int(value)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, scope)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, scope)
        if isinstance(expr, ast.TernaryOp):
            if self._truthy(self._eval(expr.cond, scope)):
                return self._eval(expr.then, scope)
            return self._eval(expr.other, scope)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, scope)
            if expr.type.pointers:
                return value
            return float(value) if self._type_is_float(expr.type) else int(value)
        if isinstance(expr, ast.SizeOf):
            return 8
        raise InterpError(f"unsupported expression {type(expr).__name__}")

    def _resolve_array(self, ref: ast.ArrayRef, scope: _Scope):
        base = self._eval(ref.base, scope)
        if not isinstance(base, np.ndarray):
            raise InterpError("indexing a non-array value")
        indices = tuple(int(self._eval(index, scope)) for index in ref.indices)
        if len(indices) > base.ndim:
            raise InterpError("too many array subscripts")
        return base, indices

    def _eval_call(self, call: ast.Call, scope: _Scope) -> Any:
        name = call.name
        if name is None:
            raise InterpError("indirect calls are not supported")
        args = [self._eval_call_arg(arg, scope) for arg in call.args]
        if name in self._functions:
            return self.call(name, *args)
        intrinsic = self._intrinsics.get(name)
        if intrinsic is None:
            raise InterpError(f"call to undefined function {name!r}")
        return intrinsic(*args)

    def _eval_call_arg(self, arg: ast.Expr, scope: _Scope) -> Any:
        # &x produces a Reference the callee writes through
        if isinstance(arg, ast.UnaryOp) and arg.op == "&" and isinstance(arg.operand, ast.Ident):
            owner = scope.owner_of(arg.operand.name)
            return Reference(owner, arg.operand.name)
        if isinstance(arg, ast.Ident):
            if arg.name in ("stderr", "stdout") and not scope.has(arg.name):
                return arg.name
            return scope.get(arg.name)
        return self._eval(arg, scope)

    def _eval_binop(self, expr: ast.BinOp, scope: _Scope) -> Any:
        op = expr.op
        if op == "&&":
            return 1 if (self._truthy(self._eval(expr.lhs, scope)) and self._truthy(self._eval(expr.rhs, scope))) else 0
        if op == "||":
            return 1 if (self._truthy(self._eval(expr.lhs, scope)) or self._truthy(self._eval(expr.rhs, scope))) else 0
        if op == ",":
            self._eval(expr.lhs, scope)
            return self._eval(expr.rhs, scope)
        lhs = self._eval(expr.lhs, scope)
        rhs = self._eval(expr.rhs, scope)
        return self._apply_binop(op, lhs, rhs)

    @staticmethod
    def _apply_binop(op: str, lhs: Any, rhs: Any) -> Any:
        both_int = isinstance(lhs, int) and isinstance(rhs, int)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return _c_int_div(lhs, rhs) if both_int else lhs / rhs
        if op == "%":
            if not both_int:
                raise InterpError("% requires integer operands")
            return _c_int_mod(lhs, rhs)
        if op == "<":
            return 1 if lhs < rhs else 0
        if op == ">":
            return 1 if lhs > rhs else 0
        if op == "<=":
            return 1 if lhs <= rhs else 0
        if op == ">=":
            return 1 if lhs >= rhs else 0
        if op == "==":
            return 1 if lhs == rhs else 0
        if op == "!=":
            return 1 if lhs != rhs else 0
        if op == "&":
            return int(lhs) & int(rhs)
        if op == "|":
            return int(lhs) | int(rhs)
        if op == "^":
            return int(lhs) ^ int(rhs)
        if op == "<<":
            return int(lhs) << int(rhs)
        if op == ">>":
            return int(lhs) >> int(rhs)
        raise InterpError(f"unsupported operator {op!r}")

    def _eval_unary(self, expr: ast.UnaryOp, scope: _Scope) -> Any:
        op = expr.op
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            old = self._read_lvalue(expr.operand, scope)
            self._write_lvalue(expr.operand, scope, old + delta)
            return old if expr.postfix else old + delta
        if op == "&":
            if isinstance(expr.operand, ast.Ident):
                return Reference(scope.owner_of(expr.operand.name), expr.operand.name)
            raise InterpError("can only take the address of a scalar variable")
        if op == "*":
            value = self._eval(expr.operand, scope)
            if isinstance(value, Reference):
                return value.get()
            raise InterpError("dereferencing a non-pointer")
        value = self._eval(expr.operand, scope)
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return ~int(value)
        raise InterpError(f"unsupported unary operator {op!r}")

    def _eval_assign(self, expr: ast.Assign, scope: _Scope) -> Any:
        if expr.op == "=":
            value = self._eval(expr.rhs, scope)
        else:
            op = expr.op[:-1]  # "+=" -> "+"
            value = self._apply_binop(
                op, self._read_lvalue(expr.lhs, scope), self._eval(expr.rhs, scope)
            )
        self._write_lvalue(expr.lhs, scope, value)
        return value

    def _read_lvalue(self, lvalue: ast.Expr, scope: _Scope) -> Any:
        return self._eval(lvalue, scope)

    def _write_lvalue(self, lvalue: ast.Expr, scope: _Scope, value: Any) -> None:
        if isinstance(lvalue, ast.Ident):
            current = scope.get(lvalue.name)
            if isinstance(current, int) and not isinstance(value, (Reference, np.ndarray)):
                value = int(value)
            scope.set(lvalue.name, value)
            return
        if isinstance(lvalue, ast.ArrayRef):
            array, indices = self._resolve_array(lvalue, scope)
            array[indices] = value
            return
        if isinstance(lvalue, ast.UnaryOp) and lvalue.op == "*":
            target = self._eval(lvalue.operand, scope)
            if isinstance(target, Reference):
                target.set(value)
                return
            raise InterpError("assignment through a non-pointer")
        raise InterpError(f"unsupported lvalue {type(lvalue).__name__}")

    @staticmethod
    def _truthy(value: Any) -> bool:
        if isinstance(value, (int, float, np.integer, np.floating)):
            return value != 0
        return value is not None


def _flatten(literal: ast.CompoundLiteral):
    for item in literal.items:
        if isinstance(item, ast.CompoundLiteral):
            yield from _flatten(item)
        else:
            yield item


def make_cell(value: Any = 0.0) -> Reference:
    """A free-standing pointer target, for passing ``&x`` arguments
    into :meth:`Interpreter.call` from Python."""
    scope = _Scope()
    scope.declare("cell", value)
    return Reference(scope, "cell")
