"""AST node definitions for the C subset.

Nodes are plain dataclasses.  Child-node fields are discovered
generically (see :mod:`repro.cir.visitor`), so transformations written
for the LARA weaver do not need per-node boilerplate.

Design notes
------------
* Types are flattened into a :class:`Type` value object (base name,
  pointer level, qualifiers) — enough for Polybench, which only uses
  scalars, arrays and pointers of scalar types.
* ``#pragma`` lines are first-class statements/declarations
  (:class:`Pragma`); the Multiversioning strategy of the paper works by
  inserting and rewriting them.
* ``#include`` and ``#define`` are preserved verbatim
  (:class:`Include`, :class:`MacroDef`) so a weaved translation unit
  prints back to a complete compilable-looking source file.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for every AST node."""

    def clone(self) -> "Node":
        """Return a deep copy of this node (used by kernel cloning)."""
        return copy.deepcopy(self)


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


@dataclass
class Type(Node):
    """A (possibly qualified, possibly pointer) scalar type.

    ``name`` is the space-joined base type ("unsigned long", "double",
    a typedef name, ...), ``pointers`` the number of ``*`` levels and
    ``qualifiers`` an ordered tuple such as ``("static", "const")``.
    """

    name: str
    pointers: int = 0
    qualifiers: Tuple[str, ...] = ()

    def __str__(self) -> str:
        prefix = " ".join(self.qualifiers)
        stars = "*" * self.pointers
        parts = [part for part in (prefix, self.name) if part]
        return " ".join(parts) + (" " + stars if stars else "")

    @property
    def is_floating(self) -> bool:
        """True for ``float``/``double`` (including ``long double``)."""
        return self.name.split()[-1] in {"float", "double"}

    @property
    def is_void(self) -> bool:
        return self.name == "void" and self.pointers == 0


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    text: str

    @property
    def value(self) -> int:
        text = self.text.rstrip("uUlL")
        return int(text, 0)


@dataclass
class FloatLit(Expr):
    text: str

    @property
    def value(self) -> float:
        return float(self.text.rstrip("fFlL"))


@dataclass
class StringLit(Expr):
    text: str  # includes the surrounding quotes


@dataclass
class CharLit(Expr):
    text: str  # includes the surrounding quotes


@dataclass
class Ident(Expr):
    name: str


@dataclass
class ArrayRef(Expr):
    """``base[i0][i1]...`` — indices kept as a list for nest analysis."""

    base: Expr
    indices: List[Expr]


@dataclass
class Call(Expr):
    func: Expr
    args: List[Expr]

    @property
    def name(self) -> Optional[str]:
        """Callee name when the callee is a plain identifier."""
        if isinstance(self.func, Ident):
            return self.func.name
        return None


@dataclass
class Member(Expr):
    """``base.field`` or ``base->field``."""

    base: Expr
    field_name: str
    arrow: bool = False


@dataclass
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr
    postfix: bool = False  # for i++ / i--


@dataclass
class Assign(Expr):
    """Assignment expression: ``lhs op rhs`` where op is ``=``, ``+=``, ..."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class TernaryOp(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Cast(Expr):
    type: Type
    operand: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof(type)`` or ``sizeof expr``."""

    type: Optional[Type] = None
    operand: Optional[Expr] = None


@dataclass
class CompoundLiteral(Expr):
    """Brace initializer ``{a, b, {c}}`` (used in declarations)."""

    items: List[Expr]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Decl(Stmt):
    """A variable declaration, also usable at file scope.

    ``array_dims`` holds one expression per ``[dim]`` suffix; an empty
    list means a plain scalar/pointer declaration.
    """

    type: Type
    name: str
    array_dims: List[Expr] = field(default_factory=list)
    init: Optional[Expr] = None

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)


@dataclass
class DeclGroup(Stmt):
    """A comma declaration ``int i, j, k;`` kept as one statement.

    Unlike a :class:`Block`, a DeclGroup introduces no scope — it prints
    as a single source line and counts as one logical line of code.
    """

    decls: List[Decl] = field(default_factory=list)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    """C ``for`` loop; ``init`` may be a declaration or an expression."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Pragma(Stmt):
    """A ``#pragma`` line; ``text`` excludes the ``#pragma `` prefix."""

    text: str

    @property
    def is_omp(self) -> bool:
        return self.text.startswith("omp")

    @property
    def is_gcc_optimize(self) -> bool:
        return self.text.startswith("GCC optimize")


@dataclass
class EmptyStmt(Stmt):
    """A bare ``;``."""


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type: Type
    name: str
    array_dims: List[Expr] = field(default_factory=list)


@dataclass
class FunctionDef(Node):
    return_type: Type
    name: str
    params: List[Param]
    body: Block
    storage: Tuple[str, ...] = ()  # e.g. ("static",)
    pragmas: List[Pragma] = field(default_factory=list)  # attached before the def

    @property
    def signature(self) -> str:
        params = ", ".join(
            f"{param.type}{param.name}" + "".join("[]" for _ in param.array_dims)
            for param in self.params
        )
        return f"{self.return_type} {self.name}({params})"


@dataclass
class FunctionDecl(Node):
    """A function prototype (declaration without a body)."""

    return_type: Type
    name: str
    params: List[Param]
    storage: Tuple[str, ...] = ()


@dataclass
class Include(Node):
    """``#include <...>`` or ``#include "..."`` kept verbatim."""

    target: str
    system: bool = True

    @property
    def text(self) -> str:
        if self.system:
            return f"#include <{self.target}>"
        return f'#include "{self.target}"'


@dataclass
class MacroDef(Node):
    """``#define NAME body`` kept verbatim (no expansion)."""

    name: str
    body: str = ""

    @property
    def text(self) -> str:
        if self.body:
            return f"#define {self.name} {self.body}"
        return f"#define {self.name}"


@dataclass
class Typedef(Node):
    type: Type
    name: str


@dataclass
class RawDirective(Node):
    """Any other preprocessor line (``#ifdef``, ``#endif``, ...)."""

    text: str


@dataclass
class TranslationUnit(Node):
    """A whole source file: ordered list of top-level declarations."""

    decls: List[Node] = field(default_factory=list)
    name: str = "<anonymous>"

    def functions(self) -> List[FunctionDef]:
        """All function definitions, in file order."""
        return [decl for decl in self.decls if isinstance(decl, FunctionDef)]

    def function(self, name: str) -> FunctionDef:
        """Look up one function definition by name.

        Raises ``KeyError`` when no definition with that name exists.
        """
        for decl in self.decls:
            if isinstance(decl, FunctionDef) and decl.name == name:
                return decl
        raise KeyError(f"no function named {name!r} in {self.name}")

    def has_function(self, name: str) -> bool:
        return any(
            isinstance(decl, FunctionDef) and decl.name == name for decl in self.decls
        )
