"""Pretty-printer and logical-line-of-code metrics for the CIR.

``to_source`` renders an AST back to compilable-looking C text;
``logical_lines`` counts *logical* lines of code the way the paper's
Table I does: one per declaration, simple statement, control-structure
header, pragma, preprocessor line and function signature — braces and
blank lines do not count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cir import ast

_INDENT = "  "


class SourceMap:
    """Node-id -> 1-based line numbers of one ``to_source`` rendering.

    Statements, declarations and function signatures are recorded as
    they are emitted; :meth:`line_of` resolves any node (including
    sub-expressions) to the line of its nearest recorded ancestor once
    :meth:`expand` has been called with the printed root.
    """

    def __init__(self) -> None:
        self._lines: Dict[int, int] = {}

    def record(self, node: ast.Node, line: int) -> None:
        self._lines.setdefault(id(node), line)

    def line_of(self, node: ast.Node) -> Optional[int]:
        return self._lines.get(id(node))

    def expand(self, root: ast.Node) -> "SourceMap":
        """Propagate statement lines down to every descendant node."""
        from repro.cir.visitor import iter_child_nodes

        def visit(node: ast.Node, current: Optional[int]) -> None:
            line = self._lines.get(id(node))
            if line is not None:
                current = line
            elif current is not None:
                self._lines[id(node)] = current
            for child in iter_child_nodes(node):
                visit(child, current)

        visit(root, None)
        return self


class _Printer:
    def __init__(self, source_map: Optional[SourceMap] = None) -> None:
        self._lines: List[str] = []
        self._depth = 0
        self._map = source_map

    # -- helpers ------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append(_INDENT * self._depth + text)

    def _mark(self, node: ast.Node) -> None:
        """Record that ``node``'s text starts on the next emitted line."""
        if self._map is not None:
            self._map.record(node, len(self._lines) + 1)

    def render(self, node: ast.Node) -> str:
        self._print_node(node)
        return "\n".join(self._lines) + "\n"

    # -- top level ------------------------------------------------------------

    def _print_node(self, node: ast.Node) -> None:
        if not isinstance(node, (ast.TranslationUnit, ast.FunctionDef, ast.Stmt)):
            self._mark(node)
        if isinstance(node, ast.TranslationUnit):
            for index, decl in enumerate(node.decls):
                if index and isinstance(decl, (ast.FunctionDef, ast.FunctionDecl)):
                    self._lines.append("")
                self._print_node(decl)
        elif isinstance(node, ast.Include):
            self._emit(node.text)
        elif isinstance(node, ast.MacroDef):
            self._emit(node.text)
        elif isinstance(node, ast.RawDirective):
            self._emit(node.text)
        elif isinstance(node, ast.Typedef):
            self._emit(f"typedef {node.type} {node.name};")
        elif isinstance(node, ast.FunctionDef):
            for pragma in node.pragmas:
                self._mark(pragma)
                self._emit(f"#pragma {pragma.text}")
            storage = " ".join(node.storage)
            prefix = storage + " " if storage else ""
            self._mark(node)
            self._emit(f"{prefix}{node.return_type} {node.name}({self._params(node.params)})")
            self._print_block(node.body)
        elif isinstance(node, ast.FunctionDecl):
            storage = " ".join(node.storage)
            prefix = storage + " " if storage else ""
            self._emit(f"{prefix}{node.return_type} {node.name}({self._params(node.params)});")
        elif isinstance(node, ast.Stmt):
            self._print_stmt(node)
        else:
            raise TypeError(f"cannot print node of type {type(node).__name__}")

    def _params(self, params: List[ast.Param]) -> str:
        if not params:
            return "void"
        rendered = []
        for param in params:
            dims = "".join(f"[{expr_to_source(d)}]" for d in param.array_dims)
            type_text = str(param.type)
            space = "" if type_text.endswith("*") or not param.name else " "
            rendered.append(f"{type_text}{space}{param.name}{dims}")
        return ", ".join(rendered)

    # -- statements ------------------------------------------------------------

    def _print_block(self, block: ast.Block) -> None:
        self._emit("{")
        self._depth += 1
        for stmt in block.stmts:
            self._print_stmt(stmt)
        self._depth -= 1
        self._emit("}")

    def _print_body(self, stmt: ast.Stmt) -> None:
        """Print a loop/if body, indenting single statements."""
        if isinstance(stmt, ast.Block):
            self._print_block(stmt)
        else:
            self._depth += 1
            self._print_stmt(stmt)
            self._depth -= 1

    def _print_stmt(self, stmt: ast.Stmt) -> None:
        if not isinstance(stmt, ast.Block):
            self._mark(stmt)
        if isinstance(stmt, ast.Block):
            self._print_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(expr_to_source(stmt.expr) + ";")
        elif isinstance(stmt, ast.Decl):
            self._emit(self._decl_text(stmt) + ";")
        elif isinstance(stmt, ast.DeclGroup):
            head = self._decl_text(stmt.decls[0])
            rest = [self._decl_tail_text(decl) for decl in stmt.decls[1:]]
            self._emit(", ".join([head] + rest) + ";")
        elif isinstance(stmt, ast.Pragma):
            self._emit(f"#pragma {stmt.text}")
        elif isinstance(stmt, ast.If):
            self._emit(f"if ({expr_to_source(stmt.cond)})")
            self._print_body(stmt.then)
            if stmt.other is not None:
                self._emit("else")
                self._print_body(stmt.other)
        elif isinstance(stmt, ast.For):
            init = self._for_init_text(stmt.init)
            cond = expr_to_source(stmt.cond) if stmt.cond is not None else ""
            step = expr_to_source(stmt.step) if stmt.step is not None else ""
            self._emit(f"for ({init}; {cond}; {step})")
            self._print_body(stmt.body)
        elif isinstance(stmt, ast.While):
            self._emit(f"while ({expr_to_source(stmt.cond)})")
            self._print_body(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._emit("do")
            self._print_body(stmt.body)
            self._emit(f"while ({expr_to_source(stmt.cond)});")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {expr_to_source(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self._emit("break;")
        elif isinstance(stmt, ast.Continue):
            self._emit("continue;")
        elif isinstance(stmt, ast.EmptyStmt):
            self._emit(";")
        else:
            raise TypeError(f"cannot print statement of type {type(stmt).__name__}")

    def _decl_text(self, decl: ast.Decl) -> str:
        dims = "".join(f"[{expr_to_source(d)}]" for d in decl.array_dims)
        type_text = str(decl.type)
        space = "" if type_text.endswith("*") else " "
        text = f"{type_text}{space}{decl.name}{dims}"
        if decl.init is not None:
            text += f" = {expr_to_source(decl.init)}"
        return text

    def _decl_tail_text(self, decl: ast.Decl) -> str:
        """Render a non-first comma declarator (stars + name + dims)."""
        stars = "*" * decl.type.pointers
        dims = "".join(f"[{expr_to_source(d)}]" for d in decl.array_dims)
        text = f"{stars}{decl.name}{dims}"
        if decl.init is not None:
            text += f" = {expr_to_source(decl.init)}"
        return text

    def _for_init_text(self, init: Optional[ast.Stmt]) -> str:
        if init is None:
            return ""
        if isinstance(init, ast.ExprStmt):
            return expr_to_source(init.expr)
        if isinstance(init, ast.Decl):
            return self._decl_text(init)
        if isinstance(init, ast.DeclGroup):
            head = self._decl_text(init.decls[0])
            rest = [self._decl_tail_text(decl) for decl in init.decls[1:]]
            return ", ".join([head] + rest)
        raise TypeError(f"unsupported for-init node {type(init).__name__}")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    ",": 0,
    "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1, "%=": 1,
    "&=": 1, "|=": 1, "^=": 1, "<<=": 1, ">>=": 1,
    "?:": 2,
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "==": 8, "!=": 8,
    "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10,
    "+": 11, "-": 11,
    "*": 12, "/": 12, "%": 12,
}
_UNARY_PRECEDENCE = 13
_POSTFIX_PRECEDENCE = 14
_PRIMARY_PRECEDENCE = 15


def _expr_parts(expr: ast.Expr) -> "tuple[str, int]":
    """Render an expression; return (text, precedence of its top operator)."""
    if isinstance(expr, ast.IntLit):
        return expr.text, _PRIMARY_PRECEDENCE
    if isinstance(expr, ast.FloatLit):
        return expr.text, _PRIMARY_PRECEDENCE
    if isinstance(expr, ast.StringLit):
        return expr.text, _PRIMARY_PRECEDENCE
    if isinstance(expr, ast.CharLit):
        return expr.text, _PRIMARY_PRECEDENCE
    if isinstance(expr, ast.Ident):
        return expr.name, _PRIMARY_PRECEDENCE
    if isinstance(expr, ast.ArrayRef):
        base = _wrap(expr.base, _POSTFIX_PRECEDENCE)
        indices = "".join(f"[{expr_to_source(i)}]" for i in expr.indices)
        return base + indices, _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Call):
        func = _wrap(expr.func, _POSTFIX_PRECEDENCE)
        args = ", ".join(expr_to_source(a) for a in expr.args)
        return f"{func}({args})", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Member):
        base = _wrap(expr.base, _POSTFIX_PRECEDENCE)
        sep = "->" if expr.arrow else "."
        return f"{base}{sep}{expr.field_name}", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.UnaryOp):
        if expr.postfix:
            operand = _wrap(expr.operand, _POSTFIX_PRECEDENCE)
            return f"{operand}{expr.op}", _POSTFIX_PRECEDENCE
        operand = _wrap(expr.operand, _UNARY_PRECEDENCE)
        return f"{expr.op}{operand}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.Cast):
        operand = _wrap(expr.operand, _UNARY_PRECEDENCE)
        return f"({expr.type}){operand}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.SizeOf):
        if expr.type is not None:
            return f"sizeof({expr.type})", _PRIMARY_PRECEDENCE
        return f"sizeof {_wrap(expr.operand, _UNARY_PRECEDENCE)}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        lhs = _wrap(expr.lhs, prec)
        rhs = _wrap(expr.rhs, prec + 1)
        if expr.op == ",":
            return f"{lhs}, {rhs}", prec
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, ast.Assign):
        prec = _PRECEDENCE[expr.op]
        lhs = _wrap(expr.lhs, prec + 1)
        rhs = _wrap(expr.rhs, prec)
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, ast.TernaryOp):
        cond = _wrap(expr.cond, _PRECEDENCE["?:"] + 1)
        then = expr_to_source(expr.then)
        other = _wrap(expr.other, _PRECEDENCE["?:"])
        return f"{cond} ? {then} : {other}", _PRECEDENCE["?:"]
    if isinstance(expr, ast.CompoundLiteral):
        items = ", ".join(expr_to_source(i) for i in expr.items)
        return "{" + items + "}", _PRIMARY_PRECEDENCE
    raise TypeError(f"cannot print expression of type {type(expr).__name__}")


def _wrap(expr: Optional[ast.Expr], min_precedence: int) -> str:
    if expr is None:
        return ""
    text, precedence = _expr_parts(expr)
    if precedence < min_precedence:
        return f"({text})"
    return text


def expr_to_source(expr: Optional[ast.Expr]) -> str:
    """Render one expression subtree to C text."""
    if expr is None:
        return ""
    text, _ = _expr_parts(expr)
    return text


def to_source(node: ast.Node) -> str:
    """Render any AST node (usually a TranslationUnit) to C source text."""
    return _Printer().render(node)


def to_source_with_map(node: ast.Node) -> "tuple[str, SourceMap]":
    """Render to C text and return the expanded node -> line map.

    Every node of the subtree (including sub-expressions) resolves to
    the 1-based line of the statement that prints it; this is what the
    static-analysis diagnostics use for locations.
    """
    source_map = SourceMap()
    text = _Printer(source_map).render(node)
    return text, source_map.expand(node)


# ---------------------------------------------------------------------------
# logical LOC
# ---------------------------------------------------------------------------


def logical_lines(node: ast.Node) -> int:
    """Count logical lines of code of an AST subtree.

    One logical line per: declaration, simple statement, control
    structure header (``if``/``for``/``while``/``do``), ``else`` arm,
    ``return``/``break``/``continue``, pragma, preprocessor directive,
    typedef and function signature.  Blocks and empty statements are
    free.  This matches how the paper's O-LOC/W-LOC columns treat
    source lines (brace-only lines do not count).
    """
    if isinstance(node, ast.TranslationUnit):
        return sum(logical_lines(decl) for decl in node.decls)
    if isinstance(node, (ast.Include, ast.MacroDef, ast.RawDirective, ast.Typedef)):
        return 1
    if isinstance(node, ast.FunctionDecl):
        return 1
    if isinstance(node, ast.FunctionDef):
        return 1 + len(node.pragmas) + logical_lines(node.body)
    if isinstance(node, ast.Block):
        return sum(logical_lines(stmt) for stmt in node.stmts)
    if isinstance(node, ast.If):
        count = 1 + logical_lines(node.then)
        if node.other is not None:
            count += 1 + logical_lines(node.other)
        return count
    if isinstance(node, ast.For):
        return 1 + logical_lines(node.body)
    if isinstance(node, (ast.While, ast.DoWhile)):
        return 1 + logical_lines(node.body)
    if isinstance(node, (ast.ExprStmt, ast.Decl, ast.DeclGroup, ast.Pragma, ast.Return, ast.Break, ast.Continue)):
        return 1
    if isinstance(node, ast.EmptyStmt):
        return 0
    return 0
