"""The SOCRATES toolflow (paper Figure 1), end to end.

``SocratesToolflow.build(app)`` takes a plain Polybench source and
produces the adaptive application:

1. **characterize** — parse the source, extract Milepost features;
2. **prune the compiler space** — COBAYN (trained on the other
   benchmarks, leave-one-out by default) predicts the 4 most promising
   custom combinations, added to -Os/-O1/-O2/-O3;
3. **weave** — the LARA Multiversioning strategy clones the kernel per
   (CF x binding), the Autotuner strategy integrates mARGOt;
4. **compile** — every version goes through the analytical GCC;
5. **profile** — mARGOt's DSE task explores CF x TN x BP full
   factorially and builds the knowledge base;
6. **assemble** — versions + knowledge + monitors become an
   :class:`~repro.core.adaptive.AdaptiveApplication`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cobayn.autotuner import CobaynAutotuner
from repro.cobayn.corpus import build_corpus
from repro.core.adaptive import AdaptiveApplication, build_version_table
from repro.dse.explorer import DesignSpace, DesignSpaceExplorer, ExplorationResult
from repro.dse.strategies import SamplingStrategy
from repro.engine.core import EvaluationEngine
from repro.engine.telemetry import StageEvent, TelemetryRecorder, stage_report
from repro.gcc.compiler import Compiler
from repro.gcc.flags import FlagConfiguration, standard_levels
from repro.lara.metrics import WeavingReport, weave_benchmark
from repro.lara.weaver import Weaver
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.machine.power import RaplMeter
from repro.machine.registry import resolve_machine
from repro.machine.topology import Machine
from repro.milepost.features import FeatureVector
from repro.obs import NULL_OBS, Observability
from repro.polybench.apps.base import BenchmarkApp
from repro.polybench.workload import WorkloadProfile


class WeaveVerificationError(ValueError):
    """The woven unit failed the post-weave structural verification."""


@dataclass
class ToolflowResult:
    """Everything the pipeline produced for one application."""

    app: BenchmarkApp
    features: FeatureVector
    custom_flags: List[FlagConfiguration]
    compiler_configs: List[FlagConfiguration]
    weaving_report: WeavingReport
    weaver: Weaver
    exploration: ExplorationResult
    adaptive: AdaptiveApplication
    stage_events: List[StageEvent] = field(default_factory=list)
    check_diagnostics: List[object] = field(default_factory=list)

    def stage_report(self) -> Dict[str, object]:
        """JSON-able per-stage telemetry of the build (wall time, cache
        hit/miss deltas, points evaluated)."""
        return stage_report(self.stage_events)

    @property
    def adaptive_source(self) -> str:
        """The weaved C source of the adaptive application."""
        from repro.cir import to_source

        return to_source(self.weaver.unit)

    def margot_header(self, states) -> str:
        """Generate the ``margot.h`` the weaved source includes.

        ``states`` are the optimization states the deployment will use
        (the header hard-codes their constraint/rank logic, as
        margot_heel does from the XML configuration).
        """
        from repro.margot.codegen import generate_margot_header

        version_index = {
            "|".join(key): version.index
            for key, version in self.adaptive._versions.items()
        }
        return generate_margot_header(
            kernel=self.app.kernels[0],
            knowledge=self.exploration.knowledge,
            states=states,
            version_index=version_index,
        )


class SocratesToolflow:
    """Configurable builder for adaptive applications."""

    def __init__(
        self,
        machine: Union[str, Machine, None] = None,
        dse_repetitions: int = 5,
        cobayn_k: int = 4,
        thread_counts: Optional[Sequence[int]] = None,
        seed: int = 0x50CA,
        pareto_prune: bool = False,
        engine: Optional[EvaluationEngine] = None,
        backend=None,
        obs: Optional[Observability] = None,
    ) -> None:
        """``pareto_prune`` reduces the runtime knowledge base to its
        Pareto front under (max throughput, min power) — mARGOt's usual
        deployment mode: dominated configurations can never be the
        answer to any monotone requirement, and a smaller OP list makes
        every ``update()`` cheaper.

        ``engine`` supplies a pre-built :class:`EvaluationEngine` whose
        compiler/executor/runtime the toolflow adopts (sharing caches
        with other consumers); ``backend`` picks the evaluation backend
        (e.g. :class:`~repro.engine.ProcessPoolBackend`) when the
        toolflow builds its own engine; ``obs`` threads an
        :class:`~repro.obs.Observability` through every layer of the
        build (with a pre-built engine, the engine's own handle is
        adopted unless ``obs`` is given explicitly)."""
        if dse_repetitions < 1:
            raise ValueError(
                f"dse_repetitions must be >= 1, got {dse_repetitions}"
            )
        if cobayn_k < 1:
            raise ValueError(f"cobayn_k must be >= 1, got {cobayn_k}")
        self._pareto_prune = pareto_prune
        if engine is not None:
            self._engine = engine
            self._machine = engine.machine
            self._omp = engine.omp
            self._compiler = engine.compiler
            self._executor = engine.executor
            self._obs = obs if obs is not None else engine.obs
        else:
            self._obs = obs if obs is not None else NULL_OBS
            self._machine = resolve_machine(machine)
            self._omp = OpenMPRuntime(self._machine)
            self._compiler = Compiler()
            self._executor = MachineExecutor(self._machine, seed=seed)
            self._engine = EvaluationEngine(
                compiler=self._compiler,
                executor=self._executor,
                omp=self._omp,
                machine=self._machine,
                backend=backend,
                obs=self._obs,
            )
        self._dse_repetitions = dse_repetitions
        self._cobayn_k = cobayn_k
        self._thread_counts = list(
            thread_counts
            if thread_counts is not None
            else range(1, self._machine.logical_cpus + 1)
        )
        self._seed = seed
        self._tuner_cache: Dict[Tuple[str, ...], CobaynAutotuner] = {}

    # -- components exposed for tests/benchmarks ------------------------------

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def compiler(self) -> Compiler:
        return self._compiler

    @property
    def executor(self) -> MachineExecutor:
        return self._executor

    @property
    def omp(self) -> OpenMPRuntime:
        return self._omp

    @property
    def engine(self) -> EvaluationEngine:
        return self._engine

    @property
    def obs(self) -> Observability:
        return self._obs

    @property
    def seed(self) -> int:
        return self._seed

    def run_identity(self) -> Dict[str, object]:
        """The toolflow's contribution to a warehouse run identity.

        Everything here is a knob that changes what the pipeline
        computes — never a timestamp or a path — so it can be hashed
        into a deterministic run id (see :mod:`repro.obs.store`).
        """
        return {
            "machine": self._machine.name,
            "seed": self._seed,
            "dse_repetitions": self._dse_repetitions,
            "cobayn_k": self._cobayn_k,
            "thread_counts": list(self._thread_counts),
            "pareto_prune": self._pareto_prune,
        }

    # -- pipeline ----------------------------------------------------------------

    def build(
        self,
        app: BenchmarkApp,
        training_apps: Optional[Sequence[BenchmarkApp]] = None,
        dse_strategy: Optional[SamplingStrategy] = None,
    ) -> ToolflowResult:
        """Run the whole Figure 1 pipeline for ``app``.

        ``training_apps`` defaults to the other eleven Polybench
        applications (leave-one-out), so COBAYN never trains on the
        kernel it predicts for.
        """
        recorder = TelemetryRecorder(
            self._engine, tracer=self._obs.tracer, metrics=self._obs.metrics
        )
        with self._obs.tracer.span(f"build:{app.name}", app=app.name):
            with recorder.stage("characterize"):
                features = self._characterize(app)
            with recorder.stage("prune"):
                custom = self._prune_compiler_space(app, features, training_apps)
            configs = standard_levels() + custom
            with recorder.stage("weave"):
                report, weaver = weave_benchmark(app, configs)
                check_diagnostics = self._verify_weave(app, weaver)
            with recorder.stage("profile"):
                exploration = self._profile(app, configs, dse_strategy)
            with recorder.stage("assemble"):
                adaptive = self._assemble(app, configs, exploration)
        return ToolflowResult(
            app=app,
            features=features,
            custom_flags=custom,
            compiler_configs=configs,
            weaving_report=report,
            weaver=weaver,
            exploration=exploration,
            adaptive=adaptive,
            stage_events=recorder.events,
            check_diagnostics=check_diagnostics,
        )

    # -- stages ------------------------------------------------------------------

    def _cluster_pins(self) -> Tuple[Optional[str], ...]:
        """Values of the cluster knob on this platform.

        Homogeneous machines get the degenerate ``(None,)`` — no pin,
        the paper's three-knob space; heterogeneous machines expose one
        pin per cluster type (the fourth knob).
        """
        if self._machine.is_homogeneous:
            return (None,)
        return tuple(self._machine.cluster_names())

    def _verify_weave(self, app: BenchmarkApp, weaver: Weaver):
        """Post-weave gate: hard error on structural violations.

        Runs the full static check (race lint + weave verifier) over
        the woven unit.  Error-severity diagnostics raise
        :class:`WeaveVerificationError`; warnings are surfaced through
        the observability layer as
        ``socrates_check_diagnostics_total{rule=...}`` counters and
        audit check traces.
        """
        from repro.analysis import Severity, check_unit

        diagnostics = check_unit(
            weaver.unit,
            filename=f"{app.name}.weaved.c",
            phase="woven",
            plan=weaver.plan,
        )
        for diag in diagnostics:
            self._obs.metrics.counter(
                "socrates_check_diagnostics_total",
                "Static-analysis diagnostics emitted by the post-weave gate",
                labels={"rule": diag.rule},
            ).inc()
            if self._obs.audit is not None:
                from repro.obs import CheckTrace

                self._obs.audit.record_check(
                    CheckTrace(
                        app=app.name,
                        rule=diag.rule,
                        severity=diag.severity.value,
                        message=diag.message,
                        location=diag.location,
                    )
                )
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        if errors:
            details = "; ".join(
                f"[{d.rule}] {d.message} at {d.location}" for d in errors[:5]
            )
            raise WeaveVerificationError(
                f"weave verification failed for {app.name!r} with "
                f"{len(errors)} structural violation(s): {details}"
            )
        return diagnostics

    def _characterize(self, app: BenchmarkApp) -> FeatureVector:
        return self._engine.features(app)

    def _prune_compiler_space(
        self,
        app: BenchmarkApp,
        features: FeatureVector,
        training_apps: Optional[Sequence[BenchmarkApp]],
    ) -> List[FlagConfiguration]:
        tuner = self._trained_tuner(app, training_apps)
        return tuner.predict_top(features, self._cobayn_k)

    def _trained_tuner(
        self,
        app: BenchmarkApp,
        training_apps: Optional[Sequence[BenchmarkApp]],
    ) -> CobaynAutotuner:
        if training_apps is None:
            from repro.polybench.suite import all_apps

            training_apps = [
                candidate for candidate in all_apps() if candidate.name != app.name
            ]
        key = tuple(sorted(candidate.name for candidate in training_apps))
        if key not in self._tuner_cache:
            with self._obs.tracer.span(
                "cobayn.corpus", training_apps=len(training_apps)
            ):
                corpus = build_corpus(
                    training_apps,
                    self._compiler,
                    self._executor,
                    self._omp,
                    engine=self._engine,
                )
            tuner = CobaynAutotuner()
            with self._obs.tracer.span(
                "cobayn.train", examples=len(corpus.examples)
            ):
                tuner.train(corpus)
            self._tuner_cache[key] = tuner
        return self._tuner_cache[key]

    def _profile(
        self,
        app: BenchmarkApp,
        configs: Sequence[FlagConfiguration],
        dse_strategy: Optional[SamplingStrategy],
    ) -> ExplorationResult:
        profile = self._engine.profile(app)
        pins = self._cluster_pins()
        capacities = (
            {name: self._machine.cluster_logical_cpus(name) for name in pins}
            if pins != (None,)
            else None
        )
        space = DesignSpace(
            compiler_configs=list(configs),
            thread_counts=self._thread_counts,
            clusters=pins,
            cluster_capacities=capacities,
        )
        explorer = DesignSpaceExplorer(
            self._compiler,
            self._executor,
            self._omp,
            repetitions=self._dse_repetitions,
            engine=self._engine,
        )
        return explorer.explore(profile, space, strategy=dse_strategy, seed=self._seed)

    def _assemble(
        self,
        app: BenchmarkApp,
        configs: Sequence[FlagConfiguration],
        exploration: ExplorationResult,
    ) -> AdaptiveApplication:
        profile = self._engine.profile(app)
        versions = build_version_table(
            self._engine, profile, configs, clusters=self._cluster_pins()
        )
        meter = RaplMeter(self._executor.power_model, seed=self._seed ^ 0xFF)
        knowledge = exploration.knowledge
        if self._pareto_prune:
            from repro.dse.pareto import pareto_front

            knowledge = pareto_front(
                knowledge, [("throughput", True), ("power", False)]
            )
        return AdaptiveApplication(
            name=app.name,
            versions=versions,
            knowledge=knowledge,
            executor=self._executor,
            omp=self._omp,
            meter=meter,
            obs=self._obs,
        )
