"""The adaptive application: the runtime half of SOCRATES.

This object plays the role of the weaved, compiled adaptive binary.
Each ``run_once`` performs exactly the sequence the Autotuner strategy
weaves around the kernel wrapper:

1. ``margot_update`` — the AS-RTM picks an operating point; its knob
   values set the version control variable and the thread count;
2. the wrapper dispatches to the matching compiled version;
3. the kernel "executes" on the simulated machine, advancing the
   virtual clock;
4. monitors observe (noisy) time/throughput/power, feeding the MAPE-K
   loop for the next invocation;
5. ``margot_log`` appends a trace record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.gcc.compiler import CompiledKernel
from repro.machine.executor import ExecutionResult, MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime, ThreadPlacement
from repro.machine.power import RaplMeter, invocation_energy
from repro.margot.knowledge import KnowledgeBase, OperatingPoint
from repro.margot.manager import MargotManager
from repro.margot.state import OptimizationState
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class KernelVersion:
    """One compiled clone of the kernel (a wrapper dispatch target).

    ``cluster`` is the cluster pin baked into the version's placement
    (``None`` = whole machine, the three-knob dispatch table).
    """

    index: int
    compiled: CompiledKernel
    binding: BindingPolicy
    cluster: Optional[str] = None

    @property
    def compiler_label(self) -> str:
        return self.compiled.config.label


def version_key(
    compiler: str, binding: str, cluster: Optional[str] = None
) -> Tuple[str, ...]:
    """Dispatch-table key of one version.

    Unpinned versions keep the historical ``(compiler, binding)`` pair;
    cluster-pinned versions append the cluster name.
    """
    if cluster is None:
        return (compiler, binding)
    return (compiler, binding, cluster)


def build_version_table(
    engine,
    profile,
    configs,
    bindings: Tuple[BindingPolicy, ...] = (BindingPolicy.CLOSE, BindingPolicy.SPREAD),
    clusters: Tuple[Optional[str], ...] = (None,),
) -> Dict[Tuple[str, ...], KernelVersion]:
    """The weaved wrapper's dispatch table, built through the engine.

    One :class:`KernelVersion` per (configuration, binding, cluster);
    compilation goes through the
    :class:`~repro.engine.EvaluationEngine`'s compile cache, so
    assembling after a DSE over the same configurations costs zero
    additional compilations.  The default ``clusters=(None,)`` keeps
    the historical (configuration, binding) table.
    """
    versions: Dict[Tuple[str, ...], KernelVersion] = {}
    index = 0
    for config in configs:
        for binding in bindings:
            for cluster in clusters:
                versions[version_key(config.label, binding.value, cluster)] = (
                    KernelVersion(
                        index=index,
                        compiled=engine.compile(profile, config),
                        binding=binding,
                        cluster=cluster,
                    )
                )
                index += 1
    return versions


@dataclass(frozen=True)
class InvocationRecord:
    """One row of the runtime trace (Figure 5's signals).

    ``cluster`` is empty when the invocation ran unpinned (the
    historical trace shape).
    """

    timestamp: float
    state: str
    compiler: str
    threads: int
    binding: str
    time_s: float
    power_w: float
    energy_j: float
    cluster: str = ""

    @property
    def throughput(self) -> float:
        return 1.0 / self.time_s


class AdaptiveApplication:
    """The simulated adaptive binary for one kernel."""

    def __init__(
        self,
        name: str,
        versions: Mapping[Tuple[str, str], KernelVersion],
        knowledge: KnowledgeBase,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        meter: Optional[RaplMeter] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        """``versions`` maps (compiler label, binding value) to the
        compiled clone, mirroring the weaved wrapper's dispatch table.

        ``obs`` (when enabled) traces each MAPE-K iteration as a span
        tree and feeds the adaptation audit log through the AS-RTM."""
        self.name = name
        self._versions = dict(versions)
        self._obs = obs if obs is not None else NULL_OBS
        self._manager = MargotManager(
            kernel_name=name, knowledge=knowledge, obs=self._obs
        )
        self._executor = executor
        self._omp = omp
        self._meter = meter
        self._now = 0.0
        self._trace: List[InvocationRecord] = []

    # -- mARGOt wiring ----------------------------------------------------------

    @property
    def obs(self) -> Observability:
        return self._obs

    @property
    def manager(self) -> MargotManager:
        return self._manager

    def add_state(self, state: OptimizationState, activate: bool = False) -> None:
        self._manager.asrtm.add_state(state, activate=activate)

    def switch_state(self, name: str) -> None:
        self._manager.asrtm.switch_state(name)

    @property
    def active_state_name(self) -> str:
        return self._manager.asrtm.active_state.name

    # -- execution -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated wall-clock time (seconds)."""
        return self._now

    @property
    def trace(self) -> List[InvocationRecord]:
        return list(self._trace)

    def run_once(self) -> InvocationRecord:
        """One kernel invocation through the weaved adaptive path."""
        tracer = self._obs.tracer
        with tracer.span("mapek.iteration", app=self.name, t=self._now):
            with tracer.span("margot.update"):
                point = self._manager.update(now=self._now)
            version, threads = self._dispatch(point)
            placement = self._omp.place(
                threads, version.binding, cluster=version.cluster
            )

            self._manager.start_monitor(self._now)
            with tracer.span(
                "kernel.execute",
                compiler=version.compiler_label,
                threads=threads,
                binding=version.binding.value,
            ):
                result = self._executor.run(version.compiled, placement)
            self._now += result.time_s
            measured_power = (
                self._meter.measure(result.power_w) if self._meter else result.power_w
            )
            with tracer.span("monitor.observe"):
                self._manager.stop_monitor(self._now, power_w=measured_power)
                self._manager.log(self._now)

        # energy goes through the same helper as the executor's ground
        # truth: with no meter attached, measured_power IS the
        # executor's power and the record's energy equals
        # result.energy_j bit for bit
        record = InvocationRecord(
            timestamp=self._now,
            state=self.active_state_name,
            compiler=version.compiler_label,
            threads=threads,
            binding=version.binding.value,
            time_s=result.time_s,
            power_w=measured_power,
            energy_j=invocation_energy(result.time_s, measured_power),
            cluster=version.cluster or "",
        )
        self._trace.append(record)
        # Streaming alerting hook: one attribute lookup when disabled,
        # so seeded runs stay byte-identical with alerting on or off
        # (the engine never touches any random stream).
        alerts = self._obs.alerts
        if alerts is not None:
            alerts.observe_invocation(self.name, record, self)
        return record

    def run_for(self, duration_s: float, max_invocations: int = 1_000_000) -> List[InvocationRecord]:
        """Run invocations until ``duration_s`` of virtual time elapses."""
        deadline = self._now + duration_s
        records: List[InvocationRecord] = []
        while self._now < deadline and len(records) < max_invocations:
            records.append(self.run_once())
        return records

    # -- introspection (the energy observatory's view) -----------------------------

    @property
    def executor(self) -> MachineExecutor:
        return self._executor

    @property
    def versions(self) -> Dict[Tuple[str, ...], KernelVersion]:
        """The dispatch table, keyed by :func:`version_key`."""
        return dict(self._versions)

    def resolve(
        self, compiler: str, binding: str, threads: int, cluster: Optional[str] = None
    ) -> Tuple[KernelVersion, ThreadPlacement]:
        """The compiled version and thread placement an
        :class:`InvocationRecord`'s knobs dispatch to.

        Lets a post-hoc consumer (the energy observatory) re-derive the
        exact (kernel, placement) a trace row executed, without
        re-running anything or touching a random stream.
        """
        version = self._lookup(compiler, binding, cluster)
        return version, self._omp.place(
            threads, version.binding, cluster=version.cluster
        )

    # -- internals ----------------------------------------------------------------

    def _lookup(
        self, compiler: str, binding: str, cluster: Optional[str] = None
    ) -> KernelVersion:
        try:
            return self._versions[version_key(compiler, binding, cluster)]
        except KeyError:
            raise KeyError(
                f"no compiled version for ({compiler!r}, {binding!r}, "
                f"{cluster!r}); available: {sorted(self._versions)}"
            ) from None

    def _dispatch(self, point: OperatingPoint) -> Tuple[KernelVersion, int]:
        compiler_label = str(point.knob("compiler"))
        binding = str(point.knob("binding"))
        threads = int(point.knob("threads"))  # type: ignore[call-overload]
        cluster = point.knobs.get("cluster")
        pin = str(cluster) if cluster is not None else None
        return self._lookup(compiler_label, binding, pin), threads
