"""SOCRATES: the end-to-end toolflow and the adaptive application.

:mod:`repro.core.toolflow` chains the paper's Figure 1 pipeline —
Milepost feature extraction, COBAYN flag prediction, LARA weaving
(Multiversioning + Autotuner), compilation of every version, and the
mARGOt profiling DSE — into a single call that turns a plain Polybench
source into an :class:`~repro.core.adaptive.AdaptiveApplication`: the
simulated equivalent of the paper's final adaptive binary.

:mod:`repro.core.scenario` scripts runtime requirement changes over
simulated time (Figure 5's policy switches).
"""

from repro.core.adaptive import AdaptiveApplication, InvocationRecord, KernelVersion
from repro.core.scenario import Phase, Scenario
from repro.core.toolflow import SocratesToolflow, ToolflowResult

__all__ = [
    "AdaptiveApplication",
    "InvocationRecord",
    "KernelVersion",
    "Phase",
    "Scenario",
    "SocratesToolflow",
    "ToolflowResult",
]
