"""Trace export and analysis utilities.

The adaptive application's :class:`~repro.core.adaptive.InvocationRecord`
trace is the raw material of the paper's Figure 5.  This module
serializes traces to CSV (for external plotting), loads them back, and
summarizes them per scenario phase.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.adaptive import InvocationRecord
from repro.core.scenario import Scenario

_FIELDS = (
    "timestamp",
    "state",
    "compiler",
    "threads",
    "binding",
    "time_s",
    "power_w",
    "energy_j",
)

#: Appended after :data:`_FIELDS` only when a trace used the cluster
#: knob, so homogeneous-machine trace files stay byte-identical.
_CLUSTER_FIELD = "cluster"


def trace_to_csv(records: Sequence[InvocationRecord], path: Union[str, Path]) -> None:
    """Write a trace as CSV with one row per kernel invocation.

    Float columns use ``repr`` (shortest round-trip form), so loading
    the file back reproduces every ``time_s`` / ``power_w`` /
    ``energy_j`` bit for bit — the energy ledger's conservation checks
    depend on trace files carrying full precision.  A ``cluster``
    column appears only when at least one invocation was pinned.
    """
    clustered = any(record.cluster for record in records)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = _FIELDS + (_CLUSTER_FIELD,) if clustered else _FIELDS
        writer.writerow(header)
        for record in records:
            row = [
                repr(float(record.timestamp)),
                record.state,
                record.compiler,
                record.threads,
                record.binding,
                repr(float(record.time_s)),
                repr(float(record.power_w)),
                repr(float(record.energy_j)),
            ]
            if clustered:
                row.append(record.cluster)
            writer.writerow(row)


#: Numeric trace columns and the casts they require.
_NUMERIC_FIELDS = {
    "timestamp": float,
    "threads": int,
    "time_s": float,
    "power_w": float,
    "energy_j": float,
}


def _parse_row(row: Dict[str, object], row_number: int) -> InvocationRecord:
    values: Dict[str, object] = {}
    for column in _FIELDS:
        raw = row.get(column)
        if raw is None:
            raise ValueError(
                f"trace row {row_number} is truncated: column {column!r} is missing"
            )
        cast = _NUMERIC_FIELDS.get(column)
        if cast is None:
            values[column] = raw
            continue
        try:
            values[column] = cast(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"trace row {row_number}, column {column!r}: "
                f"cannot parse {raw!r} as {cast.__name__}"
            ) from None
    cluster = row.get(_CLUSTER_FIELD)
    if cluster is not None:
        values[_CLUSTER_FIELD] = cluster
    return InvocationRecord(**values)  # type: ignore[arg-type]


def trace_from_csv(path: Union[str, Path]) -> List[InvocationRecord]:
    """Load a trace written by :func:`trace_to_csv`.

    Malformed input raises :class:`ValueError` naming the offending
    row and column (1-based data rows, the header is row 0) instead of
    surfacing a bare cast traceback.
    """
    records: List[InvocationRecord] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"trace file lacks columns: {sorted(missing)}")
        for row_number, row in enumerate(reader, start=1):
            records.append(_parse_row(row, row_number))
    return records


#: Alias matching the exporter's ``trace_to_csv`` naming.
load_trace = trace_from_csv


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate statistics of one scenario phase."""

    state: str
    start_s: float
    end_s: float
    invocations: int
    mean_power_w: float
    mean_time_s: float
    total_energy_j: float
    dominant_threads: int
    dominant_compiler: str
    dominant_binding: str
    dominant_cluster: str = ""

    @property
    def mean_throughput(self) -> float:
        return 1.0 / self.mean_time_s if self.mean_time_s else 0.0


def summarize_phases(
    records: Sequence[InvocationRecord], scenario: Scenario
) -> List[PhaseSummary]:
    """Per-phase aggregates of a trace produced by ``scenario.run``."""
    boundaries = [phase.start_s for phase in scenario.phases] + [scenario.duration_s]
    summaries: List[PhaseSummary] = []
    for index, phase in enumerate(scenario.phases):
        lo, hi = boundaries[index], boundaries[index + 1]
        members = [r for r in records if lo <= r.timestamp < hi]
        if not members:
            continue
        threads_votes: Dict[int, int] = {}
        compiler_votes: Dict[str, int] = {}
        binding_votes: Dict[str, int] = {}
        cluster_votes: Dict[str, int] = {}
        for record in members:
            threads_votes[record.threads] = threads_votes.get(record.threads, 0) + 1
            compiler_votes[record.compiler] = compiler_votes.get(record.compiler, 0) + 1
            binding_votes[record.binding] = binding_votes.get(record.binding, 0) + 1
            cluster_votes[record.cluster] = cluster_votes.get(record.cluster, 0) + 1
        summaries.append(
            PhaseSummary(
                state=phase.state,
                start_s=lo,
                end_s=hi,
                invocations=len(members),
                mean_power_w=float(np.mean([r.power_w for r in members])),
                mean_time_s=float(np.mean([r.time_s for r in members])),
                total_energy_j=float(np.sum([r.energy_j for r in members])),
                dominant_threads=max(threads_votes, key=threads_votes.get),
                dominant_compiler=max(compiler_votes, key=compiler_votes.get),
                dominant_binding=max(binding_votes, key=binding_votes.get),
                dominant_cluster=max(cluster_votes, key=cluster_votes.get),
            )
        )
    return summaries
