"""Scenarios: scripted requirement changes over simulated time.

Figure 5 of the paper drives 2mm for 300 seconds while the
requirement flips between an energy-efficient policy (maximize
Thr/W^2) and a performance policy (maximize throughput) every 100
seconds.  A :class:`Scenario` expresses such schedules and replays
them against an :class:`~repro.core.adaptive.AdaptiveApplication`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.adaptive import AdaptiveApplication, InvocationRecord


@dataclass(frozen=True)
class Phase:
    """One interval of a scenario: from ``start_s`` use state ``state``."""

    start_s: float
    state: str


@dataclass
class Scenario:
    """An ordered schedule of optimization-state switches.

    Phases must start at strictly increasing times; the first phase
    should start at 0.
    """

    phases: Sequence[Phase]
    duration_s: float

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        starts = [phase.start_s for phase in self.phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phase start times must be strictly increasing")
        if starts[0] != 0.0:
            raise ValueError("the first phase must start at t=0")
        if self.duration_s <= starts[-1]:
            raise ValueError("duration must extend past the last phase start")

    def state_at(self, time_s: float) -> str:
        """The state name that should be active at ``time_s``."""
        active = self.phases[0].state
        for phase in self.phases:
            if time_s >= phase.start_s:
                active = phase.state
            else:
                break
        return active

    def run(self, app: AdaptiveApplication) -> List[InvocationRecord]:
        """Drive ``app`` through the schedule; returns the full trace.

        The state switch happens between invocations, exactly like a
        requirement update arriving at the weaved update() call.
        """
        records: List[InvocationRecord] = []
        start = app.now
        with app.obs.tracer.span(
            "scenario.run",
            app=app.name,
            phases=len(self.phases),
            duration_s=self.duration_s,
        ):
            while app.now - start < self.duration_s:
                wanted = self.state_at(app.now - start)
                if app.active_state_name != wanted:
                    app.switch_state(wanted)
                records.append(app.run_once())
        return records
