"""A discrete Bayesian network with CPT estimation, BIC structure
learning and exact inference.

Small and dependency-free: COBAYN's networks have ~15 nodes with 2-4
states each, so exact methods (enumeration over the joint of the
un-observed query variables) are fast and simple.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

Assignment = Mapping[str, int]


@dataclass
class NodeSpec:
    """One variable: its name and the number of discrete states."""

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 2:
            raise ValueError(f"node {self.name!r} needs >= 2 states")


class BayesError(ValueError):
    """Raised on structural misuse (cycles, unknown nodes, ...)."""


class DiscreteBayesianNetwork:
    """Directed graphical model over discrete variables.

    Build with node specs and edges, then :meth:`fit` CPTs from data
    (rows are ``{node: state_index}`` mappings).  Laplace smoothing
    keeps every conditional strictly positive so unseen flag
    combinations keep a nonzero posterior.
    """

    def __init__(self, nodes: Iterable[NodeSpec]) -> None:
        self._nodes: Dict[str, NodeSpec] = {}
        for spec in nodes:
            if spec.name in self._nodes:
                raise BayesError(f"duplicate node {spec.name!r}")
            self._nodes[spec.name] = spec
        self._parents: Dict[str, List[str]] = {name: [] for name in self._nodes}
        # CPTs: node -> array of shape (prod(parent cards), cardinality)
        self._cpts: Dict[str, np.ndarray] = {}

    # -- structure ------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    def cardinality(self, node: str) -> int:
        return self._nodes[node].cardinality

    def parents(self, node: str) -> List[str]:
        return list(self._parents[node])

    def edges(self) -> List[Tuple[str, str]]:
        return [
            (parent, child)
            for child, parents in self._parents.items()
            for parent in parents
        ]

    def add_edge(self, parent: str, child: str) -> None:
        if parent not in self._nodes or child not in self._nodes:
            raise BayesError(f"unknown node in edge {parent!r} -> {child!r}")
        if parent == child:
            raise BayesError("self loops are not allowed")
        if parent in self._parents[child]:
            return
        self._parents[child].append(parent)
        if self._has_cycle():
            self._parents[child].remove(parent)
            raise BayesError(f"edge {parent!r} -> {child!r} creates a cycle")
        self._cpts.clear()  # structure changed: parameters invalid

    def remove_edge(self, parent: str, child: str) -> None:
        if parent in self._parents.get(child, []):
            self._parents[child].remove(parent)
            self._cpts.clear()

    def _has_cycle(self) -> bool:
        visited: Dict[str, int] = {}  # 0=unseen 1=in-stack 2=done

        def visit(node: str) -> bool:
            state = visited.get(node, 0)
            if state == 1:
                return True
            if state == 2:
                return False
            visited[node] = 1
            for parent in self._parents[node]:
                if visit(parent):
                    return True
            visited[node] = 2
            return False

        return any(visit(node) for node in self._nodes)

    def topological_order(self) -> List[str]:
        order: List[str] = []
        seen: Set[str] = set()

        def visit(node: str) -> None:
            if node in seen:
                return
            seen.add(node)
            for parent in self._parents[node]:
                visit(parent)
            order.append(node)

        for node in self._nodes:
            visit(node)
        return order

    # -- parameters -------------------------------------------------------------

    def fit(self, rows: Sequence[Assignment], alpha: float = 1.0) -> None:
        """Estimate every CPT from complete data with Laplace ``alpha``."""
        for node in self._nodes:
            self._cpts[node] = self._fit_node(node, rows, alpha)

    def _fit_node(
        self, node: str, rows: Sequence[Assignment], alpha: float
    ) -> np.ndarray:
        parents = self._parents[node]
        parent_cards = [self._nodes[p].cardinality for p in parents]
        rows_count = int(np.prod(parent_cards)) if parents else 1
        card = self._nodes[node].cardinality
        counts = np.full((rows_count, card), alpha, dtype=float)
        for row in rows:
            index = self._parent_index(parents, parent_cards, row)
            counts[index, row[node]] += 1.0
        return counts / counts.sum(axis=1, keepdims=True)

    @staticmethod
    def _parent_index(
        parents: List[str], parent_cards: List[int], row: Assignment
    ) -> int:
        index = 0
        for parent, card in zip(parents, parent_cards):
            index = index * card + row[parent]
        return index

    def cpt(self, node: str) -> np.ndarray:
        if node not in self._cpts:
            raise BayesError(f"network not fitted (missing CPT for {node!r})")
        return self._cpts[node]

    # -- inference --------------------------------------------------------------

    def log_probability(self, row: Assignment) -> float:
        """Joint log-probability of one complete assignment."""
        total = 0.0
        for node in self._nodes:
            parents = self._parents[node]
            parent_cards = [self._nodes[p].cardinality for p in parents]
            index = self._parent_index(parents, parent_cards, row)
            total += math.log(self.cpt(node)[index, row[node]])
        return total

    def probability(self, row: Assignment) -> float:
        return math.exp(self.log_probability(row))

    def posterior(
        self, query: Mapping[str, int], evidence: Optional[Assignment] = None
    ) -> float:
        """P(query | evidence) by enumeration over hidden variables."""
        evidence = dict(evidence or {})
        overlap = set(query) & set(evidence)
        for node in overlap:
            if query[node] != evidence[node]:
                return 0.0
        numerator = self._marginal({**evidence, **query})
        denominator = self._marginal(evidence)
        if denominator == 0.0:
            return 0.0
        return numerator / denominator

    def _marginal(self, partial: Assignment) -> float:
        hidden = [name for name in self._nodes if name not in partial]
        cards = [self._nodes[name].cardinality for name in hidden]
        total = 0.0
        for states in itertools.product(*(range(card) for card in cards)):
            row = dict(partial)
            row.update(zip(hidden, states))
            total += self.probability(row)
        return total

    def sample(self, rng: np.random.Generator, count: int = 1) -> List[Dict[str, int]]:
        """Ancestral sampling of complete assignments."""
        order = self.topological_order()
        samples: List[Dict[str, int]] = []
        for _ in range(count):
            row: Dict[str, int] = {}
            for node in order:
                parents = self._parents[node]
                parent_cards = [self._nodes[p].cardinality for p in parents]
                index = self._parent_index(parents, parent_cards, row)
                probs = self.cpt(node)[index]
                row[node] = int(rng.choice(len(probs), p=probs))
            samples.append(row)
        return samples

    # -- scoring -----------------------------------------------------------------

    def bic_score(self, rows: Sequence[Assignment], alpha: float = 1.0) -> float:
        """Bayesian Information Criterion of this structure on ``rows``."""
        self.fit(rows, alpha=alpha)
        log_likelihood = sum(self.log_probability(row) for row in rows)
        parameters = 0
        for node in self._nodes:
            parents = self._parents[node]
            combos = int(
                np.prod([self._nodes[p].cardinality for p in parents])
            ) if parents else 1
            parameters += combos * (self._nodes[node].cardinality - 1)
        penalty = 0.5 * parameters * math.log(max(2, len(rows)))
        return log_likelihood - penalty


def learn_structure(
    nodes: Sequence[NodeSpec],
    rows: Sequence[Assignment],
    max_parents: int = 2,
    max_iterations: int = 25,
    forbidden_children: Optional[Set[str]] = None,
    seed: int = 7,
) -> DiscreteBayesianNetwork:
    """Greedy hill-climbing structure search under the BIC score.

    ``forbidden_children`` lists nodes that may not *receive* edges —
    COBAYN's feature nodes are observed evidence, so arcs only point
    from features to flags (and among flags).
    """
    forbidden_children = forbidden_children or set()
    network = DiscreteBayesianNetwork(nodes)
    best_score = network.bic_score(rows)
    names = [spec.name for spec in nodes]
    rng = np.random.default_rng(seed)

    for _ in range(max_iterations):
        improved = False
        candidates = [
            (parent, child)
            for parent in names
            for child in names
            if parent != child and child not in forbidden_children
        ]
        rng.shuffle(candidates)
        for parent, child in candidates:
            if parent in network.parents(child):
                network.remove_edge(parent, child)
                score = network.bic_score(rows)
                if score > best_score + 1e-9:
                    best_score = score
                    improved = True
                else:
                    network.add_edge(parent, child)
                    network.fit(rows)
                continue
            if len(network.parents(child)) >= max_parents:
                continue
            try:
                network.add_edge(parent, child)
            except BayesError:
                continue
            score = network.bic_score(rows)
            if score > best_score + 1e-9:
                best_score = score
                improved = True
            else:
                network.remove_edge(parent, child)
                network.fit(rows)
        if not improved:
            break
    network.fit(rows)
    return network
