"""Leave-one-out evaluation of COBAYN's prediction quality.

The COBAYN paper evaluates by leave-one-out cross-validation: train on
all applications but one, predict flag combinations for the held-out
one, and measure where the predictions land in the *true* ranking of
all 128 combinations (obtained by exhaustively evaluating the space).
This module provides that protocol as a library API, used by the
pruning ablation and by quality-tracking tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cobayn.autotuner import CobaynAutotuner
from repro.cobayn.corpus import build_corpus, reference_points
from repro.engine.core import EvaluationEngine
from repro.gcc.compiler import Compiler
from repro.gcc.flags import FlagConfiguration, OptLevel, cobayn_space
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.polybench.apps.base import BenchmarkApp


@dataclass(frozen=True)
class LoocvEntry:
    """Prediction quality for one held-out application."""

    app: str
    predicted_ranks: List[int]  # true rank of each predicted combo (0 = best)
    speedup_vs_o3: float  # best predicted combo vs plain -O3

    @property
    def best_rank(self) -> int:
        return min(self.predicted_ranks)

    @property
    def mean_rank(self) -> float:
        return sum(self.predicted_ranks) / len(self.predicted_ranks)


@dataclass(frozen=True)
class LoocvReport:
    """The full leave-one-out sweep."""

    entries: List[LoocvEntry]
    k: int
    space_size: int

    @property
    def mean_best_rank(self) -> float:
        return sum(entry.best_rank for entry in self.entries) / len(self.entries)

    @property
    def worst_best_rank(self) -> int:
        return max(entry.best_rank for entry in self.entries)

    @property
    def mean_rank(self) -> float:
        return sum(entry.mean_rank for entry in self.entries) / len(self.entries)

    def random_baseline_mean_rank(self) -> float:
        """Expected mean rank of a uniform random k-subset."""
        return (self.space_size - 1) / 2.0

    def to_table(self) -> str:
        lines = [
            f"{'app':14s} {'pred ranks (of ' + str(self.space_size) + ')':28s} "
            f"{'best':>5s} {'speedup vs -O3':>15s}"
        ]
        for entry in self.entries:
            ranks = ",".join(f"{rank:3d}" for rank in sorted(entry.predicted_ranks))
            lines.append(
                f"{entry.app:14s} {ranks:28s} {entry.best_rank:5d} "
                f"{entry.speedup_vs_o3:15.2f}"
            )
        lines.append(
            f"{'mean':14s} {'':28s} {self.mean_best_rank:5.1f} "
            f"(random k-subset mean rank: {self.random_baseline_mean_rank():.0f})"
        )
        return "\n".join(lines)


def loocv_report(
    apps: Sequence[BenchmarkApp],
    compiler: Compiler,
    executor: MachineExecutor,
    omp: OpenMPRuntime,
    k: int = 4,
    tuner_factory=CobaynAutotuner,
    engine: Optional[EvaluationEngine] = None,
) -> LoocvReport:
    """Run the leave-one-out protocol over ``apps``."""
    if len(apps) < 3:
        raise ValueError("leave-one-out needs at least three applications")
    engine = engine or EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
    space = cobayn_space()
    entries: List[LoocvEntry] = []
    for target in apps:
        training = [app for app in apps if app.name != target.name]
        corpus = build_corpus(training, compiler, executor, omp, engine=engine)
        tuner = tuner_factory()
        tuner.train(corpus)
        features = engine.features(target)
        predicted = tuner.predict_top(features, k)

        profile = engine.profile(target)
        samples = engine.evaluate(
            profile, reference_points(space), repetitions=1, noisy=False
        )
        timings = {
            config: sample.times[0] for config, sample in zip(space, samples)
        }
        truth = sorted(space, key=lambda config: timings[config])
        rank_of = {config: rank for rank, config in enumerate(truth)}
        o3_time = timings[FlagConfiguration(OptLevel.O3)]
        best_predicted_time = min(timings[config] for config in predicted)
        entries.append(
            LoocvEntry(
                app=target.name,
                predicted_ranks=[rank_of[config] for config in predicted],
                speedup_vs_o3=o3_time / best_predicted_time,
            )
        )
    return LoocvReport(entries=entries, k=k, space_size=len(space))
