"""COBAYN: compiler autotuning with Bayesian networks (Ashouri et al.).

SOCRATES uses COBAYN to prune the 128-combination compiler space down
to the four most promising custom flag combinations per kernel.  The
pipeline reproduced here:

1. an **iterative-compilation corpus** (:mod:`repro.cobayn.corpus`):
   every training kernel is compiled under all 128 combinations and
   evaluated; the best combinations per kernel become the positive
   examples;
2. **application characterization**: Milepost features, discretized
   (:mod:`repro.cobayn.discretize`);
3. a **discrete Bayesian network** (:mod:`repro.cobayn.bn`) learned
   over (feature bins, flag settings) from the positive examples;
4. **prediction** (:mod:`repro.cobayn.autotuner`): given a new
   kernel's features as evidence, rank all 128 combinations by
   posterior probability and return the top k (k=4 in the paper).
"""

from repro.cobayn.autotuner import CobaynAutotuner, CobaynPrediction
from repro.cobayn.bn import DiscreteBayesianNetwork, learn_structure
from repro.cobayn.corpus import TrainingCorpus, build_corpus
from repro.cobayn.discretize import Discretizer

__all__ = [
    "CobaynAutotuner",
    "CobaynPrediction",
    "Discretizer",
    "DiscreteBayesianNetwork",
    "TrainingCorpus",
    "build_corpus",
    "learn_structure",
]
