"""Iterative-compilation training corpus for COBAYN.

For each training kernel, every one of the 128 flag combinations is
evaluated (compile + run on the simulated machine at a fixed reference
operating point) and the fastest fraction become *positive examples*:
the configurations whose distribution the Bayesian network learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.gcc.compiler import Compiler
from repro.gcc.flags import ALL_FLAGS, Flag, FlagConfiguration, OptLevel, cobayn_space
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.milepost.features import FeatureVector, extract_features
from repro.polybench.apps.base import BenchmarkApp
from repro.polybench.workload import profile_kernel

#: Reference operating point for iterative compilation (all physical
#: cores of one socket pair, close binding) — flag effects are ranked
#: at a fixed parallel setting, as COBAYN does on the real machine.
REFERENCE_THREADS = 16
REFERENCE_BINDING = BindingPolicy.CLOSE


def flag_assignment(config: FlagConfiguration) -> Dict[str, int]:
    """Encode a flag configuration as BN variables.

    ``level`` is 0 for -O2 and 1 for -O3 (the COBAYN space bases);
    each transformation flag is its own binary variable.
    """
    row: Dict[str, int] = {"level": 1 if config.level is OptLevel.O3 else 0}
    for flag in ALL_FLAGS:
        row[flag.value] = 1 if config.has(flag) else 0
    return row


def assignment_to_config(row: Mapping[str, int]) -> FlagConfiguration:
    """Inverse of :func:`flag_assignment`."""
    level = OptLevel.O3 if row["level"] else OptLevel.O2
    flags = frozenset(flag for flag in ALL_FLAGS if row.get(flag.value))
    return FlagConfiguration(level=level, flags=flags)


@dataclass
class KernelExamples:
    """Per-kernel iterative-compilation outcome."""

    kernel: str
    features: FeatureVector
    timings: List[Tuple[FlagConfiguration, float]]
    good_configs: List[FlagConfiguration]


@dataclass
class TrainingCorpus:
    """Positive examples plus the feature vectors they came from."""

    examples: List[KernelExamples] = field(default_factory=list)

    @property
    def kernels(self) -> List[str]:
        return [example.kernel for example in self.examples]

    def feature_vectors(self) -> List[FeatureVector]:
        return [example.features for example in self.examples]

    def rows(self, discretizer) -> List[Dict[str, int]]:
        """BN training rows: feature bins + flag variables per good config."""
        rows: List[Dict[str, int]] = []
        for example in self.examples:
            feature_bins = discretizer.transform(example.features)
            for config in example.good_configs:
                row = dict(feature_bins)
                row.update(flag_assignment(config))
                rows.append(row)
        return rows


def evaluate_configuration(
    app: BenchmarkApp,
    config: FlagConfiguration,
    compiler: Compiler,
    executor: MachineExecutor,
    omp: OpenMPRuntime,
) -> float:
    """Noise-free execution time of ``app`` under ``config`` at the
    reference operating point."""
    profile = profile_kernel(app)
    kernel = compiler.compile(profile, config)
    placement = omp.place(REFERENCE_THREADS, REFERENCE_BINDING)
    return executor.evaluate(kernel, placement).time_s


def build_corpus(
    apps: Sequence[BenchmarkApp],
    compiler: Compiler,
    executor: MachineExecutor,
    omp: OpenMPRuntime,
    good_fraction: float = 0.1,
) -> TrainingCorpus:
    """Run iterative compilation for every app and keep the best combos.

    ``good_fraction`` of the 128-point space (at least 4 combos) is
    labelled positive per kernel.
    """
    if not 0.0 < good_fraction <= 1.0:
        raise ValueError("good_fraction must be in (0, 1]")
    space = cobayn_space()
    corpus = TrainingCorpus()
    for app in apps:
        unit = app.parse()
        profile = profile_kernel(app)
        features = extract_features(unit, app.kernels[0])
        placement = omp.place(REFERENCE_THREADS, REFERENCE_BINDING)
        timings = [
            (config, executor.evaluate(compiler.compile(profile, config), placement).time_s)
            for config in space
        ]
        timings.sort(key=lambda item: item[1])
        keep = max(4, int(round(len(space) * good_fraction)))
        good = [config for config, _ in timings[:keep]]
        corpus.examples.append(
            KernelExamples(
                kernel=app.name,
                features=features,
                timings=timings,
                good_configs=good,
            )
        )
    return corpus
